//! AARC — Automated Affinity-aware Resource Configuration for Serverless
//! Workflows (DAC 2025 reproduction).
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`workflow`] — the serverless workflow DAG model (critical path, detour
//!   sub-paths, topology builders).
//! * [`simulator`] — the deterministic serverless-platform simulator
//!   (performance model, pricing, cluster, discrete-event executor).
//! * [`workloads`] — the paper's three benchmark applications (Chatbot, ML
//!   Pipeline, Video Analysis) plus a random workload generator.
//! * [`core`] — the paper's contribution: the Graph-Centric Scheduler
//!   (Algorithm 1), the Priority Configurator (Algorithm 2), affinity
//!   analysis and the input-aware configuration engine.
//! * [`baselines`] — the comparison methods: workflow-level Bayesian
//!   optimization and MAFF coupled gradient descent.
//!
//! # Quick start
//!
//! ```
//! use aarc::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Pick one of the paper's workloads and let AARC configure it.
//! let workload = aarc::workloads::chatbot();
//! let scheduler = GraphCentricScheduler::new(AarcParams::paper());
//! let outcome = scheduler.search(workload.env(), workload.slo_ms())?;
//!
//! assert!(outcome.final_report.meets_slo(workload.slo_ms()));
//! println!(
//!     "configured {} functions, cost {:.1}",
//!     outcome.best_configs.len(),
//!     outcome.final_report.total_cost()
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use aarc_baselines as baselines;
pub use aarc_core as core;
pub use aarc_simulator as simulator;
pub use aarc_workflow as workflow;
pub use aarc_workloads as workloads;

/// The most commonly used items from every sub-crate.
pub mod prelude {
    pub use aarc_baselines::{BayesianOptimization, BoParams, MaffGradientDescent, MaffParams};
    pub use aarc_core::prelude::*;
    pub use aarc_core::{AarcParams, ConfigurationSearch, GraphCentricScheduler, InputAwareEngine};
    pub use aarc_simulator::prelude::*;
    pub use aarc_workflow::{Workflow, WorkflowBuilder};
    pub use aarc_workloads::Workload;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile_and_link() {
        let workload = crate::workloads::chatbot();
        assert_eq!(workload.env().workflow().len(), 6);
    }
}
