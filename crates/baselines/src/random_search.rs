//! Uniform random search over the decoupled configuration space.
//!
//! Not part of the paper's comparison, but a useful control for the
//! ablation benches: it shares BO's search space without any surrogate
//! model, which isolates how much the Gaussian process actually contributes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use aarc_core::driver::{Ask, SearchStrategy};
use aarc_core::search::{validate_slo, ConfigurationSearch, SearchOutcome, SearchTrace};
use aarc_core::AarcError;
use aarc_simulator::{ConfigMap, ResourceConfig, SimResult, WorkflowEnvironment};

/// Parameters of the random-search control.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomSearchParams {
    /// Number of random samples (workflow executions).
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomSearchParams {
    fn default() -> Self {
        RandomSearchParams {
            iterations: 70,
            seed: 7,
        }
    }
}

/// The random-search control method.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    params: RandomSearchParams,
}

impl RandomSearch {
    /// Creates the control with the given parameters.
    pub fn new(params: RandomSearchParams) -> Self {
        RandomSearch { params }
    }
}

/// Where the random-search strategy is in its two-step protocol.
enum Stage {
    /// Probe the over-provisioned base configuration.
    Base,
    /// The full random design is in flight as one batch.
    Design,
    /// All samples observed.
    Finished,
}

/// The ask/tell form of random search: one base probe, then the entire
/// design as a single index-seeded batch — candidates fan out over the
/// shared worker pool with seeds derived from their index, keeping results
/// thread-count and interleaving invariant.
struct RandomStrategy {
    params: RandomSearchParams,
    slo_ms: f64,
    rng: StdRng,
    trace: SearchTrace,
    candidates: Vec<ConfigMap>,
    best_cost: f64,
    best_configs: Option<ConfigMap>,
    // The outcome carries the report of the winning sample itself: under
    // runtime jitter every batched candidate ran with its own derived
    // seed, so re-simulating the winner under a different seed could
    // contradict the feasibility decision that selected it.
    best_report: Option<SimResult>,
    stage: Stage,
}

impl SearchStrategy for RandomStrategy {
    fn name(&self) -> &str {
        "Random"
    }

    fn ask(&mut self, env: &WorkflowEnvironment) -> Result<Ask, AarcError> {
        match self.stage {
            Stage::Base => Ok(Ask::Probe(env.base_configs())),
            Stage::Design => Ok(Ask::Batch(self.candidates.clone())),
            Stage::Finished => Ok(Ask::Done),
        }
    }

    fn tell(&mut self, env: &WorkflowEnvironment, results: &[SimResult]) -> Result<(), AarcError> {
        match self.stage {
            Stage::Base => {
                let base_report = &results[0];
                self.trace.record(base_report, true, "base configuration");
                if base_report.any_oom() {
                    return Err(AarcError::BaseConfigurationOom);
                }
                if !base_report.meets_slo(self.slo_ms) {
                    return Err(AarcError::BaseConfigurationViolatesSlo {
                        makespan_ms: base_report.makespan_ms(),
                        slo_ms: self.slo_ms,
                    });
                }
                self.best_cost = base_report.total_cost();
                self.best_configs = Some(env.base_configs());
                self.best_report = Some(base_report.clone());

                // Every sample is independent, so the whole design is drawn
                // up front (same RNG stream as a sequential loop) and asked
                // as one batch.
                let space = *env.space();
                let remaining = self.params.iterations.max(2) - 1;
                self.candidates = (0..remaining)
                    .map(|_| {
                        ConfigMap::from_vec(
                            (0..env.workflow().len())
                                .map(|_| {
                                    let vcpu = space.snap_vcpu(
                                        self.rng.gen_range(space.min_vcpu..=space.max_vcpu),
                                    );
                                    let mem = space.snap_memory(
                                        self.rng
                                            .gen_range(space.min_memory_mb..=space.max_memory_mb),
                                    );
                                    ResourceConfig::new(vcpu, mem)
                                })
                                .collect(),
                        )
                    })
                    .collect();
                self.stage = Stage::Design;
            }
            Stage::Design => {
                for (configs, report) in std::mem::take(&mut self.candidates)
                    .into_iter()
                    .zip(results)
                {
                    let feasible = report.meets_slo(self.slo_ms) && !report.any_oom();
                    self.trace.record(
                        report,
                        feasible,
                        format!("random sample {}", self.trace.sample_count() + 1),
                    );
                    if feasible && report.total_cost() < self.best_cost {
                        self.best_cost = report.total_cost();
                        self.best_configs = Some(configs);
                        self.best_report = Some(report.clone());
                    }
                }
                self.stage = Stage::Finished;
            }
            Stage::Finished => unreachable!("tell without an evaluation in flight"),
        }
        Ok(())
    }

    fn finish(&mut self, _env: &WorkflowEnvironment) -> Result<SearchOutcome, AarcError> {
        Ok(SearchOutcome {
            best_configs: self.best_configs.take().expect("search completed"),
            final_report: self.best_report.take().expect("search completed"),
            trace: std::mem::take(&mut self.trace),
        })
    }
}

impl ConfigurationSearch for RandomSearch {
    fn name(&self) -> &str {
        "Random"
    }

    fn strategy(
        &self,
        _env: &WorkflowEnvironment,
        slo_ms: f64,
    ) -> Result<Box<dyn SearchStrategy>, AarcError> {
        validate_slo(slo_ms)?;
        Ok(Box::new(RandomStrategy {
            params: self.params,
            slo_ms,
            rng: StdRng::seed_from_u64(self.params.seed),
            trace: SearchTrace::new(),
            candidates: Vec::new(),
            best_cost: f64::INFINITY,
            best_configs: None,
            best_report: None,
            stage: Stage::Base,
        }))
    }
}

impl Default for RandomSearch {
    fn default() -> Self {
        RandomSearch::new(RandomSearchParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarc_simulator::{FunctionProfile, ProfileSet, WorkflowEnvironment};
    use aarc_workflow::WorkflowBuilder;

    fn env() -> WorkflowEnvironment {
        let mut b = WorkflowBuilder::new("rand-test");
        let a = b.add_function("a");
        let wf = b.build().unwrap();
        let mut p = ProfileSet::new();
        p.insert(
            a,
            FunctionProfile::builder("a")
                .serial_ms(1_000.0)
                .parallel_ms(5_000.0)
                .max_parallelism(4.0)
                .working_set_mb(512.0)
                .mem_floor_mb(256.0)
                .build(),
        );
        WorkflowEnvironment::builder(wf, p).build().unwrap()
    }

    #[test]
    fn random_search_never_returns_an_slo_violation() {
        let env = env();
        let slo = 30_000.0;
        let rs = RandomSearch::new(RandomSearchParams {
            iterations: 15,
            seed: 3,
        });
        let outcome = rs.search(&env, slo).unwrap();
        assert!(outcome.final_report.meets_slo(slo));
        assert_eq!(outcome.trace.sample_count(), 15);
    }

    #[test]
    fn random_search_is_deterministic_per_seed() {
        let env = env();
        let rs = RandomSearch::default();
        let a = rs.search(&env, 30_000.0).unwrap();
        let b = rs.search(&env, 30_000.0).unwrap();
        assert_eq!(a.best_cost(), b.best_cost());
    }

    #[test]
    fn random_search_name() {
        assert_eq!(RandomSearch::default().name(), "Random");
    }

    #[test]
    fn final_report_is_the_winning_sample_even_under_jitter() {
        // With runtime jitter every batched candidate runs under its own
        // derived seed, so the outcome must carry the winning sample's
        // report verbatim — re-simulating under another seed could flip the
        // feasibility decision that selected it.
        let base = env();
        let jittery =
            WorkflowEnvironment::builder(base.workflow().clone(), base.profiles().clone())
                .cluster(aarc_simulator::ClusterSpec::paper_testbed_with_jitter(0.2))
                .build()
                .unwrap();
        let slo = 30_000.0;
        let rs = RandomSearch::new(RandomSearchParams {
            iterations: 20,
            seed: 11,
        });
        let outcome = rs.search(&jittery, slo).unwrap();
        let best_accepted_cost = outcome
            .trace
            .samples()
            .iter()
            .filter(|s| s.accepted)
            .map(|s| s.cost)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(outcome.final_report.total_cost(), best_accepted_cost);
        assert!(outcome.final_report.meets_slo(slo));
    }
}
