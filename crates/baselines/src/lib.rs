//! Baseline configuration-search methods the paper compares AARC against.
//!
//! * [`bo::BayesianOptimization`] — the decoupled-resource Bayesian
//!   optimization of Bilal et al. (EuroSys'23), extended to workflows as the
//!   paper does: the joint per-function (vCPU, memory) vector is optimised
//!   with a Gaussian-process surrogate and expected-improvement
//!   acquisition over the discretised space (memory 128–10 240 MB in 64 MB
//!   steps, vCPU 0.1–10).
//! * [`maff::MaffGradientDescent`] — MAFF (Zubko et al.), a memory-centric
//!   gradient-descent that keeps CPU coupled to memory (1 vCPU per
//!   1 024 MB) and reverts-and-terminates on the first SLO violation.
//! * [`random_search::RandomSearch`] — a uniform random-sampling control
//!   used in ablation experiments.
//!
//! All methods implement the same
//! [`ConfigurationSearch`](aarc_core::search::ConfigurationSearch) trait as
//! AARC's scheduler, so the experiment harness can swap them freely.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bo;
pub mod maff;
pub mod random_search;

pub use bo::{BayesianOptimization, BoParams};
pub use maff::{MaffGradientDescent, MaffParams};
pub use random_search::{RandomSearch, RandomSearchParams};

/// Convenience: all baselines boxed behind the common trait, plus AARC,
/// in the order the paper's figures use (AARC, BO, MAFF).
pub fn paper_methods(
    aarc_params: aarc_core::AarcParams,
    bo_params: BoParams,
    maff_params: MaffParams,
) -> Vec<Box<dyn aarc_core::ConfigurationSearch>> {
    vec![
        Box::new(aarc_core::GraphCentricScheduler::new(aarc_params)),
        Box::new(BayesianOptimization::new(bo_params)),
        Box::new(MaffGradientDescent::new(maff_params)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_methods_are_three_in_figure_order() {
        let methods = paper_methods(
            aarc_core::AarcParams::default(),
            BoParams::default(),
            MaffParams::default(),
        );
        let names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["AARC", "BO", "MAFF"]);
    }
}
