//! MAFF: memory-centric coupled gradient descent (Zubko et al., adapted to
//! workflows as in the paper's §IV-A).
//!
//! MAFF only tunes memory; vCPU stays proportional (1 core per 1 024 MB).
//! Starting from a generously provisioned allocation it walks memory
//! downward function by function as long as cost decreases, and — following
//! the paper's description — *reverts to the previous step and terminates*
//! as soon as the workflow's SLO is violated. The coupled search space is
//! small, so MAFF needs few samples, but it cannot express configurations
//! like "4 vCPU with 512 MB" and therefore gets stuck in coupled local
//! optima (the effect visible in Fig. 7b).

use aarc_core::driver::{Ask, SearchStrategy};
use aarc_core::search::{validate_slo, ConfigurationSearch, SearchOutcome, SearchTrace};
use aarc_core::AarcError;
use aarc_simulator::{ConfigMap, ResourceConfig, SimResult, WorkflowEnvironment};
use aarc_workflow::NodeId;

/// Parameters of the MAFF baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaffParams {
    /// Megabytes of memory that buy one vCPU core (AWS-style coupling; the
    /// paper uses 1 024 MB per core).
    pub mb_per_core: f64,
    /// Initial memory allocation for every function, in MB.
    pub initial_memory_mb: u32,
    /// Initial downward memory step, in MB.
    pub initial_step_mb: u32,
    /// The step is halved when a full pass over the functions brings no
    /// improvement; the search stops when the step falls below this value.
    pub min_step_mb: u32,
    /// Hard cap on the number of samples.
    pub max_samples: usize,
}

impl Default for MaffParams {
    fn default() -> Self {
        MaffParams {
            mb_per_core: 1_024.0,
            initial_memory_mb: 10_240,
            initial_step_mb: 1_024,
            min_step_mb: 64,
            max_samples: 80,
        }
    }
}

/// The MAFF gradient-descent baseline.
#[derive(Debug, Clone)]
pub struct MaffGradientDescent {
    params: MaffParams,
}

impl MaffGradientDescent {
    /// Creates the baseline with the given parameters.
    pub fn new(params: MaffParams) -> Self {
        MaffGradientDescent { params }
    }

    /// The baseline's parameters.
    pub fn params(&self) -> &MaffParams {
        &self.params
    }
}

/// The coupled configuration for a memory size, shared with the strategy.
fn coupled(params: &MaffParams, env: &WorkflowEnvironment, memory_mb: u32) -> ResourceConfig {
    let space = env.space();
    let mem = space.snap_memory(memory_mb);
    let vcpu = space.snap_vcpu(f64::from(mem) / params.mb_per_core);
    ResourceConfig::new(vcpu, mem)
}

/// Where the MAFF strategy is in its descent.
enum Stage {
    /// Probe the initial coupled, over-provisioned configuration.
    Base,
    /// Walking memory downward node by node (a candidate is in flight iff
    /// `pending` is set).
    Descent,
    /// Asking for the final evaluation of the settled configuration.
    Final,
    /// Awaiting the final evaluation's result.
    AwaitFinal,
    /// Search complete.
    Finished,
}

/// A descent candidate in flight: the node being shrunk, the configuration
/// it replaced, and the candidate memory size to commit on acceptance.
struct PendingStep {
    node: NodeId,
    previous: ResourceConfig,
    candidate: ResourceConfig,
    candidate_mem: u32,
}

/// The ask/tell form of MAFF's coupled gradient descent: strictly
/// sequential probes (each step depends on the previous result), walking
/// the topological order pass by pass with a halving step, then one final
/// probe of the settled configuration.
struct MaffStrategy {
    params: MaffParams,
    slo_ms: f64,
    trace: SearchTrace,
    memories: Vec<u32>,
    configs: ConfigMap,
    best_cost: f64,
    step: u32,
    order: Vec<NodeId>,
    pos: usize,
    improved: bool,
    pending: Option<PendingStep>,
    final_report: Option<SimResult>,
    stage: Stage,
}

impl SearchStrategy for MaffStrategy {
    fn name(&self) -> &str {
        "MAFF"
    }

    fn ask(&mut self, env: &WorkflowEnvironment) -> Result<Ask, AarcError> {
        loop {
            match self.stage {
                Stage::Base => {
                    // Initial coupled, over-provisioned configuration.
                    let n = env.workflow().len();
                    self.memories = vec![self.params.initial_memory_mb; n];
                    self.configs = ConfigMap::from_vec(
                        self.memories
                            .iter()
                            .map(|&m| coupled(&self.params, env, m))
                            .collect(),
                    );
                    self.order = env.workflow().topological_order();
                    return Ok(Ask::Probe(self.configs.clone()));
                }
                Stage::Descent => {
                    if self.trace.sample_count() >= self.params.max_samples {
                        self.stage = Stage::Final;
                        continue;
                    }
                    if self.step < self.params.min_step_mb {
                        self.stage = Stage::Final;
                        continue;
                    }
                    if self.pos == self.order.len() {
                        // Pass boundary: halve the step when a full pass
                        // brought no improvement.
                        if !self.improved {
                            self.step /= 2;
                        }
                        if self.step < self.params.min_step_mb {
                            self.stage = Stage::Final;
                        } else {
                            self.pos = 0;
                            self.improved = false;
                        }
                        continue;
                    }
                    let node = self.order[self.pos];
                    let current_mem = self.memories[node.index()];
                    if current_mem <= env.space().min_memory_mb {
                        self.pos += 1;
                        continue;
                    }
                    let candidate_mem = current_mem
                        .saturating_sub(self.step)
                        .max(env.space().min_memory_mb);
                    if candidate_mem == current_mem {
                        self.pos += 1;
                        continue;
                    }
                    let previous = self.configs.get(node);
                    let candidate = coupled(&self.params, env, candidate_mem);
                    self.configs.set(node, candidate);
                    self.pending = Some(PendingStep {
                        node,
                        previous,
                        candidate,
                        candidate_mem,
                    });
                    return Ok(Ask::Probe(self.configs.clone()));
                }
                Stage::Final => {
                    self.stage = Stage::AwaitFinal;
                    return Ok(Ask::Probe(self.configs.clone()));
                }
                Stage::Finished => return Ok(Ask::Done),
                Stage::AwaitFinal => unreachable!("AwaitFinal awaits tell, never asks"),
            }
        }
    }

    fn tell(&mut self, env: &WorkflowEnvironment, results: &[SimResult]) -> Result<(), AarcError> {
        let report = &results[0];
        match self.stage {
            Stage::Base => {
                self.trace
                    .record(report, true, "coupled base configuration");
                if report.any_oom() {
                    return Err(AarcError::BaseConfigurationOom);
                }
                if !report.meets_slo(self.slo_ms) {
                    return Err(AarcError::BaseConfigurationViolatesSlo {
                        makespan_ms: report.makespan_ms(),
                        slo_ms: self.slo_ms,
                    });
                }
                self.best_cost = report.total_cost();
                self.pos = 0;
                self.improved = false;
                self.stage = Stage::Descent;
            }
            Stage::Descent => {
                let PendingStep {
                    node,
                    previous,
                    candidate,
                    candidate_mem,
                } = self.pending.take().expect("a descent step is in flight");
                let label = format!(
                    "{}: {} -> {}",
                    env.workflow().function(node).name(),
                    previous,
                    candidate
                );
                if !report.meets_slo(self.slo_ms) {
                    // Paper: revert to the previous step and terminate.
                    self.trace.record(report, false, label);
                    self.configs.set(node, previous);
                    self.stage = Stage::Final;
                } else if report.total_cost() + 1e-9 < self.best_cost {
                    self.trace.record(report, true, label);
                    self.memories[node.index()] = candidate_mem;
                    self.best_cost = report.total_cost();
                    self.improved = true;
                    self.pos += 1;
                } else {
                    // Cost did not improve: undo and move on (local
                    // gradient is non-negative in this direction).
                    self.trace.record(report, false, label);
                    self.configs.set(node, previous);
                    self.pos += 1;
                }
            }
            Stage::AwaitFinal => {
                self.final_report = Some(report.clone());
                self.stage = Stage::Finished;
            }
            Stage::Final | Stage::Finished => {
                unreachable!("tell without an evaluation in flight")
            }
        }
        Ok(())
    }

    fn finish(&mut self, _env: &WorkflowEnvironment) -> Result<SearchOutcome, AarcError> {
        Ok(SearchOutcome {
            best_configs: self.configs.clone(),
            final_report: self.final_report.take().expect("search completed"),
            trace: std::mem::take(&mut self.trace),
        })
    }
}

impl ConfigurationSearch for MaffGradientDescent {
    fn name(&self) -> &str {
        "MAFF"
    }

    fn strategy(
        &self,
        _env: &WorkflowEnvironment,
        slo_ms: f64,
    ) -> Result<Box<dyn SearchStrategy>, AarcError> {
        validate_slo(slo_ms)?;
        Ok(Box::new(MaffStrategy {
            params: self.params,
            slo_ms,
            trace: SearchTrace::new(),
            memories: Vec::new(),
            configs: ConfigMap::from_vec(Vec::new()),
            best_cost: f64::INFINITY,
            step: self.params.initial_step_mb,
            order: Vec::new(),
            pos: 0,
            improved: false,
            pending: None,
            final_report: None,
            stage: Stage::Base,
        }))
    }
}

impl Default for MaffGradientDescent {
    fn default() -> Self {
        MaffGradientDescent::new(MaffParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarc_simulator::{FunctionProfile, ProfileSet};
    use aarc_workflow::WorkflowBuilder;

    fn cpu_heavy_env() -> WorkflowEnvironment {
        // A workload like the ML Pipeline: CPU-hungry, memory-light. MAFF
        // cannot drop memory without also dropping the cores it needs, so it
        // stays expensive.
        let mut b = WorkflowBuilder::new("cpuish");
        let a = b.add_function("crunch");
        let c = b.add_function("finish");
        b.add_edge(a, c).unwrap();
        let wf = b.build().unwrap();
        let mut p = ProfileSet::new();
        p.insert(
            a,
            FunctionProfile::builder("crunch")
                .serial_ms(2_000.0)
                .parallel_ms(60_000.0)
                .max_parallelism(8.0)
                .working_set_mb(512.0)
                .mem_floor_mb(256.0)
                .build(),
        );
        p.insert(
            c,
            FunctionProfile::builder("finish")
                .serial_ms(3_000.0)
                .working_set_mb(256.0)
                .build(),
        );
        WorkflowEnvironment::builder(wf, p).build().unwrap()
    }

    #[test]
    fn maff_meets_slo_and_uses_coupled_configs() {
        let env = cpu_heavy_env();
        let slo = 60_000.0;
        let maff = MaffGradientDescent::default();
        let outcome = maff.search(&env, slo).unwrap();
        assert!(outcome.final_report.meets_slo(slo));
        for (_, cfg) in outcome.best_configs.iter() {
            let expected_vcpu = env.space().snap_vcpu(f64::from(cfg.memory.get()) / 1_024.0);
            assert!(
                (cfg.vcpu.get() - expected_vcpu).abs() < 1e-9,
                "MAFF configs must stay coupled: {cfg}"
            );
        }
    }

    #[test]
    fn maff_reduces_cost_from_the_coupled_base() {
        let env = cpu_heavy_env();
        let maff = MaffGradientDescent::default();
        let outcome = maff.search(&env, 60_000.0).unwrap();
        let base = ConfigMap::uniform(
            env.workflow().len(),
            ResourceConfig::coupled(10_240, 1_024.0),
        );
        let base_cost = env.execute(&base).unwrap().total_cost();
        assert!(outcome.best_cost() < base_cost);
    }

    #[test]
    fn maff_sample_budget_is_respected() {
        let env = cpu_heavy_env();
        let params = MaffParams {
            max_samples: 10,
            ..MaffParams::default()
        };
        let maff = MaffGradientDescent::new(params);
        let outcome = maff.search(&env, 60_000.0).unwrap();
        assert!(outcome.trace.sample_count() <= 10);
    }

    #[test]
    fn maff_rejects_invalid_or_impossible_slos() {
        let env = cpu_heavy_env();
        let maff = MaffGradientDescent::default();
        assert!(matches!(
            maff.search(&env, -1.0),
            Err(AarcError::InvalidSlo(_))
        ));
        assert!(matches!(
            maff.search(&env, 100.0),
            Err(AarcError::BaseConfigurationViolatesSlo { .. })
        ));
    }

    #[test]
    fn maff_name() {
        assert_eq!(MaffGradientDescent::default().name(), "MAFF");
    }

    #[test]
    fn tight_slo_keeps_memory_high_because_of_coupling() {
        // With a tight SLO the workflow needs many cores; because MAFF
        // couples cores to memory it is forced to keep large memory too.
        let env = cpu_heavy_env();
        let tight = 25_000.0;
        let maff = MaffGradientDescent::default();
        let outcome = maff.search(&env, tight).unwrap();
        assert!(outcome.final_report.meets_slo(tight));
        let crunch = env.workflow().find("crunch").unwrap();
        assert!(outcome.best_configs.get(crunch).memory.get() >= 4_096);
    }
}
