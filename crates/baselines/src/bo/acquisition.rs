//! Expected-improvement acquisition for minimisation.

/// Expected improvement of a candidate with posterior `(mean, variance)`
/// over the best (lowest) objective value observed so far.
///
/// `EI = (best − μ) Φ(z) + σ φ(z)` with `z = (best − μ) / σ`, the standard
/// formulation for minimisation. A tiny exploration margin `xi` is
/// subtracted from `best` to avoid premature convergence.
pub fn expected_improvement(mean: f64, variance: f64, best: f64, xi: f64) -> f64 {
    let sigma = variance.max(1e-12).sqrt();
    let improvement = best - xi - mean;
    let z = improvement / sigma;
    (improvement * normal_cdf(z) + sigma * normal_pdf(z)).max(0.0)
}

/// Standard normal probability density function.
pub fn normal_pdf(z: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * z * z).exp()
}

/// Standard normal cumulative distribution function via the Abramowitz &
/// Stegun error-function approximation (max absolute error ≈ 1.5e-7).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(6.0) > 0.999_999);
        assert!(normal_cdf(-6.0) < 1e-6);
    }

    #[test]
    fn normal_pdf_is_symmetric_and_peaks_at_zero() {
        assert!((normal_pdf(0.0) - 0.398_942_280_4).abs() < 1e-9);
        assert!((normal_pdf(1.3) - normal_pdf(-1.3)).abs() < 1e-12);
        assert!(normal_pdf(0.0) > normal_pdf(0.5));
    }

    #[test]
    fn ei_prefers_lower_means_and_higher_uncertainty() {
        let best = 10.0;
        let low_mean = expected_improvement(5.0, 1.0, best, 0.0);
        let high_mean = expected_improvement(15.0, 1.0, best, 0.0);
        assert!(low_mean > high_mean);

        let certain = expected_improvement(10.0, 0.01, best, 0.0);
        let uncertain = expected_improvement(10.0, 4.0, best, 0.0);
        assert!(uncertain > certain);
    }

    #[test]
    fn ei_is_nonnegative_and_zero_for_hopeless_candidates() {
        let ei = expected_improvement(1_000.0, 1e-6, 10.0, 0.0);
        assert!(ei >= 0.0);
        assert!(ei < 1e-9);
    }
}
