//! Squared-exponential (RBF) covariance kernel.

/// An isotropic squared-exponential kernel
/// `k(a, b) = σ² · exp(-‖a − b‖² / (2ℓ²))` with additive observation noise
/// on the diagonal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RbfKernel {
    /// Signal variance σ².
    pub variance: f64,
    /// Length scale ℓ (inputs are normalised to `[0, 1]`, so values around
    /// 0.2–0.5 are reasonable).
    pub length_scale: f64,
    /// Observation noise added to the diagonal of the Gram matrix.
    pub noise: f64,
}

impl RbfKernel {
    /// Creates a kernel.
    pub fn new(variance: f64, length_scale: f64, noise: f64) -> Self {
        RbfKernel {
            variance,
            length_scale,
            noise,
        }
    }

    /// Covariance between two (equal-length) points.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let sq_dist: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        self.variance * (-sq_dist / (2.0 * self.length_scale * self.length_scale)).exp()
    }

    /// The full Gram matrix of a point set, with noise on the diagonal.
    pub fn gram(&self, points: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let n = points.len();
        let mut k = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in i..n {
                let v = self.eval(&points[i], &points[j]);
                k[i][j] = v;
                k[j][i] = v;
            }
            k[i][i] += self.noise;
        }
        k
    }
}

impl Default for RbfKernel {
    fn default() -> Self {
        RbfKernel::new(1.0, 0.3, 1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_maximal_at_zero_distance() {
        let k = RbfKernel::default();
        let a = vec![0.3, 0.7];
        assert!((k.eval(&a, &a) - k.variance).abs() < 1e-12);
        let b = vec![0.9, 0.1];
        assert!(k.eval(&a, &b) < k.variance);
        assert!(k.eval(&a, &b) > 0.0);
    }

    #[test]
    fn kernel_is_symmetric_and_decays_with_distance() {
        let k = RbfKernel::new(2.0, 0.5, 0.0);
        let a = vec![0.0, 0.0];
        let near = vec![0.1, 0.0];
        let far = vec![0.9, 0.9];
        assert_eq!(k.eval(&a, &near), k.eval(&near, &a));
        assert!(k.eval(&a, &near) > k.eval(&a, &far));
    }

    #[test]
    fn gram_matrix_has_noise_on_diagonal() {
        let k = RbfKernel::new(1.0, 0.3, 0.01);
        let pts = vec![vec![0.0], vec![0.5], vec![1.0]];
        let g = k.gram(&pts);
        assert_eq!(g.len(), 3);
        for (i, row) in g.iter().enumerate() {
            assert!((row[i] - (1.0 + 0.01)).abs() < 1e-12);
            for (j, &v) in row.iter().enumerate() {
                assert!((v - g[j][i]).abs() < 1e-12, "gram must be symmetric");
            }
        }
    }
}
