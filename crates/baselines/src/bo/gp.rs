//! A small Gaussian-process regressor (Cholesky-based, no external linear
//! algebra dependencies).

use super::kernel::RbfKernel;

/// Gaussian-process regression over normalised inputs in `[0, 1]^d`.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: RbfKernel,
    x: Vec<Vec<f64>>,
    /// Mean of the training targets (the GP models the residual around it).
    y_mean: f64,
    /// Cholesky factor `L` of the Gram matrix.
    chol: Vec<Vec<f64>>,
    /// `K⁻¹ (y - mean)` computed via two triangular solves.
    alpha: Vec<f64>,
}

impl GaussianProcess {
    /// Fits a GP to the observations `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` have different lengths, are empty, or contain
    /// points of inconsistent dimensionality.
    pub fn fit(kernel: RbfKernel, x: Vec<Vec<f64>>, y: &[f64]) -> Self {
        assert_eq!(x.len(), y.len(), "x and y must have the same length");
        assert!(!x.is_empty(), "cannot fit a GP to zero observations");
        let dim = x[0].len();
        assert!(
            x.iter().all(|p| p.len() == dim),
            "inconsistent dimensionality"
        );

        let y_mean = y.iter().sum::<f64>() / y.len() as f64;
        let centred: Vec<f64> = y.iter().map(|v| v - y_mean).collect();
        let gram = kernel.gram(&x);
        let chol = cholesky(&gram);
        let alpha = cholesky_solve(&chol, &centred);
        GaussianProcess {
            kernel,
            x,
            y_mean,
            chol,
            alpha,
        }
    }

    /// Posterior mean and variance at `point`.
    pub fn predict(&self, point: &[f64]) -> (f64, f64) {
        let k_star: Vec<f64> = self
            .x
            .iter()
            .map(|xi| self.kernel.eval(xi, point))
            .collect();
        let mean = self.y_mean
            + k_star
                .iter()
                .zip(&self.alpha)
                .map(|(k, a)| k * a)
                .sum::<f64>();
        // v = L⁻¹ k*; var = k(x*,x*) - vᵀv
        let v = forward_substitute(&self.chol, &k_star);
        let var = self.kernel.eval(point, point) - v.iter().map(|x| x * x).sum::<f64>();
        (mean, var.max(1e-12))
    }

    /// Number of training observations.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Returns `true` when the GP holds no observations (never after `fit`).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// Cholesky decomposition of a symmetric positive-definite matrix
/// (lower-triangular `L` with `LLᵀ = A`). A small jitter is added if a
/// diagonal element degenerates, which keeps the decomposition usable for
/// nearly-singular Gram matrices of close-by samples.
fn cholesky(a: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let mut l = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i][j];
            for (lik, ljk) in l[i][..j].iter().zip(&l[j][..j]) {
                sum -= lik * ljk;
            }
            if i == j {
                l[i][j] = sum.max(1e-10).sqrt();
            } else {
                l[i][j] = sum / l[j][j];
            }
        }
    }
    l
}

/// Solves `L y = b` for lower-triangular `L`.
fn forward_substitute(l: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for j in 0..i {
            sum -= l[i][j] * y[j];
        }
        y[i] = sum / l[i][i];
    }
    y
}

/// Solves `Lᵀ x = y` for lower-triangular `L`.
fn backward_substitute(l: &[Vec<f64>], y: &[f64]) -> Vec<f64> {
    let n = y.len();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for j in (i + 1)..n {
            sum -= l[j][i] * x[j];
        }
        x[i] = sum / l[i][i];
    }
    x
}

/// Solves `L Lᵀ x = b`.
fn cholesky_solve(l: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    backward_substitute(l, &forward_substitute(l, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_of_identity_is_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let l = cholesky(&a);
        assert!((l[0][0] - 1.0).abs() < 1e-12);
        assert!((l[1][1] - 1.0).abs() < 1e-12);
        assert!(l[0][1].abs() < 1e-12 && l[1][0].abs() < 1e-12);
    }

    #[test]
    fn cholesky_solve_recovers_known_solution() {
        // A = [[4, 2], [2, 3]], x = [1, 2] => b = [8, 8]
        let a = vec![vec![4.0, 2.0], vec![2.0, 3.0]];
        let l = cholesky(&a);
        let x = cholesky_solve(&l, &[8.0, 8.0]);
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gp_interpolates_training_points() {
        let kernel = RbfKernel::new(1.0, 0.3, 1e-8);
        let x = vec![vec![0.0], vec![0.5], vec![1.0]];
        let y = [1.0, 3.0, 2.0];
        let gp = GaussianProcess::fit(kernel, x.clone(), &y);
        assert_eq!(gp.len(), 3);
        assert!(!gp.is_empty());
        for (xi, yi) in x.iter().zip(y.iter()) {
            let (mean, var) = gp.predict(xi);
            assert!((mean - yi).abs() < 1e-3, "mean {mean} != target {yi}");
            assert!(var < 1e-3, "variance at a training point should be tiny");
        }
    }

    #[test]
    fn gp_uncertainty_grows_away_from_data() {
        let kernel = RbfKernel::new(1.0, 0.2, 1e-8);
        let x = vec![vec![0.0], vec![0.1]];
        let y = [0.0, 0.1];
        let gp = GaussianProcess::fit(kernel, x, &y);
        let (_, var_near) = gp.predict(&[0.05]);
        let (_, var_far) = gp.predict(&[0.9]);
        assert!(var_far > var_near);
    }

    #[test]
    fn gp_prediction_reverts_to_mean_far_from_data() {
        let kernel = RbfKernel::new(1.0, 0.1, 1e-8);
        let x = vec![vec![0.0], vec![0.05]];
        let y = [10.0, 12.0];
        let gp = GaussianProcess::fit(kernel, x, &y);
        let (mean_far, _) = gp.predict(&[1.0]);
        assert!((mean_far - 11.0).abs() < 0.5, "far prediction ~ prior mean");
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn fit_rejects_mismatched_lengths() {
        let _ = GaussianProcess::fit(RbfKernel::default(), vec![vec![0.0]], &[1.0, 2.0]);
    }
}
