//! Workflow-level Bayesian optimization over decoupled resources (the
//! baseline of Bilal et al., extended to workflows as in the paper's §II-B
//! and §IV-A).
//!
//! The joint configuration of an `n`-function workflow is encoded as a
//! `2n`-dimensional point in `[0, 1]^{2n}` (per function: normalised vCPU
//! and normalised memory, both snapped onto the paper's discretisation). A
//! Gaussian-process surrogate with an RBF kernel models the penalised cost
//! objective; candidates are scored with expected improvement. The method
//! works, but — as the paper observes (Fig. 3) — the search space grows so
//! large after decoupling that it converges slowly and unstably for
//! workflows.

pub mod acquisition;
pub mod gp;
pub mod kernel;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use aarc_core::driver::{Ask, SearchStrategy};
use aarc_core::search::{validate_slo, ConfigurationSearch, SearchOutcome, SearchTrace};
use aarc_core::AarcError;
use aarc_simulator::{ConfigMap, ResourceConfig, SimResult, WorkflowEnvironment};

use self::acquisition::expected_improvement;
use self::gp::GaussianProcess;
use self::kernel::RbfKernel;

/// Parameters of the Bayesian-optimization baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoParams {
    /// Total number of samples (workflow executions), including the initial
    /// random design. The paper runs 100 rounds for the Chatbot motivation
    /// experiment and ~70 in the evaluation figures.
    pub iterations: usize,
    /// Number of initial quasi-random samples before the surrogate is used.
    pub initial_samples: usize,
    /// Number of random candidates scored by expected improvement per
    /// iteration.
    pub candidates: usize,
    /// RBF kernel length scale over the normalised inputs.
    pub length_scale: f64,
    /// Exploration margin of the expected-improvement acquisition.
    pub xi: f64,
    /// RNG seed (the search is deterministic for a fixed seed).
    pub seed: u64,
}

impl Default for BoParams {
    fn default() -> Self {
        BoParams {
            iterations: 70,
            initial_samples: 8,
            candidates: 256,
            length_scale: 0.25,
            xi: 0.01,
            seed: 2_025,
        }
    }
}

impl BoParams {
    /// The 100-round configuration used by the paper's §II-B motivation
    /// experiment (Fig. 3).
    pub fn motivation() -> Self {
        BoParams {
            iterations: 100,
            ..BoParams::default()
        }
    }
}

/// The Bayesian-optimization baseline.
#[derive(Debug, Clone)]
pub struct BayesianOptimization {
    params: BoParams,
}

impl BayesianOptimization {
    /// Creates the baseline with the given parameters.
    pub fn new(params: BoParams) -> Self {
        BayesianOptimization { params }
    }

    /// The baseline's parameters.
    pub fn params(&self) -> &BoParams {
        &self.params
    }

    /// Penalised objective: billed cost, inflated proportionally to the SLO
    /// excess and to OOM failures. The penalty is *relative to the
    /// candidate's own cost* (as in the original single-function BO
    /// formulation), which is what makes workflow-level BO keep probing the
    /// cheap-but-slow boundary region — the instability the paper observes
    /// in §II-B.
    fn objective(cost: f64, makespan_ms: f64, oom: bool, slo_ms: f64, base_cost: f64) -> f64 {
        let mut obj = cost;
        if makespan_ms > slo_ms {
            obj *= 1.0 + 2.0 * (makespan_ms / slo_ms - 1.0);
        }
        if oom {
            obj += base_cost;
        }
        obj
    }
}

/// Decodes a normalised `[0, 1]^{2n}` point into a per-function
/// configuration map, shared by the method facade and the strategy.
fn decode(env: &WorkflowEnvironment, point: &[f64]) -> ConfigMap {
    let space = env.space();
    let n = env.workflow().len();
    let mut configs = Vec::with_capacity(n);
    for f in 0..n {
        let cpu_norm = point[2 * f].clamp(0.0, 1.0);
        let mem_norm = point[2 * f + 1].clamp(0.0, 1.0);
        let vcpu = space.snap_vcpu(space.min_vcpu + cpu_norm * (space.max_vcpu - space.min_vcpu));
        let mem_range = f64::from(space.max_memory_mb - space.min_memory_mb);
        let mem = space.snap_memory(space.min_memory_mb + (mem_norm * mem_range).round() as u32);
        configs.push(ResourceConfig::new(vcpu, mem));
    }
    ConfigMap::from_vec(configs)
}

/// Where the BO strategy is in its protocol.
enum Stage {
    /// Probe the over-provisioned base configuration.
    Base,
    /// The initial space-filling design is in flight as one batch.
    InitDesign,
    /// Surrogate-guided sequential probes (a candidate is in flight iff
    /// `pending` is set).
    Surrogate,
    /// Search complete.
    Finished,
}

/// The ask/tell form of workflow-level BO: one base probe, the initial
/// random design as a single index-seeded batch, then strictly sequential
/// surrogate-guided probes (every point depends on all previous
/// observations).
struct BoStrategy {
    params: BoParams,
    slo_ms: f64,
    rng: StdRng,
    trace: SearchTrace,
    kernel: RbfKernel,
    total_budget: usize,
    base_cost: f64,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    init_points: Vec<Vec<f64>>,
    init_configs: Vec<ConfigMap>,
    pending: Option<(Vec<f64>, ConfigMap)>,
    best_feasible_cost: f64,
    best_configs: Option<ConfigMap>,
    // The outcome carries the report of the winning sample itself: under
    // runtime jitter the batched initial design runs with per-candidate
    // derived seeds, so re-simulating the winner under a different seed
    // could contradict the feasibility decision that selected it.
    best_report: Option<SimResult>,
    stage: Stage,
}

impl BoStrategy {
    /// Folds one observed sample into the surrogate's dataset and the
    /// best-so-far tracking.
    fn observe_sample(&mut self, point: Vec<f64>, configs: ConfigMap, report: &SimResult) {
        let feasible = report.meets_slo(self.slo_ms) && !report.any_oom();
        self.trace.record(
            report,
            feasible,
            format!("bo sample {}", self.trace.sample_count() + 1),
        );
        let obj = BayesianOptimization::objective(
            report.total_cost(),
            report.makespan_ms(),
            report.any_oom(),
            self.slo_ms,
            self.base_cost,
        );
        self.xs.push(point);
        self.ys.push(obj);
        if feasible && report.total_cost() < self.best_feasible_cost {
            self.best_feasible_cost = report.total_cost();
            self.best_configs = Some(configs);
            self.best_report = Some(report.clone());
        }
    }

    /// Maximises expected improvement over a random candidate pool
    /// (normalising the objective keeps the GP well-conditioned).
    fn next_point(&mut self, dim: usize) -> Vec<f64> {
        let y_scale = self.ys.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
        let ys_norm: Vec<f64> = self.ys.iter().map(|y| y / y_scale).collect();
        let gp = GaussianProcess::fit(self.kernel, self.xs.clone(), &ys_norm);
        let best_norm = ys_norm.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut best_candidate: Vec<f64> = (0..dim).map(|_| self.rng.gen::<f64>()).collect();
        let mut best_ei = f64::NEG_INFINITY;
        for c in 0..self.params.candidates {
            let candidate: Vec<f64> = if c % 4 == 0 && !self.xs.is_empty() {
                // A quarter of the pool are local perturbations of the
                // incumbent, which helps late-stage refinement.
                let incumbent = &self.xs[ys_norm
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite objectives"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)];
                incumbent
                    .iter()
                    .map(|v| (v + self.rng.gen_range(-0.1..0.1)).clamp(0.0, 1.0))
                    .collect()
            } else {
                (0..dim).map(|_| self.rng.gen::<f64>()).collect()
            };
            let (mean, var) = gp.predict(&candidate);
            let ei = expected_improvement(mean, var, best_norm, self.params.xi);
            if ei > best_ei {
                best_ei = ei;
                best_candidate = candidate;
            }
        }
        best_candidate
    }
}

impl SearchStrategy for BoStrategy {
    fn name(&self) -> &str {
        "BO"
    }

    fn ask(&mut self, env: &WorkflowEnvironment) -> Result<Ask, AarcError> {
        match self.stage {
            Stage::Base => Ok(Ask::Probe(env.base_configs())),
            Stage::InitDesign => Ok(Ask::Batch(self.init_configs.clone())),
            Stage::Surrogate => {
                if self.trace.sample_count() >= self.total_budget {
                    self.stage = Stage::Finished;
                    return Ok(Ask::Done);
                }
                let dim = env.workflow().len() * 2;
                let point = self.next_point(dim);
                let configs = decode(env, &point);
                self.pending = Some((point, configs.clone()));
                Ok(Ask::Probe(configs))
            }
            Stage::Finished => Ok(Ask::Done),
        }
    }

    fn tell(&mut self, env: &WorkflowEnvironment, results: &[SimResult]) -> Result<(), AarcError> {
        match self.stage {
            Stage::Base => {
                let base_report = &results[0];
                self.trace.record(base_report, true, "base configuration");
                if base_report.any_oom() {
                    return Err(AarcError::BaseConfigurationOom);
                }
                if !base_report.meets_slo(self.slo_ms) {
                    return Err(AarcError::BaseConfigurationViolatesSlo {
                        makespan_ms: base_report.makespan_ms(),
                        slo_ms: self.slo_ms,
                    });
                }
                let dim = env.workflow().len() * 2;
                self.base_cost = base_report.total_cost();
                self.xs = vec![vec![1.0; dim]];
                self.ys = vec![BayesianOptimization::objective(
                    self.base_cost,
                    base_report.makespan_ms(),
                    false,
                    self.slo_ms,
                    self.base_cost,
                )];
                self.best_feasible_cost = self.base_cost;
                self.best_configs = Some(env.base_configs());
                self.best_report = Some(base_report.clone());

                // Initial space-filling design: uniform random points. They
                // are independent of any observation, so they are drawn up
                // front (the RNG stream is identical to a sequential loop,
                // which never consumed randomness between draws) and asked
                // as one batch.
                let n_init = self
                    .total_budget
                    .min(self.params.initial_samples)
                    .saturating_sub(1);
                self.init_points = (0..n_init)
                    .map(|_| (0..dim).map(|_| self.rng.gen::<f64>()).collect())
                    .collect();
                self.init_configs = self.init_points.iter().map(|p| decode(env, p)).collect();
                self.stage = if self.init_points.is_empty() {
                    Stage::Surrogate
                } else {
                    Stage::InitDesign
                };
            }
            Stage::InitDesign => {
                let points = std::mem::take(&mut self.init_points);
                let configs = std::mem::take(&mut self.init_configs);
                for ((point, config), report) in points.into_iter().zip(configs).zip(results) {
                    self.observe_sample(point, config, report);
                }
                self.stage = Stage::Surrogate;
            }
            Stage::Surrogate => {
                let (point, configs) = self.pending.take().expect("a probe is in flight");
                self.observe_sample(point, configs, &results[0]);
            }
            Stage::Finished => unreachable!("tell without an evaluation in flight"),
        }
        Ok(())
    }

    fn finish(&mut self, _env: &WorkflowEnvironment) -> Result<SearchOutcome, AarcError> {
        Ok(SearchOutcome {
            best_configs: self.best_configs.take().expect("search completed"),
            final_report: self.best_report.take().expect("search completed"),
            trace: std::mem::take(&mut self.trace),
        })
    }
}

impl ConfigurationSearch for BayesianOptimization {
    fn name(&self) -> &str {
        "BO"
    }

    fn strategy(
        &self,
        _env: &WorkflowEnvironment,
        slo_ms: f64,
    ) -> Result<Box<dyn SearchStrategy>, AarcError> {
        validate_slo(slo_ms)?;
        Ok(Box::new(BoStrategy {
            params: self.params,
            slo_ms,
            rng: StdRng::seed_from_u64(self.params.seed),
            trace: SearchTrace::new(),
            kernel: RbfKernel::new(1.0, self.params.length_scale, 1e-6),
            total_budget: self.params.iterations.max(2),
            base_cost: 0.0,
            xs: Vec::new(),
            ys: Vec::new(),
            init_points: Vec::new(),
            init_configs: Vec::new(),
            pending: None,
            best_feasible_cost: f64::INFINITY,
            best_configs: None,
            best_report: None,
            stage: Stage::Base,
        }))
    }
}

impl Default for BayesianOptimization {
    fn default() -> Self {
        BayesianOptimization::new(BoParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarc_simulator::{FunctionProfile, ProfileSet};
    use aarc_workflow::WorkflowBuilder;

    fn small_env() -> WorkflowEnvironment {
        let mut b = WorkflowBuilder::new("bo-test");
        let a = b.add_function("work");
        let c = b.add_function("save");
        b.add_edge(a, c).unwrap();
        let wf = b.build().unwrap();
        let mut p = ProfileSet::new();
        p.insert(
            a,
            FunctionProfile::builder("work")
                .serial_ms(2_000.0)
                .parallel_ms(20_000.0)
                .max_parallelism(4.0)
                .working_set_mb(512.0)
                .mem_floor_mb(256.0)
                .build(),
        );
        p.insert(
            c,
            FunctionProfile::builder("save")
                .serial_ms(2_000.0)
                .working_set_mb(256.0)
                .build(),
        );
        WorkflowEnvironment::builder(wf, p).build().unwrap()
    }

    fn fast_params() -> BoParams {
        BoParams {
            iterations: 20,
            initial_samples: 5,
            candidates: 64,
            ..BoParams::default()
        }
    }

    #[test]
    fn bo_finds_a_cheaper_feasible_configuration() {
        let env = small_env();
        let slo = 60_000.0;
        let bo = BayesianOptimization::new(fast_params());
        let outcome = bo.search(&env, slo).unwrap();
        let base_cost = env.execute(&env.base_configs()).unwrap().total_cost();
        assert!(outcome.final_report.meets_slo(slo));
        assert!(outcome.best_cost() < base_cost);
        assert_eq!(outcome.trace.sample_count(), 20);
    }

    #[test]
    fn bo_is_deterministic_for_a_seed() {
        let env = small_env();
        let bo = BayesianOptimization::new(fast_params());
        let a = bo.search(&env, 60_000.0).unwrap();
        let b = bo.search(&env, 60_000.0).unwrap();
        assert_eq!(a.best_cost(), b.best_cost());
        assert_eq!(a.trace.cost_series(), b.trace.cost_series());
    }

    #[test]
    fn different_seeds_explore_differently() {
        let env = small_env();
        let a = BayesianOptimization::new(fast_params())
            .search(&env, 60_000.0)
            .unwrap();
        let b = BayesianOptimization::new(BoParams {
            seed: 999,
            ..fast_params()
        })
        .search(&env, 60_000.0)
        .unwrap();
        assert_ne!(a.trace.cost_series(), b.trace.cost_series());
    }

    #[test]
    fn bo_rejects_invalid_and_impossible_slos() {
        let env = small_env();
        let bo = BayesianOptimization::new(fast_params());
        assert!(matches!(
            bo.search(&env, f64::NAN),
            Err(AarcError::InvalidSlo(_))
        ));
        assert!(matches!(
            bo.search(&env, 1.0),
            Err(AarcError::BaseConfigurationViolatesSlo { .. })
        ));
    }

    #[test]
    fn decode_snaps_onto_the_grid_and_respects_bounds() {
        let env = small_env();

        let low = decode(&env, &[0.0, 0.0, 0.0, 0.0]);
        let high = decode(&env, &[1.0, 1.0, 1.0, 1.0]);
        for (_, c) in low.iter() {
            assert_eq!(c, env.space().min_config());
        }
        for (_, c) in high.iter() {
            assert_eq!(c, env.space().max_config());
        }
        // Out-of-range coordinates are clamped rather than panicking.
        let clamped = decode(&env, &[-3.0, 7.0, 0.5, 0.5]);
        assert!(env
            .space()
            .contains(clamped.get(aarc_workflow::NodeId::new(0))));
    }

    #[test]
    fn objective_penalises_violations_and_oom() {
        let feasible = BayesianOptimization::objective(100.0, 50.0, false, 100.0, 1_000.0);
        let slow = BayesianOptimization::objective(100.0, 150.0, false, 100.0, 1_000.0);
        let oom = BayesianOptimization::objective(100.0, 50.0, true, 100.0, 1_000.0);
        assert_eq!(feasible, 100.0);
        assert!(slow > feasible, "slo excess must inflate the objective");
        assert!(oom > feasible + 999.0, "oom must add the base-cost penalty");
    }

    #[test]
    fn bo_name() {
        assert_eq!(BayesianOptimization::default().name(), "BO");
    }
}
