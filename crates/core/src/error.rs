//! Error type of the AARC core.

use std::error::Error;
use std::fmt;

use aarc_simulator::SimulatorError;

/// Errors produced by the AARC scheduler and configurator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AarcError {
    /// The workflow cannot meet the SLO even with the over-provisioned base
    /// configuration; no amount of shrinking will help.
    BaseConfigurationViolatesSlo {
        /// Makespan under the base configuration, in ms.
        makespan_ms: f64,
        /// The requested SLO, in ms.
        slo_ms: f64,
    },
    /// The base configuration already fails with an out-of-memory error.
    BaseConfigurationOom,
    /// The SLO is not a positive, finite number.
    InvalidSlo(f64),
    /// An error bubbled up from the simulated platform.
    Simulator(SimulatorError),
    /// The input-aware engine was asked to dispatch before any
    /// configuration was computed.
    NoConfigurations,
    /// The search session was cancelled before it completed (see
    /// [`SearchSession::cancel`](crate::driver::SearchSession::cancel)).
    SearchCancelled,
}

impl fmt::Display for AarcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AarcError::BaseConfigurationViolatesSlo { makespan_ms, slo_ms } => write!(
                f,
                "base configuration runs for {makespan_ms:.1} ms which already violates the {slo_ms:.1} ms slo"
            ),
            AarcError::BaseConfigurationOom => {
                write!(f, "base configuration fails with out-of-memory")
            }
            AarcError::InvalidSlo(v) => write!(f, "slo must be positive and finite, got {v}"),
            AarcError::Simulator(e) => write!(f, "platform error: {e}"),
            AarcError::NoConfigurations => {
                write!(f, "input-aware engine holds no configurations yet")
            }
            AarcError::SearchCancelled => write!(f, "search session was cancelled"),
        }
    }
}

impl Error for AarcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AarcError::Simulator(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimulatorError> for AarcError {
    fn from(e: SimulatorError) -> Self {
        AarcError::Simulator(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases = vec![
            AarcError::BaseConfigurationViolatesSlo {
                makespan_ms: 130_000.0,
                slo_ms: 120_000.0,
            },
            AarcError::BaseConfigurationOom,
            AarcError::InvalidSlo(-1.0),
            AarcError::NoConfigurations,
            AarcError::SearchCancelled,
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn simulator_errors_convert_and_keep_source() {
        let e: AarcError = SimulatorError::MissingConfig {
            node: aarc_workflow::NodeId::new(0),
        }
        .into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("platform error"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AarcError>();
    }
}
