//! The ask/tell search driver: the evaluate-loop extracted out of the
//! individual search methods, in steppable session form.
//!
//! Every search method is a [`SearchStrategy`] — a pure resumable state
//! machine that *asks* for candidate evaluations and is *told* their
//! results. A [`SearchSession`] binds one strategy to the
//! [`ScenarioHandle`] its evaluations go through and advances it one
//! ask/evaluate/tell round per [`step`](SearchSession::step); the
//! [`SearchDriver`] entry points are now thin loops over sessions. The
//! split buys three things:
//!
//! * **interleaving** — [`SearchDriver::run_interleaved`] round-robins any
//!   number of independent sessions (different methods, different input
//!   classes, different scenarios) over one shared [`EvalService`]
//!   (`aarc_simulator::EvalService`) pool, one step per session per round;
//! * **online serving** — a long-running daemon (`aarc serve`) owns
//!   sessions directly, stepping them from a scheduler thread while
//!   concurrent clients poll each session's [`SessionProgress`] snapshot,
//!   pause/resume it, or cancel it;
//! * **determinism** — a strategy's ask sequence depends only on the
//!   results it was told, and every evaluation's RNG seed derives from the
//!   environment seed (probes) or the candidate's batch index (batches,
//!   see [`aarc_simulator::derive_seed`]). Interleaved or served runs are
//!   therefore bit-identical to sequential ones, at any thread count and
//!   under any step schedule.

use serde::{Deserialize, Serialize};

use aarc_simulator::{ConfigMap, ScenarioHandle, SimResult, WorkflowEnvironment};

use crate::error::AarcError;
use crate::search::SearchOutcome;

/// One request from a strategy to the driver.
#[derive(Debug)]
pub enum Ask {
    /// Evaluate one candidate under the environment's default input and
    /// seed (the sequential probe used by the iterative methods; answered
    /// by [`ScenarioHandle::evaluate`]).
    Probe(ConfigMap),
    /// Evaluate an index-seeded batch: candidate `i` runs under
    /// `derive_seed(env.seed(), i)` and the batch fans out over the shared
    /// worker pool (answered by [`ScenarioHandle::evaluate_batch`]).
    Batch(Vec<ConfigMap>),
    /// The search is complete; the driver calls
    /// [`SearchStrategy::finish`].
    Done,
}

/// A resumable configuration-search state machine.
///
/// The protocol is strictly alternating: after an [`Ask::Probe`] or
/// [`Ask::Batch`] the driver calls [`tell`](SearchStrategy::tell) exactly
/// once with the results (one result for a probe, one per candidate in
/// batch order), then asks again. [`Ask::Done`] ends the run and
/// [`finish`](SearchStrategy::finish) is called exactly once.
///
/// Strategies own their [`SearchTrace`](crate::search::SearchTrace) and
/// best-so-far state; they must not perform evaluations themselves — that
/// is what keeps independent searches interleavable on one shared pool.
/// Strategies are `Send` so sessions can be stepped from a scheduler
/// thread (the `aarc serve` daemon moves live sessions across threads).
pub trait SearchStrategy: Send {
    /// Short method name used in figures ("AARC", "BO", "MAFF").
    fn name(&self) -> &str;

    /// Produces the next evaluation request (or [`Ask::Done`]).
    ///
    /// # Errors
    ///
    /// Strategies may fail here on invalid internal state; validation
    /// errors discovered from results are usually raised in
    /// [`tell`](SearchStrategy::tell) instead.
    fn ask(&mut self, env: &WorkflowEnvironment) -> Result<Ask, AarcError>;

    /// Receives the results of the previous ask, in candidate order.
    ///
    /// # Errors
    ///
    /// Returns an error to abort the search (e.g. the base configuration
    /// violates the SLO).
    fn tell(&mut self, env: &WorkflowEnvironment, results: &[SimResult]) -> Result<(), AarcError>;

    /// Consumes the accumulated state into the final [`SearchOutcome`].
    /// Called exactly once, after [`ask`](SearchStrategy::ask) returned
    /// [`Ask::Done`].
    ///
    /// # Errors
    ///
    /// Returns an error if the strategy never completed (driver misuse).
    fn finish(&mut self, env: &WorkflowEnvironment) -> Result<SearchOutcome, AarcError>;
}

impl std::fmt::Debug for dyn SearchStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SearchStrategy({})", self.name())
    }
}

/// Observable lifecycle state of a [`SearchSession`], as reported by
/// [`SearchSession::step`] and [`SearchSession::state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SessionState {
    /// The session has more ask/tell rounds to run.
    Running,
    /// The session is paused: [`step`](SearchSession::step) is a no-op
    /// until [`resume`](SearchSession::resume).
    Paused,
    /// The session completed (successfully, with an error, or by
    /// cancellation); its [`SearchOutcome`] is available.
    Finished,
}

/// The best SLO-feasible candidate a session has observed so far: the
/// configuration together with the makespan and cost of its evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incumbent {
    /// The candidate configuration.
    pub configs: ConfigMap,
    /// End-to-end runtime of its evaluation, ms.
    pub makespan_ms: f64,
    /// Billed cost of its evaluation.
    pub cost: f64,
}

/// One point of a session's convergence trace: the incumbent after a
/// completed ask/evaluate/tell round.
///
/// Sessions append one point per successful step (see
/// [`SearchSession::convergence`]), so a client can plot search progress —
/// cost and makespan of the best feasible candidate against rounds or
/// evaluations — while the session runs. Pure in-memory bookkeeping: the
/// trace is deterministic (it derives from the deterministic step
/// sequence) and is not part of any report, so byte-golden outputs are
/// unaffected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundPoint {
    /// 1-based round index (equals [`SessionProgress::rounds`] after the
    /// step).
    pub round: u64,
    /// Cumulative candidate evaluations after the round.
    pub evals: u64,
    /// Cost of the incumbent after the round, if one exists yet.
    pub incumbent_cost: Option<f64>,
    /// Makespan of the incumbent after the round, ms.
    pub incumbent_makespan_ms: Option<f64>,
}

/// A cheap point-in-time snapshot of a session's progress, maintained by
/// [`SearchSession::step`] and polled by the serving layer.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionProgress {
    /// Completed ask/evaluate/tell rounds.
    pub rounds: u64,
    /// Candidate evaluations requested so far (a probe counts 1, a batch
    /// its length).
    pub evals: u64,
    /// Best feasible candidate observed so far: lowest-cost result that
    /// did not OOM and (when the session knows its SLO) met the SLO. Ties
    /// keep the earliest, so the snapshot is deterministic.
    pub incumbent: Option<Incumbent>,
}

/// One steppable search: a [`SearchStrategy`] bound to the
/// [`ScenarioHandle`] its evaluations go through, advanced one
/// ask/evaluate/tell round per [`step`](SearchSession::step).
///
/// Sessions are the unit the driver loops over and the unit the `aarc
/// serve` daemon schedules: they can be paused, resumed and cancelled
/// between steps, and publish a [`SessionProgress`] snapshot after every
/// step. The step sequence — ask, evaluate through the handle, tell — is
/// exactly the historical driver loop, so running a session to completion
/// is bit-identical to the pre-session `SearchDriver::run`.
#[derive(Debug)]
pub struct SearchSession<'s> {
    strategy: Box<dyn SearchStrategy>,
    handle: ScenarioHandle<'s>,
    slo_ms: Option<f64>,
    progress: SessionProgress,
    convergence: Vec<RoundPoint>,
    paused: bool,
    outcome: Option<Result<SearchOutcome, AarcError>>,
}

impl<'s> SearchSession<'s> {
    /// Binds `strategy` to the handle its evaluations will go through.
    pub fn new(strategy: Box<dyn SearchStrategy>, handle: ScenarioHandle<'s>) -> Self {
        SearchSession {
            strategy,
            handle,
            slo_ms: None,
            progress: SessionProgress::default(),
            convergence: Vec::new(),
            paused: false,
            outcome: None,
        }
    }

    /// [`new`](SearchSession::new), additionally telling the session the
    /// SLO the search runs under so the [`SessionProgress::incumbent`]
    /// snapshot only tracks SLO-feasible candidates.
    pub fn with_slo(
        strategy: Box<dyn SearchStrategy>,
        handle: ScenarioHandle<'s>,
        slo_ms: f64,
    ) -> Self {
        SearchSession {
            slo_ms: Some(slo_ms),
            ..SearchSession::new(strategy, handle)
        }
    }

    /// The session's scenario handle.
    pub fn handle(&self) -> &ScenarioHandle<'s> {
        &self.handle
    }

    /// The strategy's method name.
    pub fn name(&self) -> &str {
        self.strategy.name()
    }

    /// The session's lifecycle state.
    pub fn state(&self) -> SessionState {
        if self.outcome.is_some() {
            SessionState::Finished
        } else if self.paused {
            SessionState::Paused
        } else {
            SessionState::Running
        }
    }

    /// The session's progress snapshot (updated after every completed
    /// step).
    pub fn progress(&self) -> &SessionProgress {
        &self.progress
    }

    /// The per-round convergence trace: one [`RoundPoint`] per completed
    /// ask/evaluate/tell round, in round order.
    pub fn convergence(&self) -> &[RoundPoint] {
        &self.convergence
    }

    /// Pauses the session: [`step`](SearchSession::step) becomes a no-op
    /// until [`resume`](SearchSession::resume). No effect on a finished
    /// session.
    pub fn pause(&mut self) {
        self.paused = true;
    }

    /// Resumes a paused session.
    pub fn resume(&mut self) {
        self.paused = false;
    }

    /// Cancels the session: it finishes immediately with
    /// [`AarcError::SearchCancelled`]. No effect on an already finished
    /// session (its outcome is kept).
    pub fn cancel(&mut self) {
        if self.outcome.is_none() {
            self.outcome = Some(Err(AarcError::SearchCancelled));
        }
    }

    /// Advances the session by exactly one ask/evaluate/tell round and
    /// returns the state after the step. Paused and finished sessions are
    /// left untouched.
    pub fn step(&mut self) -> SessionState {
        if self.outcome.is_some() {
            return SessionState::Finished;
        }
        if self.paused {
            return SessionState::Paused;
        }
        // Split borrows: the strategy is stepped mutably while the
        // environment is borrowed from the handle.
        let SearchSession {
            strategy,
            handle,
            slo_ms,
            progress,
            convergence,
            ..
        } = self;
        let env = handle.env();
        let (asked, results) = match strategy.ask(env) {
            Err(e) => {
                self.outcome = Some(Err(e));
                return SessionState::Finished;
            }
            Ok(Ask::Done) => {
                self.outcome = Some(strategy.finish(env));
                return SessionState::Finished;
            }
            Ok(Ask::Probe(configs)) => match handle.evaluate(&configs) {
                Err(e) => {
                    self.outcome = Some(Err(e.into()));
                    return SessionState::Finished;
                }
                Ok(result) => (vec![configs], vec![result]),
            },
            Ok(Ask::Batch(candidates)) => match handle.evaluate_batch(&candidates) {
                Err(e) => {
                    self.outcome = Some(Err(e.into()));
                    return SessionState::Finished;
                }
                Ok(results) => (candidates, results),
            },
        };
        if let Err(e) = strategy.tell(env, &results) {
            self.outcome = Some(Err(e));
            return SessionState::Finished;
        }
        progress.rounds += 1;
        progress.evals += results.len() as u64;
        for (configs, result) in asked.iter().zip(&results) {
            let feasible =
                !result.any_oom() && slo_ms.is_none_or(|slo| result.makespan_ms() <= slo);
            let improves = progress
                .incumbent
                .as_ref()
                .is_none_or(|inc| result.total_cost() < inc.cost);
            if feasible && improves {
                progress.incumbent = Some(Incumbent {
                    configs: configs.clone(),
                    makespan_ms: result.makespan_ms(),
                    cost: result.total_cost(),
                });
            }
        }
        convergence.push(RoundPoint {
            round: progress.rounds,
            evals: progress.evals,
            incumbent_cost: progress.incumbent.as_ref().map(|inc| inc.cost),
            incumbent_makespan_ms: progress.incumbent.as_ref().map(|inc| inc.makespan_ms),
        });
        SessionState::Running
    }

    /// Whether the session has completed.
    pub fn is_finished(&self) -> bool {
        self.outcome.is_some()
    }

    /// Consumes a finished session into its outcome; `None` when the
    /// session has not finished yet.
    pub fn into_outcome(self) -> Option<Result<SearchOutcome, AarcError>> {
        self.outcome
    }
}

/// The evaluate-loop between strategies and the evaluation substrate: thin
/// run-to-completion loops over [`SearchSession`]s.
#[derive(Debug, Default)]
pub struct SearchDriver;

impl SearchDriver {
    /// Runs one strategy to completion on `handle`.
    ///
    /// # Errors
    ///
    /// Propagates the first strategy or platform error.
    pub fn run(
        strategy: Box<dyn SearchStrategy>,
        handle: &ScenarioHandle<'_>,
    ) -> Result<SearchOutcome, AarcError> {
        let mut session = SearchSession::new(strategy, handle.clone());
        while session.step() == SessionState::Running {}
        session
            .into_outcome()
            .expect("a stepped-to-Finished session has an outcome")
    }

    /// Runs any number of independent sessions concurrently on their (in
    /// practice shared) services by round-robin interleaving: each live
    /// session performs one ask/evaluate/tell step per round, so batches
    /// from different searches alternate on the shared worker pool.
    /// Outcomes are returned in session order; a session's error ends that
    /// session only. This is a run-to-completion loop: paused sessions are
    /// resumed (a pause would otherwise stall the round-robin forever —
    /// schedulers that honour pauses own their own loop, like the serve
    /// daemon's).
    pub fn run_interleaved(
        mut sessions: Vec<SearchSession<'_>>,
    ) -> Vec<Result<SearchOutcome, AarcError>> {
        loop {
            let mut any_live = false;
            for session in &mut sessions {
                if !session.is_finished() {
                    any_live = true;
                    session.resume();
                    session.step();
                }
            }
            if !any_live {
                break;
            }
        }
        sessions
            .into_iter()
            .map(|s| s.into_outcome().expect("every session ran to completion"))
            .collect()
    }
}

// Sessions move into the serve daemon's scheduler thread.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<SearchSession<'static>>();
    assert_send::<SessionProgress>();
};
