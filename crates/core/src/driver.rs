//! The ask/tell search driver: the evaluate-loop extracted out of the
//! individual search methods.
//!
//! Every search method is a [`SearchStrategy`] — a pure resumable state
//! machine that *asks* for candidate evaluations and is *told* their
//! results. The [`SearchDriver`] owns the loop in between: it submits each
//! ask through a [`ScenarioHandle`], so the method never touches the
//! evaluation substrate directly. The split buys two things:
//!
//! * **interleaving** — [`SearchDriver::run_interleaved`] round-robins any
//!   number of independent searches (different methods, different input
//!   classes, different scenarios) over one shared [`EvalService`]
//!   (`aarc_simulator::EvalService`) pool, one ask per search per round;
//! * **determinism** — a strategy's ask sequence depends only on the
//!   results it was told, and every evaluation's RNG seed derives from the
//!   environment seed (probes) or the candidate's batch index (batches,
//!   see [`aarc_simulator::derive_seed`]). Interleaved runs are therefore
//!   bit-identical to sequential ones, at any thread count.

use aarc_simulator::{ConfigMap, ScenarioHandle, SimResult, WorkflowEnvironment};

use crate::error::AarcError;
use crate::search::SearchOutcome;

/// One request from a strategy to the driver.
#[derive(Debug)]
pub enum Ask {
    /// Evaluate one candidate under the environment's default input and
    /// seed (the sequential probe used by the iterative methods; answered
    /// by [`ScenarioHandle::evaluate`]).
    Probe(ConfigMap),
    /// Evaluate an index-seeded batch: candidate `i` runs under
    /// `derive_seed(env.seed(), i)` and the batch fans out over the shared
    /// worker pool (answered by [`ScenarioHandle::evaluate_batch`]).
    Batch(Vec<ConfigMap>),
    /// The search is complete; the driver calls
    /// [`SearchStrategy::finish`].
    Done,
}

/// A resumable configuration-search state machine.
///
/// The protocol is strictly alternating: after an [`Ask::Probe`] or
/// [`Ask::Batch`] the driver calls [`tell`](SearchStrategy::tell) exactly
/// once with the results (one result for a probe, one per candidate in
/// batch order), then asks again. [`Ask::Done`] ends the run and
/// [`finish`](SearchStrategy::finish) is called exactly once.
///
/// Strategies own their [`SearchTrace`](crate::search::SearchTrace) and
/// best-so-far state; they must not perform evaluations themselves — that
/// is what keeps independent searches interleavable on one shared pool.
pub trait SearchStrategy {
    /// Short method name used in figures ("AARC", "BO", "MAFF").
    fn name(&self) -> &str;

    /// Produces the next evaluation request (or [`Ask::Done`]).
    ///
    /// # Errors
    ///
    /// Strategies may fail here on invalid internal state; validation
    /// errors discovered from results are usually raised in
    /// [`tell`](SearchStrategy::tell) instead.
    fn ask(&mut self, env: &WorkflowEnvironment) -> Result<Ask, AarcError>;

    /// Receives the results of the previous ask, in candidate order.
    ///
    /// # Errors
    ///
    /// Returns an error to abort the search (e.g. the base configuration
    /// violates the SLO).
    fn tell(&mut self, env: &WorkflowEnvironment, results: &[SimResult]) -> Result<(), AarcError>;

    /// Consumes the accumulated state into the final [`SearchOutcome`].
    /// Called exactly once, after [`ask`](SearchStrategy::ask) returned
    /// [`Ask::Done`].
    ///
    /// # Errors
    ///
    /// Returns an error if the strategy never completed (driver misuse).
    fn finish(&mut self, env: &WorkflowEnvironment) -> Result<SearchOutcome, AarcError>;
}

/// One interleavable search: a strategy bound to the scenario handle its
/// evaluations go through.
#[derive(Debug)]
pub struct SearchUnit<'s> {
    strategy: Box<dyn SearchStrategy>,
    handle: ScenarioHandle<'s>,
}

impl std::fmt::Debug for dyn SearchStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SearchStrategy({})", self.name())
    }
}

impl<'s> SearchUnit<'s> {
    /// Binds `strategy` to the handle its evaluations will go through.
    pub fn new(strategy: Box<dyn SearchStrategy>, handle: ScenarioHandle<'s>) -> Self {
        SearchUnit { strategy, handle }
    }

    /// The unit's scenario handle.
    pub fn handle(&self) -> &ScenarioHandle<'s> {
        &self.handle
    }

    /// The strategy's method name.
    pub fn name(&self) -> &str {
        self.strategy.name()
    }
}

/// The evaluate-loop between strategies and the evaluation substrate.
#[derive(Debug, Default)]
pub struct SearchDriver;

impl SearchDriver {
    /// Runs one strategy to completion on `handle`.
    ///
    /// # Errors
    ///
    /// Propagates the first strategy or platform error.
    pub fn run(
        strategy: Box<dyn SearchStrategy>,
        handle: &ScenarioHandle<'_>,
    ) -> Result<SearchOutcome, AarcError> {
        let mut unit = SearchUnit::new(strategy, handle.clone());
        loop {
            if let Some(result) = Self::step(&mut unit) {
                return result;
            }
        }
    }

    /// Runs any number of independent searches concurrently on their (in
    /// practice shared) services by round-robin interleaving: each live
    /// unit performs one ask/evaluate/tell step per round, so batches from
    /// different searches alternate on the shared worker pool. Outcomes are
    /// returned in unit order; a unit's error ends that unit only.
    pub fn run_interleaved(units: Vec<SearchUnit<'_>>) -> Vec<Result<SearchOutcome, AarcError>> {
        let n = units.len();
        let mut slots: Vec<Option<SearchUnit<'_>>> = units.into_iter().map(Some).collect();
        let mut outcomes: Vec<Option<Result<SearchOutcome, AarcError>>> =
            (0..n).map(|_| None).collect();
        loop {
            let mut any_live = false;
            for i in 0..n {
                let Some(unit) = slots[i].as_mut() else {
                    continue;
                };
                any_live = true;
                if let Some(result) = Self::step(unit) {
                    outcomes[i] = Some(result);
                    slots[i] = None;
                }
            }
            if !any_live {
                break;
            }
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every unit ran to completion"))
            .collect()
    }

    /// Performs one ask/evaluate/tell step. Returns `Some(outcome)` when
    /// the unit completed (successfully or with an error), `None` when it
    /// has more work.
    fn step(unit: &mut SearchUnit<'_>) -> Option<Result<SearchOutcome, AarcError>> {
        let SearchUnit { strategy, handle } = unit;
        let env = handle.env();
        let results = match strategy.ask(env) {
            Err(e) => return Some(Err(e)),
            Ok(Ask::Done) => return Some(strategy.finish(env)),
            Ok(Ask::Probe(configs)) => match handle.evaluate(&configs) {
                Err(e) => return Some(Err(e.into())),
                Ok(result) => vec![result],
            },
            Ok(Ask::Batch(candidates)) => match handle.evaluate_batch(&candidates) {
                Err(e) => return Some(Err(e.into())),
                Ok(results) => results,
            },
        };
        match strategy.tell(env, &results) {
            Err(e) => Some(Err(e)),
            Ok(()) => None,
        }
    }
}
