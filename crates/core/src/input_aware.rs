//! The Input-Aware Configuration Engine plugin (§IV-D).
//!
//! Input-sensitive workflows (Video Analysis in the paper) have different
//! optimal configurations for different input sizes. When the plugin is
//! enabled, the engine analyses representative inputs per size class, runs
//! the Graph-Centric Scheduler once per class, and at request time
//! dispatches each input to the configuration of its class.

use std::collections::BTreeMap;

use aarc_simulator::{
    ConfigMap, EvalOptions, EvalService, ExecutionReport, InputClass, InputSpec,
    WorkflowEnvironment,
};

use crate::driver::{SearchDriver, SearchSession};
use crate::error::AarcError;
use crate::scheduler::GraphCentricScheduler;
use crate::search::{ConfigurationSearch, SearchTrace};

/// Pre-computed configurations per input size class, plus a dispatcher.
#[derive(Debug, Clone)]
pub struct InputAwareEngine {
    configs: BTreeMap<InputClass, ConfigMap>,
    fallback: Option<ConfigMap>,
    trace: SearchTrace,
}

impl InputAwareEngine {
    /// Builds the engine by running `scheduler` once for every `(class,
    /// representative input)` pair on `env`, over a private single-threaded
    /// [`EvalService`] shared by all classes. See
    /// [`build_with`](InputAwareEngine::build_with) to share a wider,
    /// process-wide service instead.
    ///
    /// The configuration found for [`InputClass::Heavy`] (or, failing that,
    /// the largest class present) doubles as the fallback for inputs whose
    /// class has no dedicated configuration.
    ///
    /// # Errors
    ///
    /// Propagates scheduler errors; a class whose representative input makes
    /// even the base configuration violate the SLO is reported as such.
    pub fn build(
        scheduler: &GraphCentricScheduler,
        env: &WorkflowEnvironment,
        slo_ms: f64,
        class_inputs: &BTreeMap<InputClass, InputSpec>,
    ) -> Result<Self, AarcError> {
        Self::build_with(
            scheduler,
            &EvalService::new(EvalOptions::default()),
            env,
            slo_ms,
            class_inputs,
        )
    }

    /// [`build`](InputAwareEngine::build) over a shared [`EvalService`]:
    /// every class's environment is registered as a handle on `service`,
    /// and the per-class scheduler runs interleave their evaluations on the
    /// service's worker pool and memo-cache. Results are bit-identical to
    /// sequential per-class searches on private engines — per-class inputs
    /// bucket the cache keys, so entries never leak between classes.
    ///
    /// # Errors
    ///
    /// Propagates the first scheduler error in class order.
    pub fn build_with(
        scheduler: &GraphCentricScheduler,
        service: &EvalService,
        env: &WorkflowEnvironment,
        slo_ms: f64,
        class_inputs: &BTreeMap<InputClass, InputSpec>,
    ) -> Result<Self, AarcError> {
        let mut classes = Vec::with_capacity(class_inputs.len());
        let mut units = Vec::with_capacity(class_inputs.len());
        for (&class, &input) in class_inputs {
            let class_env = env.with_input(input);
            let strategy = scheduler.strategy(&class_env, slo_ms)?;
            units.push(SearchSession::new(strategy, service.register(class_env)));
            classes.push(class);
        }
        let outcomes = SearchDriver::run_interleaved(units);
        let mut configs = BTreeMap::new();
        let mut trace = SearchTrace::new();
        for (class, outcome) in classes.into_iter().zip(outcomes) {
            let outcome = outcome?;
            // Fold the per-class searches into one engine-level trace.
            trace.append(outcome.trace);
            configs.insert(class, outcome.best_configs);
        }
        let fallback = configs
            .get(&InputClass::Heavy)
            .or_else(|| configs.values().next_back())
            .cloned();
        Ok(InputAwareEngine {
            configs,
            fallback,
            trace,
        })
    }

    /// Creates an engine directly from pre-computed configurations (useful
    /// in tests and when configurations are cached).
    pub fn from_configs(configs: BTreeMap<InputClass, ConfigMap>) -> Self {
        let fallback = configs
            .get(&InputClass::Heavy)
            .or_else(|| configs.values().next_back())
            .cloned();
        InputAwareEngine {
            configs,
            fallback,
            trace: SearchTrace::new(),
        }
    }

    /// The configuration selected for `input`: the one of its size class,
    /// falling back to the heaviest available configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AarcError::NoConfigurations`] when the engine holds no
    /// configurations at all.
    pub fn dispatch(&self, input: InputSpec) -> Result<&ConfigMap, AarcError> {
        let class = input.classify();
        self.configs
            .get(&class)
            .or(self.fallback.as_ref())
            .ok_or(AarcError::NoConfigurations)
    }

    /// The configuration of a specific class, if present.
    pub fn config_for(&self, class: InputClass) -> Option<&ConfigMap> {
        self.configs.get(&class)
    }

    /// Number of classes with a dedicated configuration.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Returns `true` if the engine holds no configurations.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The merged search trace of all per-class scheduler runs.
    pub fn trace(&self) -> &SearchTrace {
        &self.trace
    }

    /// Serves one request: dispatches `input` to its class configuration and
    /// executes the workflow with it.
    ///
    /// # Errors
    ///
    /// Propagates dispatch and execution errors.
    pub fn serve(
        &self,
        env: &WorkflowEnvironment,
        input: InputSpec,
    ) -> Result<ExecutionReport, AarcError> {
        let configs = self.dispatch(input)?;
        Ok(env.execute_with_input(configs, input)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::AarcParams;
    use aarc_simulator::{FunctionProfile, ProfileSet, ResourceConfig};
    use aarc_workflow::WorkflowBuilder;

    fn input_sensitive_env() -> WorkflowEnvironment {
        let mut b = WorkflowBuilder::new("video-like");
        let a = b.add_function("split");
        let c = b.add_function("process");
        b.add_edge(a, c).unwrap();
        let wf = b.build().unwrap();
        let mut p = ProfileSet::new();
        p.insert(
            a,
            FunctionProfile::builder("split")
                .serial_ms(2_000.0)
                .parallel_ms(8_000.0)
                .max_parallelism(4.0)
                .working_set_mb(1_024.0)
                .mem_floor_mb(512.0)
                .input_sensitivity(1.0)
                .mem_input_sensitivity(0.8)
                .build(),
        );
        p.insert(
            c,
            FunctionProfile::builder("process")
                .serial_ms(4_000.0)
                .parallel_ms(20_000.0)
                .max_parallelism(6.0)
                .working_set_mb(2_048.0)
                .mem_floor_mb(1_024.0)
                .input_sensitivity(1.0)
                .mem_input_sensitivity(0.8)
                .build(),
        );
        WorkflowEnvironment::builder(wf, p).build().unwrap()
    }

    fn class_inputs() -> BTreeMap<InputClass, InputSpec> {
        BTreeMap::from([
            (InputClass::Light, InputSpec::new(0.4, 4.0)),
            (InputClass::Middle, InputSpec::new(1.0, 16.0)),
            (InputClass::Heavy, InputSpec::new(2.0, 64.0)),
        ])
    }

    #[test]
    fn engine_builds_one_config_per_class() {
        let env = input_sensitive_env();
        let scheduler = GraphCentricScheduler::new(AarcParams::fast());
        let engine = InputAwareEngine::build(&scheduler, &env, 120_000.0, &class_inputs()).unwrap();
        assert_eq!(engine.len(), 3);
        assert!(!engine.is_empty());
        for class in InputClass::ALL {
            assert!(engine.config_for(class).is_some());
        }
    }

    #[test]
    fn heavy_inputs_get_larger_configurations_than_light_ones() {
        let env = input_sensitive_env();
        let scheduler = GraphCentricScheduler::new(AarcParams::fast());
        let engine = InputAwareEngine::build(&scheduler, &env, 120_000.0, &class_inputs()).unwrap();
        let light = engine.config_for(InputClass::Light).unwrap();
        let heavy = engine.config_for(InputClass::Heavy).unwrap();
        assert!(heavy.total_memory_mb() >= light.total_memory_mb());
    }

    #[test]
    fn dispatch_routes_by_class_and_serves_within_slo() {
        let env = input_sensitive_env();
        let slo = 120_000.0;
        let scheduler = GraphCentricScheduler::new(AarcParams::fast());
        let engine = InputAwareEngine::build(&scheduler, &env, slo, &class_inputs()).unwrap();
        for (_, &input) in class_inputs().iter() {
            let report = engine.serve(&env, input).unwrap();
            assert!(
                report.meets_slo(slo),
                "class {:?} violates slo",
                input.classify()
            );
        }
    }

    #[test]
    fn build_with_shared_service_matches_private_build() {
        let env = input_sensitive_env();
        let slo = 120_000.0;
        let scheduler = GraphCentricScheduler::new(AarcParams::fast());
        let private = InputAwareEngine::build(&scheduler, &env, slo, &class_inputs()).unwrap();
        let service = EvalService::with_threads(4);
        let shared =
            InputAwareEngine::build_with(&scheduler, &service, &env, slo, &class_inputs()).unwrap();
        for class in InputClass::ALL {
            assert_eq!(
                private.config_for(class),
                shared.config_for(class),
                "interleaving on a shared pool must not change class {class} configs"
            );
        }
        assert_eq!(private.trace(), shared.trace());
        // One handle per class env, each with its own fingerprint.
        assert_eq!(service.scenario_stats().len(), 3);
        assert!(service.stats().requests > 0);
    }

    #[test]
    fn dispatch_without_configs_errors() {
        let engine = InputAwareEngine::from_configs(BTreeMap::new());
        assert!(matches!(
            engine.dispatch(InputSpec::nominal()),
            Err(AarcError::NoConfigurations)
        ));
    }

    #[test]
    fn unknown_class_falls_back_to_heaviest() {
        let env = input_sensitive_env();
        let heavy_cfg = ConfigMap::uniform(env.workflow().len(), ResourceConfig::new(8.0, 4_096));
        let engine = InputAwareEngine::from_configs(BTreeMap::from([(
            InputClass::Heavy,
            heavy_cfg.clone(),
        )]));
        // A light input has no dedicated configuration; the heavy one is
        // used as fallback.
        let dispatched = engine.dispatch(InputSpec::new(0.3, 1.0)).unwrap();
        assert_eq!(dispatched, &heavy_cfg);
    }
}
