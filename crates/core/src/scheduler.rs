//! The Graph-Centric Scheduler (Algorithm 1), in resumable ask/tell form.

use aarc_simulator::{profile_workflow, ConfigMap, SimResult, WorkflowEnvironment};
use aarc_workflow::subpath::{decompose, DetourSubpath, PathDecomposition};

use crate::configurator::{PathConfigState, PriorityConfigurator};
use crate::driver::{Ask, SearchStrategy};
use crate::error::AarcError;
use crate::params::AarcParams;
use crate::search::{validate_slo, ConfigurationSearch, SearchOutcome, SearchTrace};

/// The Graph-Centric Scheduler: profiles the workflow, decomposes it into
/// its critical path and detour sub-paths, derives sub-SLOs and drives the
/// [`PriorityConfigurator`] path by path (Algorithm 1).
///
/// The scheduler implements [`ConfigurationSearch`], so it can be compared
/// one-for-one against the baseline methods.
#[derive(Debug, Clone)]
pub struct GraphCentricScheduler {
    params: AarcParams,
    configurator: PriorityConfigurator,
}

impl GraphCentricScheduler {
    /// Creates a scheduler with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid (see [`AarcParams::validate`]).
    pub fn new(params: AarcParams) -> Self {
        GraphCentricScheduler {
            configurator: PriorityConfigurator::new(params),
            params,
        }
    }

    /// The scheduler's parameters.
    pub fn params(&self) -> &AarcParams {
        &self.params
    }

    /// Profiles the workflow under the base configuration and returns its
    /// path decomposition — the structural half of Algorithm 1, exposed for
    /// inspection and for the examples.
    ///
    /// # Errors
    ///
    /// Propagates platform errors from the profiling run.
    pub fn decompose_workflow(
        &self,
        env: &WorkflowEnvironment,
    ) -> Result<PathDecomposition, AarcError> {
        let weights = profile_workflow(env, &env.base_configs())?;
        Ok(decompose(env.workflow().dag(), weights.weight_fn()))
    }
}

/// Derives the latency budget of a detour sub-path from the timeline of
/// the already-configured workflow: the window between the completion of
/// its start anchor and the start of its end anchor (the paper's
/// `runtime_sum(L, sp.start, sp.end)` minus the runtimes of the already
/// scheduled anchor functions). Detours starting at a workflow entry use
/// time zero as the window start; detours ending at a workflow exit may
/// run until the end-to-end SLO.
fn subpath_budget_ms(
    env: &WorkflowEnvironment,
    report: &SimResult,
    subpath: &DetourSubpath,
    slo_ms: f64,
) -> f64 {
    let window_start = subpath
        .start_anchor
        .and_then(|a| report.execution(a))
        .map_or(0.0, |e| e.end_ms);
    let window_end = subpath
        .end_anchor
        .and_then(|a| report.execution(a))
        .map_or(slo_ms, |e| e.start_ms);
    // Leave room for the hand-off from the detour's tail to its end
    // anchor (conservatively the full edge payload).
    let handoff_ms = match (subpath.interior.last(), subpath.end_anchor) {
        (Some(&tail), Some(anchor)) => env
            .workflow()
            .edge(tail, anchor)
            .map_or(0.0, |e| env.cluster().transfer_ms(e.payload_mb)),
        _ => 0.0,
    };
    (window_end - window_start - handoff_ms).max(0.0)
}

/// Where the scheduler strategy is in Algorithm 1. Stages double as the
/// routing key for `tell`: a stage that just asked for a probe interprets
/// the next result.
enum Stage {
    /// Probe the over-provisioned base configuration (lines 2-5).
    Base,
    /// Configuring the critical path (lines 7-9).
    Critical(PathConfigState),
    /// Re-executing so sub-SLO windows reflect the configured critical
    /// path (step ❺ of the architecture figure).
    CriticalReexec,
    /// Selecting the next detour sub-path to configure (lines 11-21).
    Subpaths { next: usize },
    /// Configuring detour sub-path `index` within its window.
    Subpath {
        index: usize,
        state: PathConfigState,
    },
    /// Re-executing after sub-path `index` was configured.
    SubpathReexec { index: usize },
    /// Awaiting the safety-net execution with detours reverted to base.
    Guard,
    /// Search complete.
    Finished,
}

/// The ask/tell form of Algorithm 1: base probe, critical-path
/// configuration, per-sub-path configuration with re-executions in
/// between, and the SLO safety net — every evaluation expressed as an
/// [`Ask::Probe`] so the driver (and therefore a shared pool) executes it.
struct SchedulerStrategy {
    configurator: PriorityConfigurator,
    slo_ms: f64,
    configs: ConfigMap,
    trace: SearchTrace,
    decomposition: Option<PathDecomposition>,
    current_report: Option<SimResult>,
    final_report: Option<SimResult>,
    stage: Stage,
}

impl SchedulerStrategy {
    fn new(configurator: PriorityConfigurator, slo_ms: f64) -> Self {
        SchedulerStrategy {
            configurator,
            slo_ms,
            configs: ConfigMap::from_vec(Vec::new()),
            trace: SearchTrace::new(),
            decomposition: None,
            current_report: None,
            final_report: None,
            stage: Stage::Base,
        }
    }

    fn decomposition(&self) -> &PathDecomposition {
        self.decomposition
            .as_ref()
            .expect("decomposition exists after the base probe")
    }
}

impl SearchStrategy for SchedulerStrategy {
    fn name(&self) -> &str {
        "AARC"
    }

    fn ask(&mut self, env: &WorkflowEnvironment) -> Result<Ask, AarcError> {
        loop {
            match std::mem::replace(&mut self.stage, Stage::Finished) {
                Stage::Base => {
                    // Lines 2-5: assign the over-provisioned base
                    // configuration and execute once to profile the
                    // workflow.
                    self.configs = env.base_configs();
                    self.stage = Stage::Base;
                    return Ok(Ask::Probe(self.configs.clone()));
                }
                Stage::Critical(mut state) => {
                    if state.propose(env, &mut self.configs) {
                        self.stage = Stage::Critical(state);
                    } else {
                        // Critical path done: re-execute so sub-SLO windows
                        // reflect the configured critical path. The last
                        // accepted candidate is still memoised, so this is
                        // a cache hit.
                        self.stage = Stage::CriticalReexec;
                    }
                    return Ok(Ask::Probe(self.configs.clone()));
                }
                Stage::Subpaths { next } => {
                    let decomposition = self.decomposition();
                    let current = self
                        .current_report
                        .as_ref()
                        .expect("current report exists after the critical re-exec");
                    let mut index = next;
                    let mut started = None;
                    while index < decomposition.subpaths.len() {
                        let subpath = &decomposition.subpaths[index];
                        let budget = subpath_budget_ms(env, current, subpath, self.slo_ms);
                        if budget <= 0.0 || subpath.interior.is_empty() {
                            index += 1;
                            continue;
                        }
                        started = Some(self.configurator.begin_path(
                            env,
                            &subpath.interior,
                            budget,
                            self.slo_ms,
                            current,
                        ));
                        break;
                    }
                    if let Some(state) = started {
                        self.stage = Stage::Subpath { index, state };
                        continue;
                    }
                    // All sub-paths configured (or skipped). Safety net: if
                    // the combined configuration somehow violates the SLO
                    // (e.g. through transfer effects not captured by the
                    // per-path budgets), fall back to base configurations
                    // for all non-critical functions. The
                    // critical-path-only configuration is SLO-compliant by
                    // construction.
                    let current = current.clone();
                    if current.meets_slo(self.slo_ms) {
                        self.final_report = Some(current);
                        self.stage = Stage::Finished;
                        return Ok(Ask::Done);
                    }
                    let detour_nodes: Vec<_> = self
                        .decomposition()
                        .subpaths
                        .iter()
                        .flat_map(|sp| sp.interior.iter().copied())
                        .collect();
                    for node in detour_nodes {
                        self.configs.set(node, env.base_config());
                    }
                    self.stage = Stage::Guard;
                    return Ok(Ask::Probe(self.configs.clone()));
                }
                Stage::Subpath { index, mut state } => {
                    if state.propose(env, &mut self.configs) {
                        self.stage = Stage::Subpath { index, state };
                    } else {
                        self.stage = Stage::SubpathReexec { index };
                    }
                    return Ok(Ask::Probe(self.configs.clone()));
                }
                Stage::Finished => return Ok(Ask::Done),
                Stage::CriticalReexec | Stage::SubpathReexec { .. } | Stage::Guard => {
                    unreachable!("re-exec stages await tell, never ask")
                }
            }
        }
    }

    fn tell(&mut self, env: &WorkflowEnvironment, results: &[SimResult]) -> Result<(), AarcError> {
        let result = &results[0];
        match std::mem::replace(&mut self.stage, Stage::Finished) {
            Stage::Base => {
                self.trace.record(result, true, "base configuration");
                if result.any_oom() {
                    return Err(AarcError::BaseConfigurationOom);
                }
                if !result.meets_slo(self.slo_ms) {
                    return Err(AarcError::BaseConfigurationViolatesSlo {
                        makespan_ms: result.makespan_ms(),
                        slo_ms: self.slo_ms,
                    });
                }
                // Lines 6, 10: weighted-DAG decomposition into the critical
                // path and its detour sub-paths.
                let weights = aarc_simulator::ProfiledWeights::from_result(result);
                let decomposition = decompose(env.workflow().dag(), weights.weight_fn());
                // Lines 7-9: configure the critical path against the
                // end-to-end SLO.
                let state = self.configurator.begin_path(
                    env,
                    decomposition.critical.nodes(),
                    self.slo_ms,
                    self.slo_ms,
                    result,
                );
                self.decomposition = Some(decomposition);
                self.stage = Stage::Critical(state);
            }
            Stage::Critical(mut state) => {
                state.observe(env, &mut self.configs, result, &mut self.trace);
                self.stage = Stage::Critical(state);
            }
            Stage::CriticalReexec => {
                self.trace.record(result, true, "critical path configured");
                self.current_report = Some(result.clone());
                self.stage = Stage::Subpaths { next: 0 };
            }
            Stage::Subpath { index, mut state } => {
                state.observe(env, &mut self.configs, result, &mut self.trace);
                self.stage = Stage::Subpath { index, state };
            }
            Stage::SubpathReexec { index } => {
                let interior_len = self.decomposition().subpaths[index].interior.len();
                self.trace.record(
                    result,
                    true,
                    format!("sub-path of {interior_len} functions configured"),
                );
                self.current_report = Some(result.clone());
                self.stage = Stage::Subpaths { next: index + 1 };
            }
            Stage::Guard => {
                self.trace
                    .record(result, true, "slo guard: detours reverted to base");
                self.final_report = Some(result.clone());
                self.stage = Stage::Finished;
            }
            Stage::Subpaths { .. } | Stage::Finished => {
                unreachable!("tell without an evaluation in flight")
            }
        }
        Ok(())
    }

    fn finish(&mut self, _env: &WorkflowEnvironment) -> Result<SearchOutcome, AarcError> {
        Ok(SearchOutcome {
            best_configs: self.configs.clone(),
            final_report: self
                .final_report
                .take()
                .expect("finish follows Ask::Done, which set the final report"),
            trace: std::mem::take(&mut self.trace),
        })
    }
}

impl ConfigurationSearch for GraphCentricScheduler {
    fn name(&self) -> &str {
        "AARC"
    }

    fn strategy(
        &self,
        _env: &WorkflowEnvironment,
        slo_ms: f64,
    ) -> Result<Box<dyn SearchStrategy>, AarcError> {
        validate_slo(slo_ms)?;
        Ok(Box::new(SchedulerStrategy::new(
            self.configurator.clone(),
            slo_ms,
        )))
    }
}

impl Default for GraphCentricScheduler {
    fn default() -> Self {
        GraphCentricScheduler::new(AarcParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarc_simulator::{FunctionProfile, ProfileSet};
    use aarc_workflow::{NodeId, WorkflowBuilder};

    /// A diamond workflow with one heavy (critical) branch and one light
    /// detour branch.
    fn diamond_env() -> WorkflowEnvironment {
        let mut b = WorkflowBuilder::new("diamond");
        let start = b.add_function("start");
        let heavy = b.add_function("heavy");
        let light = b.add_function("light");
        let end = b.add_function("end");
        b.add_edge(start, heavy).unwrap();
        b.add_edge(start, light).unwrap();
        b.add_edge(heavy, end).unwrap();
        b.add_edge(light, end).unwrap();
        let wf = b.build().unwrap();
        let mut p = ProfileSet::new();
        p.insert(
            start,
            FunctionProfile::builder("start").serial_ms(1_000.0).build(),
        );
        p.insert(
            heavy,
            FunctionProfile::builder("heavy")
                .serial_ms(5_000.0)
                .parallel_ms(40_000.0)
                .max_parallelism(6.0)
                .working_set_mb(1_024.0)
                .mem_floor_mb(512.0)
                .build(),
        );
        p.insert(
            light,
            FunctionProfile::builder("light")
                .serial_ms(3_000.0)
                .working_set_mb(512.0)
                .mem_floor_mb(256.0)
                .build(),
        );
        p.insert(
            end,
            FunctionProfile::builder("end").serial_ms(1_000.0).build(),
        );
        WorkflowEnvironment::builder(wf, p).build().unwrap()
    }

    #[test]
    fn search_meets_slo_and_reduces_cost() {
        let env = diamond_env();
        let slo = 60_000.0;
        let scheduler = GraphCentricScheduler::default();
        let outcome = scheduler.search(&env, slo).unwrap();
        let base_cost = env.execute(&env.base_configs()).unwrap().total_cost();
        assert!(outcome.final_report.meets_slo(slo));
        assert!(
            outcome.best_cost() < 0.5 * base_cost,
            "expect large savings"
        );
        assert!(outcome.trace.sample_count() > 2);
    }

    #[test]
    fn every_function_gets_a_configuration_within_the_space() {
        let env = diamond_env();
        let scheduler = GraphCentricScheduler::default();
        let outcome = scheduler.search(&env, 60_000.0).unwrap();
        assert_eq!(outcome.best_configs.len(), env.workflow().len());
        for (_, cfg) in outcome.best_configs.iter() {
            assert!(
                env.space().contains(cfg),
                "{cfg} outside the resource space"
            );
        }
    }

    #[test]
    fn detour_budget_is_respected() {
        // The light branch must not delay the end function beyond what the
        // configured critical path allows.
        let env = diamond_env();
        let slo = 60_000.0;
        let scheduler = GraphCentricScheduler::default();
        let outcome = scheduler.search(&env, slo).unwrap();
        let report = outcome.final_report;
        let heavy_end = report.execution(NodeId::new(1)).unwrap().end_ms;
        let light_end = report.execution(NodeId::new(2)).unwrap().end_ms;
        // The detour may stretch, but the workflow end is still dominated by
        // (or equal to) the critical branch within the SLO.
        assert!(report.makespan_ms() <= slo);
        assert!(light_end <= slo);
        assert!(heavy_end <= slo);
    }

    #[test]
    fn invalid_slo_is_rejected() {
        let env = diamond_env();
        let scheduler = GraphCentricScheduler::default();
        assert!(matches!(
            scheduler.search(&env, 0.0),
            Err(AarcError::InvalidSlo(_))
        ));
        assert!(matches!(
            scheduler.search(&env, f64::NAN),
            Err(AarcError::InvalidSlo(_))
        ));
    }

    #[test]
    fn impossible_slo_reports_base_violation() {
        let env = diamond_env();
        let scheduler = GraphCentricScheduler::default();
        let err = scheduler.search(&env, 10.0).unwrap_err();
        assert!(matches!(
            err,
            AarcError::BaseConfigurationViolatesSlo { .. }
        ));
    }

    #[test]
    fn decompose_workflow_exposes_critical_path() {
        let env = diamond_env();
        let scheduler = GraphCentricScheduler::default();
        let decomposition = scheduler.decompose_workflow(&env).unwrap();
        assert!(decomposition.critical.contains(NodeId::new(1)));
        assert_eq!(decomposition.subpaths.len(), 1);
        assert_eq!(decomposition.subpaths[0].interior, vec![NodeId::new(2)]);
    }

    #[test]
    fn tighter_slo_yields_more_expensive_configuration() {
        let env = diamond_env();
        let scheduler = GraphCentricScheduler::default();
        let relaxed = scheduler.search(&env, 90_000.0).unwrap();
        let tight = scheduler.search(&env, 25_000.0).unwrap();
        assert!(tight.final_report.meets_slo(25_000.0));
        assert!(relaxed.final_report.meets_slo(90_000.0));
        assert!(
            relaxed.best_cost() <= tight.best_cost() * 1.05,
            "a relaxed SLO should never force a more expensive configuration (relaxed {} vs tight {})",
            relaxed.best_cost(),
            tight.best_cost()
        );
    }

    #[test]
    fn scheduler_name_is_aarc() {
        assert_eq!(GraphCentricScheduler::default().name(), "AARC");
    }
}
