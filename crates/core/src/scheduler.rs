//! The Graph-Centric Scheduler (Algorithm 1).

use aarc_simulator::{profile_workflow, ConfigMap, EvalEngine, SimResult, WorkflowEnvironment};
use aarc_workflow::subpath::{decompose, DetourSubpath, PathDecomposition};

use crate::configurator::PriorityConfigurator;
use crate::error::AarcError;
use crate::params::AarcParams;
use crate::search::{validate_slo, ConfigurationSearch, SearchOutcome, SearchTrace};

/// The Graph-Centric Scheduler: profiles the workflow, decomposes it into
/// its critical path and detour sub-paths, derives sub-SLOs and drives the
/// [`PriorityConfigurator`] path by path (Algorithm 1).
///
/// The scheduler implements [`ConfigurationSearch`], so it can be compared
/// one-for-one against the baseline methods.
#[derive(Debug, Clone)]
pub struct GraphCentricScheduler {
    params: AarcParams,
    configurator: PriorityConfigurator,
}

impl GraphCentricScheduler {
    /// Creates a scheduler with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid (see [`AarcParams::validate`]).
    pub fn new(params: AarcParams) -> Self {
        GraphCentricScheduler {
            configurator: PriorityConfigurator::new(params),
            params,
        }
    }

    /// The scheduler's parameters.
    pub fn params(&self) -> &AarcParams {
        &self.params
    }

    /// Profiles the workflow under the base configuration and returns its
    /// path decomposition — the structural half of Algorithm 1, exposed for
    /// inspection and for the examples.
    ///
    /// # Errors
    ///
    /// Propagates platform errors from the profiling run.
    pub fn decompose_workflow(
        &self,
        env: &WorkflowEnvironment,
    ) -> Result<PathDecomposition, AarcError> {
        let weights = profile_workflow(env, &env.base_configs())?;
        Ok(decompose(env.workflow().dag(), weights.weight_fn()))
    }

    /// Derives the latency budget of a detour sub-path from the timeline of
    /// the already-configured workflow: the window between the completion of
    /// its start anchor and the start of its end anchor (the paper's
    /// `runtime_sum(L, sp.start, sp.end)` minus the runtimes of the already
    /// scheduled anchor functions). Detours starting at a workflow entry use
    /// time zero as the window start; detours ending at a workflow exit may
    /// run until the end-to-end SLO.
    fn subpath_budget_ms(
        &self,
        env: &WorkflowEnvironment,
        report: &SimResult,
        subpath: &DetourSubpath,
        slo_ms: f64,
    ) -> f64 {
        let window_start = subpath
            .start_anchor
            .and_then(|a| report.execution(a))
            .map_or(0.0, |e| e.end_ms);
        let window_end = subpath
            .end_anchor
            .and_then(|a| report.execution(a))
            .map_or(slo_ms, |e| e.start_ms);
        // Leave room for the hand-off from the detour's tail to its end
        // anchor (conservatively the full edge payload).
        let handoff_ms = match (subpath.interior.last(), subpath.end_anchor) {
            (Some(&tail), Some(anchor)) => env
                .workflow()
                .edge(tail, anchor)
                .map_or(0.0, |e| env.cluster().transfer_ms(e.payload_mb)),
            _ => 0.0,
        };
        (window_end - window_start - handoff_ms).max(0.0)
    }
}

impl ConfigurationSearch for GraphCentricScheduler {
    fn name(&self) -> &str {
        "AARC"
    }

    fn search_with(&self, engine: &EvalEngine, slo_ms: f64) -> Result<SearchOutcome, AarcError> {
        let env = engine.env();
        validate_slo(slo_ms)?;
        let mut trace = SearchTrace::new();

        // Lines 2-5: assign the over-provisioned base configuration and
        // execute once to profile the workflow.
        let mut configs: ConfigMap = env.base_configs();
        let base_report = engine.evaluate(&configs)?;
        trace.record(&base_report, true, "base configuration");
        if base_report.any_oom() {
            return Err(AarcError::BaseConfigurationOom);
        }
        if !base_report.meets_slo(slo_ms) {
            return Err(AarcError::BaseConfigurationViolatesSlo {
                makespan_ms: base_report.makespan_ms(),
                slo_ms,
            });
        }

        // Lines 6, 10: weighted-DAG decomposition into the critical path and
        // its detour sub-paths.
        let weights = aarc_simulator::ProfiledWeights::from_result(&base_report);
        let decomposition = decompose(env.workflow().dag(), weights.weight_fn());

        // Lines 7-9: configure the critical path against the end-to-end SLO.
        self.configurator.configure_path(
            engine,
            &mut configs,
            decomposition.critical.nodes(),
            slo_ms,
            slo_ms,
            &base_report,
            &mut trace,
        )?;

        // Re-execute so sub-SLO windows reflect the *configured* critical
        // path (step ❺ of the paper's architecture figure). The last
        // accepted candidate is still memoised, so this is a cache hit.
        let mut current_report = engine.evaluate(&configs)?;
        trace.record(&current_report, true, "critical path configured");

        // Lines 11-21: configure every detour sub-path within its window.
        for subpath in &decomposition.subpaths {
            let budget = self.subpath_budget_ms(env, &current_report, subpath, slo_ms);
            if budget <= 0.0 || subpath.interior.is_empty() {
                continue;
            }
            self.configurator.configure_path(
                engine,
                &mut configs,
                &subpath.interior,
                budget,
                slo_ms,
                &current_report,
                &mut trace,
            )?;
            current_report = engine.evaluate(&configs)?;
            trace.record(
                &current_report,
                true,
                format!(
                    "sub-path of {} functions configured",
                    subpath.interior.len()
                ),
            );
        }

        // Safety net: if the combined configuration somehow violates the SLO
        // (e.g. through transfer effects not captured by the per-path
        // budgets), fall back to base configurations for all non-critical
        // functions. The critical-path-only configuration is SLO-compliant
        // by construction.
        let mut final_report = current_report;
        if !final_report.meets_slo(slo_ms) {
            for subpath in &decomposition.subpaths {
                for &node in &subpath.interior {
                    configs.set(node, env.base_config());
                }
            }
            final_report = engine.evaluate(&configs)?;
            trace.record(&final_report, true, "slo guard: detours reverted to base");
        }

        Ok(SearchOutcome {
            best_configs: configs,
            final_report,
            trace,
        })
    }
}

impl Default for GraphCentricScheduler {
    fn default() -> Self {
        GraphCentricScheduler::new(AarcParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarc_simulator::{FunctionProfile, ProfileSet};
    use aarc_workflow::{NodeId, WorkflowBuilder};

    /// A diamond workflow with one heavy (critical) branch and one light
    /// detour branch.
    fn diamond_env() -> WorkflowEnvironment {
        let mut b = WorkflowBuilder::new("diamond");
        let start = b.add_function("start");
        let heavy = b.add_function("heavy");
        let light = b.add_function("light");
        let end = b.add_function("end");
        b.add_edge(start, heavy).unwrap();
        b.add_edge(start, light).unwrap();
        b.add_edge(heavy, end).unwrap();
        b.add_edge(light, end).unwrap();
        let wf = b.build().unwrap();
        let mut p = ProfileSet::new();
        p.insert(
            start,
            FunctionProfile::builder("start").serial_ms(1_000.0).build(),
        );
        p.insert(
            heavy,
            FunctionProfile::builder("heavy")
                .serial_ms(5_000.0)
                .parallel_ms(40_000.0)
                .max_parallelism(6.0)
                .working_set_mb(1_024.0)
                .mem_floor_mb(512.0)
                .build(),
        );
        p.insert(
            light,
            FunctionProfile::builder("light")
                .serial_ms(3_000.0)
                .working_set_mb(512.0)
                .mem_floor_mb(256.0)
                .build(),
        );
        p.insert(
            end,
            FunctionProfile::builder("end").serial_ms(1_000.0).build(),
        );
        WorkflowEnvironment::builder(wf, p).build().unwrap()
    }

    #[test]
    fn search_meets_slo_and_reduces_cost() {
        let env = diamond_env();
        let slo = 60_000.0;
        let scheduler = GraphCentricScheduler::default();
        let outcome = scheduler.search(&env, slo).unwrap();
        let base_cost = env.execute(&env.base_configs()).unwrap().total_cost();
        assert!(outcome.final_report.meets_slo(slo));
        assert!(
            outcome.best_cost() < 0.5 * base_cost,
            "expect large savings"
        );
        assert!(outcome.trace.sample_count() > 2);
    }

    #[test]
    fn every_function_gets_a_configuration_within_the_space() {
        let env = diamond_env();
        let scheduler = GraphCentricScheduler::default();
        let outcome = scheduler.search(&env, 60_000.0).unwrap();
        assert_eq!(outcome.best_configs.len(), env.workflow().len());
        for (_, cfg) in outcome.best_configs.iter() {
            assert!(
                env.space().contains(cfg),
                "{cfg} outside the resource space"
            );
        }
    }

    #[test]
    fn detour_budget_is_respected() {
        // The light branch must not delay the end function beyond what the
        // configured critical path allows.
        let env = diamond_env();
        let slo = 60_000.0;
        let scheduler = GraphCentricScheduler::default();
        let outcome = scheduler.search(&env, slo).unwrap();
        let report = outcome.final_report;
        let heavy_end = report.execution(NodeId::new(1)).unwrap().end_ms;
        let light_end = report.execution(NodeId::new(2)).unwrap().end_ms;
        // The detour may stretch, but the workflow end is still dominated by
        // (or equal to) the critical branch within the SLO.
        assert!(report.makespan_ms() <= slo);
        assert!(light_end <= slo);
        assert!(heavy_end <= slo);
    }

    #[test]
    fn invalid_slo_is_rejected() {
        let env = diamond_env();
        let scheduler = GraphCentricScheduler::default();
        assert!(matches!(
            scheduler.search(&env, 0.0),
            Err(AarcError::InvalidSlo(_))
        ));
        assert!(matches!(
            scheduler.search(&env, f64::NAN),
            Err(AarcError::InvalidSlo(_))
        ));
    }

    #[test]
    fn impossible_slo_reports_base_violation() {
        let env = diamond_env();
        let scheduler = GraphCentricScheduler::default();
        let err = scheduler.search(&env, 10.0).unwrap_err();
        assert!(matches!(
            err,
            AarcError::BaseConfigurationViolatesSlo { .. }
        ));
    }

    #[test]
    fn decompose_workflow_exposes_critical_path() {
        let env = diamond_env();
        let scheduler = GraphCentricScheduler::default();
        let decomposition = scheduler.decompose_workflow(&env).unwrap();
        assert!(decomposition.critical.contains(NodeId::new(1)));
        assert_eq!(decomposition.subpaths.len(), 1);
        assert_eq!(decomposition.subpaths[0].interior, vec![NodeId::new(2)]);
    }

    #[test]
    fn tighter_slo_yields_more_expensive_configuration() {
        let env = diamond_env();
        let scheduler = GraphCentricScheduler::default();
        let relaxed = scheduler.search(&env, 90_000.0).unwrap();
        let tight = scheduler.search(&env, 25_000.0).unwrap();
        assert!(tight.final_report.meets_slo(25_000.0));
        assert!(relaxed.final_report.meets_slo(90_000.0));
        assert!(
            relaxed.best_cost() <= tight.best_cost() * 1.05,
            "a relaxed SLO should never force a more expensive configuration (relaxed {} vs tight {})",
            relaxed.best_cost(),
            tight.best_cost()
        );
    }

    #[test]
    fn scheduler_name_is_aarc() {
        assert_eq!(GraphCentricScheduler::default().name(), "AARC");
    }
}
