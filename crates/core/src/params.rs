//! Tunable parameters of the AARC scheduler and configurator.

use serde::{Deserialize, Serialize};

/// Parameters of Algorithms 1 and 2.
///
/// The defaults correspond to the constants implied by the paper: a per-path
/// sampling budget (`MAX_TRAIL`) of 100, a per-operation revert budget
/// (`FUNC_TRIAL`) of 4, an initial shrink step of 30 % of the base
/// allocation with exponential back-off on revert, and affinity-guided
/// seeding of the priority queue. With these settings the scheduler needs
/// roughly 50–75 samples for the paper's six-function workflows, matching
/// the sample counts reported in §IV-B.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AarcParams {
    /// Maximum number of samples (workflow executions) spent configuring one
    /// path — the paper's `MAX_TRAIL`.
    pub max_trials_per_path: usize,
    /// How many times a single operation may be reverted before it is
    /// permanently dropped from the queue — the paper's `FUNC_TRIAL`.
    pub func_trials: u32,
    /// Initial shrink step for CPU operations, as a fraction of the base
    /// vCPU allocation (the paper's running example in Fig. 4 shows
    /// percentage steps that halve on revert).
    pub initial_cpu_step: f64,
    /// Initial shrink step for memory operations, as a fraction of the base
    /// memory allocation.
    pub initial_mem_step: f64,
    /// Multiplier applied to the step on every revert (exponential
    /// back-off, Algorithm 2 line 15). Must be in `(0, 1)`.
    pub backoff_factor: f64,
    /// Whether the priority queue is seeded by the per-function resource
    /// affinity (memory operations first for CPU-bound functions and vice
    /// versa). Disabling this reproduces the plain Algorithm 2 ordering and
    /// is used by the `ablation_affinity` bench.
    pub affinity_guided: bool,
    /// Safety margin kept between the configured path runtime and its SLO
    /// (e.g. `0.98` aims the path at 98 % of the budget). `1.0` uses the
    /// full budget.
    pub slo_safety_factor: f64,
}

impl AarcParams {
    /// Parameters matching the paper's description.
    pub fn paper() -> Self {
        AarcParams {
            max_trials_per_path: 100,
            func_trials: 4,
            initial_cpu_step: 0.3,
            initial_mem_step: 0.3,
            backoff_factor: 0.5,
            affinity_guided: true,
            slo_safety_factor: 1.0,
        }
    }

    /// A smaller budget useful in unit tests.
    pub fn fast() -> Self {
        AarcParams {
            max_trials_per_path: 15,
            ..AarcParams::paper()
        }
    }

    /// Validates the parameter combination, returning a human-readable
    /// reason when invalid.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_trials_per_path == 0 {
            return Err("max_trials_per_path must be at least 1".into());
        }
        if self.func_trials == 0 {
            return Err("func_trials must be at least 1".into());
        }
        if !(0.0..1.0).contains(&self.initial_cpu_step) || self.initial_cpu_step <= 0.0 {
            return Err("initial_cpu_step must be in (0, 1)".into());
        }
        if !(0.0..1.0).contains(&self.initial_mem_step) || self.initial_mem_step <= 0.0 {
            return Err("initial_mem_step must be in (0, 1)".into());
        }
        if !(0.0..1.0).contains(&self.backoff_factor) || self.backoff_factor <= 0.0 {
            return Err("backoff_factor must be in (0, 1)".into());
        }
        if !(0.0..=1.0).contains(&self.slo_safety_factor) || self.slo_safety_factor <= 0.0 {
            return Err("slo_safety_factor must be in (0, 1]".into());
        }
        Ok(())
    }
}

impl Default for AarcParams {
    fn default() -> Self {
        AarcParams::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_paper_parameters_and_valid() {
        let p = AarcParams::default();
        assert_eq!(p, AarcParams::paper());
        assert!(p.validate().is_ok());
        assert!(AarcParams::fast().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut p = AarcParams::paper();
        p.max_trials_per_path = 0;
        assert!(p.validate().is_err());

        let mut p = AarcParams::paper();
        p.func_trials = 0;
        assert!(p.validate().is_err());

        let mut p = AarcParams::paper();
        p.initial_cpu_step = 0.0;
        assert!(p.validate().is_err());

        let mut p = AarcParams::paper();
        p.initial_mem_step = 1.5;
        assert!(p.validate().is_err());

        let mut p = AarcParams::paper();
        p.backoff_factor = 1.0;
        assert!(p.validate().is_err());

        let mut p = AarcParams::paper();
        p.slo_safety_factor = 0.0;
        assert!(p.validate().is_err());
    }
}
