//! Resource-shrink operations and the priority queue driving Algorithm 2.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use aarc_workflow::NodeId;

/// Which resource dimension an operation shrinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpType {
    /// Shrink the vCPU allocation.
    Cpu,
    /// Shrink the memory allocation.
    Mem,
}

impl std::fmt::Display for OpType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpType::Cpu => f.write_str("cpu"),
            OpType::Mem => f.write_str("mem"),
        }
    }
}

/// One pending shrink operation: *"reduce resource `op_type` of function
/// `node` by `step` (a fraction of the base allocation); `trail` reverts
/// remain before the operation is abandoned"* (Algorithm 2, lines 5–8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Operation {
    /// The function whose resources are shrunk.
    pub node: NodeId,
    /// The resource dimension.
    pub op_type: OpType,
    /// Current step size as a fraction of the base allocation.
    pub step: f64,
    /// Remaining revert budget (the paper's `trail`; the operation is
    /// dropped when it reaches zero).
    pub trail: u32,
}

impl Operation {
    /// Creates a fresh operation with the given initial step and trial
    /// budget.
    pub fn new(node: NodeId, op_type: OpType, step: f64, trail: u32) -> Self {
        Operation {
            node,
            op_type,
            step,
            trail,
        }
    }
}

impl std::fmt::Display for Operation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}.{} -{:.0}% (trail {})",
            self.node,
            self.op_type,
            self.step * 100.0,
            self.trail
        )
    }
}

#[derive(Debug, Clone, PartialEq)]
struct QueuedOp {
    priority: f64,
    seq: u64,
    op: Operation,
}

impl Eq for QueuedOp {}

impl Ord for QueuedOp {
    fn cmp(&self, other: &Self) -> Ordering {
        // Higher priority pops first; ties resolve to the earlier insertion
        // for determinism. NaN priorities are treated as the lowest.
        self.priority
            .partial_cmp(&other.priority)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueuedOp {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Max-priority queue of [`Operation`]s (the paper's `PQ`).
///
/// Fresh operations are pushed with infinite priority, successful ones are
/// re-enqueued with their cost saving as priority, and reverted-but-alive
/// ones with priority zero — so the queue always prefers untried operations,
/// then the historically most profitable ones.
#[derive(Debug, Default)]
pub struct OperationQueue {
    heap: BinaryHeap<QueuedOp>,
    seq: u64,
}

impl OperationQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        OperationQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Pushes `op` with the given priority (higher pops first).
    pub fn push(&mut self, op: Operation, priority: f64) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(QueuedOp { priority, seq, op });
    }

    /// Pops the highest-priority operation.
    pub fn pop(&mut self) -> Option<Operation> {
        self.heap.pop().map(|q| q.op)
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(i: usize, t: OpType) -> Operation {
        Operation::new(NodeId::new(i), t, 0.2, 3)
    }

    #[test]
    fn higher_priority_pops_first() {
        let mut q = OperationQueue::new();
        q.push(op(0, OpType::Cpu), 1.0);
        q.push(op(1, OpType::Mem), 10.0);
        q.push(op(2, OpType::Cpu), 5.0);
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|o| o.node.index())).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn infinite_priority_beats_everything() {
        let mut q = OperationQueue::new();
        q.push(op(0, OpType::Cpu), 1e12);
        q.push(op(1, OpType::Mem), f64::INFINITY);
        assert_eq!(q.pop().unwrap().node.index(), 1);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = OperationQueue::new();
        for i in 0..4 {
            q.push(op(i, OpType::Cpu), f64::INFINITY);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|o| o.node.index())).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = OperationQueue::new();
        assert!(q.is_empty());
        q.push(op(0, OpType::Mem), 0.0);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn nan_priority_is_lowest_not_a_panic() {
        let mut q = OperationQueue::new();
        q.push(op(0, OpType::Cpu), f64::NAN);
        q.push(op(1, OpType::Cpu), 0.0);
        // Both pop without panicking; the NaN entry never outranks a real
        // priority at the top.
        let first = q.pop().unwrap();
        let second = q.pop().unwrap();
        assert_ne!(first.node, second.node);
    }

    #[test]
    fn operation_display_mentions_step_and_trail() {
        let o = Operation::new(NodeId::new(3), OpType::Cpu, 0.2, 2);
        let s = o.to_string();
        assert!(s.contains("cpu"));
        assert!(s.contains("20%"));
        assert!(s.contains("2"));
    }
}
