//! The Priority Configurator (Algorithm 2).

use aarc_simulator::{ConfigMap, EvalEngine, ResourceConfig, SimResult, WorkflowEnvironment};
use aarc_workflow::{NodeId, ResourceAffinity};

use crate::affinity::classify_affinity;
use crate::error::AarcError;
use crate::operation::{OpType, Operation, OperationQueue};
use crate::params::AarcParams;
use crate::search::SearchTrace;

/// Priority of a freshly created operation on the *preferred* resource
/// dimension of a function (the dimension its affinity says is cheap to
/// shrink).
const PRIORITY_FRESH_PREFERRED: f64 = f64::INFINITY;
/// Priority of a freshly created operation on the non-preferred dimension.
/// Still far above any realistic cost saving, so fresh operations always run
/// before re-enqueued ones.
const PRIORITY_FRESH_OTHER: f64 = f64::MAX / 4.0;
/// Priority of an operation that was reverted but still has trials left
/// (Algorithm 2, line 17).
const PRIORITY_REVERTED: f64 = 0.0;

/// Result of configuring one path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathConfiguration {
    /// Number of workflow executions (samples) spent on this path.
    pub samples_used: usize,
    /// Number of accepted (kept) resource reductions.
    pub accepted_reductions: usize,
}

/// The Priority Configurator: shrinks the CPU and memory allocations of the
/// functions on one path until the path's latency budget is exhausted or no
/// operation can further reduce cost.
///
/// See Algorithm 2 of the paper; the affinity-guided queue seeding is the
/// "affinity-aware" extension controlled by
/// [`AarcParams::affinity_guided`].
#[derive(Debug, Clone)]
pub struct PriorityConfigurator {
    params: AarcParams,
}

impl PriorityConfigurator {
    /// Creates a configurator with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid (see [`AarcParams::validate`]).
    pub fn new(params: AarcParams) -> Self {
        params
            .validate()
            .expect("invalid AarcParams passed to PriorityConfigurator");
        PriorityConfigurator { params }
    }

    /// The configurator's parameters.
    pub fn params(&self) -> &AarcParams {
        &self.params
    }

    /// Configures the functions in `path` so that the sum of their runtimes
    /// stays within `path_budget_ms` and the whole workflow stays within
    /// `end_to_end_slo_ms`, while monotonically decreasing the path's cost.
    ///
    /// `configs` is updated in place; every sampled execution is appended to
    /// `trace`. `baseline` must be a report of the workflow under the
    /// current `configs` (the scheduler always has one at hand), so the
    /// configurator itself only executes candidate configurations. Each
    /// candidate is submitted through `engine`, so re-visited configurations
    /// (e.g. after a revert) are answered from the memo-cache.
    ///
    /// This is the synchronous loop over [`begin_path`]
    /// (PriorityConfigurator::begin_path); the scheduler's ask/tell
    /// strategy drives the same [`PathConfigState`] without owning an
    /// engine.
    ///
    /// # Errors
    ///
    /// Returns an error if the platform rejects an execution.
    #[allow(clippy::too_many_arguments)]
    pub fn configure_path(
        &self,
        engine: &EvalEngine,
        configs: &mut ConfigMap,
        path: &[NodeId],
        path_budget_ms: f64,
        end_to_end_slo_ms: f64,
        baseline: &SimResult,
        trace: &mut SearchTrace,
    ) -> Result<PathConfiguration, AarcError> {
        let env = engine.env();
        let mut state = self.begin_path(env, path, path_budget_ms, end_to_end_slo_ms, baseline);
        while state.propose(env, configs) {
            let report = engine.evaluate(configs)?;
            state.observe(env, configs, &report, trace);
        }
        Ok(state.result())
    }

    /// Starts the resumable ask/tell form of Algorithm 2 over one path:
    /// seeds the (optionally affinity-ordered) operation queue and captures
    /// the path's budget and baseline cost. Drive the returned state with
    /// [`PathConfigState::propose`] / [`PathConfigState::observe`].
    pub fn begin_path(
        &self,
        env: &WorkflowEnvironment,
        path: &[NodeId],
        path_budget_ms: f64,
        end_to_end_slo_ms: f64,
        baseline: &SimResult,
    ) -> PathConfigState {
        let queue = if path.is_empty() || path_budget_ms <= 0.0 {
            // Nothing to do: an empty queue makes the first `propose`
            // return `false` without spending a sample.
            OperationQueue::new()
        } else {
            self.seed_queue(env, path)
        };
        PathConfigState {
            params: self.params,
            path: path.to_vec(),
            budget: path_budget_ms * self.params.slo_safety_factor,
            end_to_end_slo_ms,
            queue,
            current_path_cost: path_cost(baseline, path),
            result: PathConfiguration {
                samples_used: 0,
                accepted_reductions: 0,
            },
            pending: None,
        }
    }

    /// Builds the initial operation queue for a path (Algorithm 2, lines
    /// 2-10), optionally ordering the two per-function operations by the
    /// function's resource affinity.
    fn seed_queue(&self, env: &WorkflowEnvironment, path: &[NodeId]) -> OperationQueue {
        let mut queue = OperationQueue::new();
        for &node in path {
            let affinity = if self.params.affinity_guided {
                classify_affinity(env, node).map(|r| r.affinity)
            } else {
                None
            };
            for op_type in [OpType::Cpu, OpType::Mem] {
                let step = match op_type {
                    OpType::Cpu => self.params.initial_cpu_step,
                    OpType::Mem => self.params.initial_mem_step,
                };
                let priority = match (affinity, op_type) {
                    // CPU-bound functions: memory is cheap to shrink, try it
                    // first. Memory-bound functions: the other way round.
                    (Some(ResourceAffinity::CpuBound), OpType::Mem)
                    | (Some(ResourceAffinity::MemoryBound), OpType::Cpu)
                    | (Some(ResourceAffinity::IoBound), _)
                    | (None, _) => PRIORITY_FRESH_PREFERRED,
                    _ => PRIORITY_FRESH_OTHER,
                };
                queue.push(
                    Operation::new(node, op_type, step, self.params.func_trials),
                    priority,
                );
            }
        }
        queue
    }
}

/// The paper's `deallocate` as a free function, shared by the synchronous
/// configurator loop and the resumable [`PathConfigState`].
fn deallocate(
    env: &WorkflowEnvironment,
    current: ResourceConfig,
    op: &Operation,
) -> Option<ResourceConfig> {
    let space = env.space();
    let base = env.base_config();
    let candidate = match op.op_type {
        OpType::Cpu => {
            let delta = op.step * base.vcpu.get();
            let new_vcpu = space.snap_vcpu(current.vcpu.get() - delta);
            ResourceConfig::new(new_vcpu, current.memory.get())
        }
        OpType::Mem => {
            let delta = (op.step * f64::from(base.memory.get())).round() as i64;
            let target = i64::from(current.memory.get()) - delta;
            let new_mem = space.snap_memory(target.max(0) as u32);
            ResourceConfig::new(current.vcpu.get(), new_mem)
        }
    };
    let changed = (candidate.vcpu.get() - current.vcpu.get()).abs() > 1e-9
        || candidate.memory.get() != current.memory.get();
    changed.then_some(candidate)
}

/// A candidate reduction in flight: the operation that produced it and the
/// configuration it replaced, kept until the result is observed.
#[derive(Debug, Clone, Copy)]
struct PendingOp {
    op: Operation,
    previous: ResourceConfig,
    candidate: ResourceConfig,
}

/// The resumable ask/tell form of Algorithm 2 over one path: an operation
/// queue plus the budget/cost bookkeeping, decoupled from any evaluation
/// engine.
///
/// The protocol alternates [`propose`](PathConfigState::propose) (mutates
/// `configs` into the next candidate, returns `false` when the path is
/// done) and [`observe`](PathConfigState::observe) (processes the
/// candidate's simulation result: keep or revert-with-backoff). The
/// synchronous [`PriorityConfigurator::configure_path`] and the scheduler's
/// ask/tell strategy both drive this state machine, so their behaviour is
/// identical by construction.
#[derive(Debug)]
pub struct PathConfigState {
    params: AarcParams,
    path: Vec<NodeId>,
    budget: f64,
    end_to_end_slo_ms: f64,
    queue: OperationQueue,
    current_path_cost: f64,
    result: PathConfiguration,
    pending: Option<PendingOp>,
}

impl PathConfigState {
    /// Mutates `configs` into the next candidate reduction to evaluate.
    /// Returns `false` when the path is fully configured (queue drained or
    /// trial budget spent); `configs` is left at the best accepted state.
    ///
    /// # Panics
    ///
    /// Panics if the previous proposal was never
    /// [`observe`](PathConfigState::observe)d.
    pub fn propose(&mut self, env: &WorkflowEnvironment, configs: &mut ConfigMap) -> bool {
        assert!(
            self.pending.is_none(),
            "propose called with an unobserved candidate in flight"
        );
        while let Some(op) = self.queue.pop() {
            if self.result.samples_used >= self.params.max_trials_per_path {
                return false;
            }
            let previous = configs.get(op.node);
            let Some(candidate) = deallocate(env, previous, &op) else {
                // The allocation is already at the platform minimum (or the
                // step shrank below the grid resolution): drop the
                // operation.
                continue;
            };
            configs.set(op.node, candidate);
            self.pending = Some(PendingOp {
                op,
                previous,
                candidate,
            });
            return true;
        }
        false
    }

    /// Processes the simulation result of the candidate produced by the
    /// last [`propose`](PathConfigState::propose): keeps the reduction (and
    /// re-prioritises its operation by the achieved saving) or reverts
    /// `configs` and re-enqueues with exponential back-off (Algorithm 2,
    /// lines 14-21). The sample is appended to `trace`.
    ///
    /// # Panics
    ///
    /// Panics if no candidate is in flight.
    pub fn observe(
        &mut self,
        env: &WorkflowEnvironment,
        configs: &mut ConfigMap,
        report: &SimResult,
        trace: &mut SearchTrace,
    ) {
        let PendingOp {
            mut op,
            previous,
            candidate,
        } = self
            .pending
            .take()
            .expect("observe called without a candidate in flight");
        self.result.samples_used += 1;

        let new_path_runtime = path_runtime(report, &self.path);
        let new_path_cost = path_cost(report, &self.path);
        let violates = new_path_runtime > self.budget
            || report.makespan_ms() > self.end_to_end_slo_ms
            || report.any_oom()
            || new_path_cost > self.current_path_cost + 1e-9;

        let label = format!(
            "{}.{} {} -> {}",
            env.workflow().function(op.node).name(),
            op.op_type,
            previous,
            candidate
        );
        trace.record(report, !violates, label);

        if violates {
            // Revert and back off exponentially (Algorithm 2, lines 14-18).
            configs.set(op.node, previous);
            op.step *= self.params.backoff_factor;
            op.trail = op.trail.saturating_sub(1);
            if op.trail > 0 {
                self.queue.push(op, PRIORITY_REVERTED);
            }
        } else {
            // Keep the reduction and re-enqueue the operation with the
            // achieved saving as its priority (lines 20-21).
            let saving = self.current_path_cost - new_path_cost;
            self.current_path_cost = new_path_cost;
            self.result.accepted_reductions += 1;
            self.queue.push(op, saving);
        }
    }

    /// Whether a proposed candidate is awaiting its result.
    pub fn is_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// The per-path tally so far (final once
    /// [`propose`](PathConfigState::propose) returned `false`).
    pub fn result(&self) -> PathConfiguration {
        self.result
    }
}

/// Sum of the billed runtimes of the path's functions — the quantity
/// compared against the (sub-)SLO, since functions on a path execute
/// sequentially.
fn path_runtime(result: &SimResult, path: &[NodeId]) -> f64 {
    path.iter().filter_map(|&n| result.runtime_of(n)).sum()
}

/// Sum of the billed costs of the path's functions.
fn path_cost(result: &SimResult, path: &[NodeId]) -> f64 {
    path.iter().filter_map(|&n| result.cost_of(n)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarc_simulator::{FunctionProfile, ProfileSet, ResourceSpace};
    use aarc_workflow::WorkflowBuilder;

    fn chain_env() -> (WorkflowEnvironment, Vec<NodeId>) {
        let mut b = WorkflowBuilder::new("chain");
        let a = b.add_function("cpu_heavy");
        let c = b.add_function("mem_heavy");
        b.add_edge(a, c).unwrap();
        let wf = b.build().unwrap();
        let mut p = ProfileSet::new();
        p.insert(
            a,
            FunctionProfile::builder("cpu_heavy")
                .serial_ms(2_000.0)
                .parallel_ms(30_000.0)
                .max_parallelism(6.0)
                .working_set_mb(512.0)
                .mem_floor_mb(256.0)
                .build(),
        );
        p.insert(
            c,
            FunctionProfile::builder("mem_heavy")
                .serial_ms(8_000.0)
                .working_set_mb(4_096.0)
                .mem_floor_mb(2_048.0)
                .mem_penalty_factor(5.0)
                .build(),
        );
        let env = WorkflowEnvironment::builder(wf, p).build().unwrap();
        (env, vec![a, c])
    }

    fn run_configurator(
        params: AarcParams,
        budget_ms: f64,
    ) -> (
        WorkflowEnvironment,
        ConfigMap,
        SearchTrace,
        PathConfiguration,
    ) {
        let (env, path) = chain_env();
        let engine = EvalEngine::single_threaded(env.clone());
        let mut configs = env.base_configs();
        let baseline = engine.evaluate(&configs).unwrap();
        let mut trace = SearchTrace::new();
        let configurator = PriorityConfigurator::new(params);
        let result = configurator
            .configure_path(
                &engine,
                &mut configs,
                &path,
                budget_ms,
                budget_ms,
                &baseline,
                &mut trace,
            )
            .unwrap();
        (env, configs, trace, result)
    }

    #[test]
    fn configurator_reduces_cost_without_violating_the_budget() {
        let budget = 60_000.0;
        let (env, configs, _trace, result) = run_configurator(AarcParams::paper(), budget);
        let base_report = env.execute(&env.base_configs()).unwrap();
        let final_report = env.execute(&configs).unwrap();
        assert!(result.accepted_reductions > 0);
        assert!(final_report.total_cost() < base_report.total_cost());
        assert!(final_report.makespan_ms() <= budget);
        assert!(!final_report.any_oom());
    }

    #[test]
    fn shrinks_memory_of_cpu_bound_and_cpu_of_mem_bound() {
        let (_env, configs, _trace, _result) = run_configurator(AarcParams::paper(), 60_000.0);
        let cpu_heavy = configs.get(NodeId::new(0));
        let mem_heavy = configs.get(NodeId::new(1));
        // The CPU-bound function should have lost most of its memory.
        assert!(cpu_heavy.memory.get() <= 2_048);
        // The memory-bound function should have lost most of its CPU.
        assert!(mem_heavy.vcpu.get() <= 4.0);
    }

    #[test]
    fn respects_the_sample_budget() {
        let params = AarcParams {
            max_trials_per_path: 5,
            ..AarcParams::paper()
        };
        let (_env, _configs, trace, result) = run_configurator(params, 60_000.0);
        assert!(result.samples_used <= 5);
        assert_eq!(trace.sample_count(), result.samples_used);
    }

    #[test]
    fn tight_budget_keeps_configuration_at_base() {
        // A budget barely above the base runtime leaves almost no room to
        // shrink; whatever is accepted must still satisfy it.
        let (env, path) = chain_env();
        let engine = EvalEngine::single_threaded(env.clone());
        let mut configs = env.base_configs();
        let baseline = engine.evaluate(&configs).unwrap();
        let budget = baseline.makespan_ms() * 1.01;
        let mut trace = SearchTrace::new();
        let configurator = PriorityConfigurator::new(AarcParams::paper());
        configurator
            .configure_path(
                &engine,
                &mut configs,
                &path,
                budget,
                budget,
                &baseline,
                &mut trace,
            )
            .unwrap();
        let final_report = env.execute(&configs).unwrap();
        assert!(final_report.makespan_ms() <= budget);
        assert!(!final_report.any_oom());
    }

    #[test]
    fn empty_path_or_zero_budget_is_a_no_op() {
        let (env, path) = chain_env();
        let engine = EvalEngine::single_threaded(env.clone());
        let mut configs = env.base_configs();
        let baseline = engine.evaluate(&configs).unwrap();
        let mut trace = SearchTrace::new();
        let configurator = PriorityConfigurator::new(AarcParams::paper());
        let r1 = configurator
            .configure_path(
                &engine,
                &mut configs,
                &[],
                60_000.0,
                60_000.0,
                &baseline,
                &mut trace,
            )
            .unwrap();
        let r2 = configurator
            .configure_path(
                &engine,
                &mut configs,
                &path,
                0.0,
                60_000.0,
                &baseline,
                &mut trace,
            )
            .unwrap();
        assert_eq!(r1.samples_used, 0);
        assert_eq!(r2.samples_used, 0);
        assert_eq!(trace.sample_count(), 0);
        assert_eq!(configs, env.base_configs());
    }

    #[test]
    fn cost_never_increases_across_accepted_samples() {
        let (_env, _configs, trace, _result) = run_configurator(AarcParams::paper(), 60_000.0);
        let mut last_accepted_cost = f64::INFINITY;
        for s in trace.samples() {
            if s.accepted {
                assert!(s.cost <= last_accepted_cost + 1e-6);
                last_accepted_cost = s.cost;
            }
        }
    }

    #[test]
    fn deallocate_stops_at_platform_minimum() {
        let (env, _) = chain_env();
        let space = ResourceSpace::paper();
        let minimal = space.min_config();
        let op_cpu = Operation::new(NodeId::new(0), OpType::Cpu, 0.2, 3);
        let op_mem = Operation::new(NodeId::new(0), OpType::Mem, 0.2, 3);
        assert!(deallocate(&env, minimal, &op_cpu).is_none());
        assert!(deallocate(&env, minimal, &op_mem).is_none());
    }

    #[test]
    fn path_state_drives_identically_to_configure_path() {
        // Drive the resumable state machine by hand and compare against the
        // synchronous loop: identical configs, trace and tallies.
        let (env, path) = chain_env();
        let budget = 60_000.0;
        let configurator = PriorityConfigurator::new(AarcParams::paper());

        let engine_sync = EvalEngine::single_threaded(env.clone());
        let mut configs_sync = env.base_configs();
        let baseline = engine_sync.evaluate(&configs_sync).unwrap();
        let mut trace_sync = SearchTrace::new();
        let result_sync = configurator
            .configure_path(
                &engine_sync,
                &mut configs_sync,
                &path,
                budget,
                budget,
                &baseline,
                &mut trace_sync,
            )
            .unwrap();

        let engine_state = EvalEngine::single_threaded(env.clone());
        let mut configs_state = env.base_configs();
        let baseline_state = engine_state.evaluate(&configs_state).unwrap();
        let mut trace_state = SearchTrace::new();
        let mut state = configurator.begin_path(&env, &path, budget, budget, &baseline_state);
        assert!(!state.is_pending());
        while state.propose(&env, &mut configs_state) {
            assert!(state.is_pending());
            let report = engine_state.evaluate(&configs_state).unwrap();
            state.observe(&env, &mut configs_state, &report, &mut trace_state);
        }
        assert_eq!(configs_sync, configs_state);
        assert_eq!(trace_sync, trace_state);
        assert_eq!(result_sync, state.result());
    }

    #[test]
    fn affinity_guided_uses_no_more_samples_than_plain_for_this_workload() {
        let plain = AarcParams {
            affinity_guided: false,
            ..AarcParams::paper()
        };
        let (_e1, _c1, trace_guided, _r1) = run_configurator(AarcParams::paper(), 60_000.0);
        let (_e2, _c2, trace_plain, _r2) = run_configurator(plain, 60_000.0);
        // Both must converge; the guided variant should not be wasteful.
        assert!(trace_guided.sample_count() <= trace_plain.sample_count() + 5);
    }

    #[test]
    #[should_panic(expected = "invalid AarcParams")]
    fn constructor_rejects_invalid_params() {
        let bad = AarcParams {
            backoff_factor: 0.0,
            ..AarcParams::paper()
        };
        let _ = PriorityConfigurator::new(bad);
    }
}
