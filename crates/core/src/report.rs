//! Human-readable configuration reports.
//!
//! Cloud operators reviewing AARC's decisions want to see, per function, the
//! chosen vCPU/memory allocation, the resulting runtime and cost, and the
//! totals against the SLO. [`ConfigurationReport`] renders exactly that as a
//! fixed-width text table (also used by the `experiments` binary).

use std::fmt;

use serde::Serialize;

use aarc_simulator::{ConfigMap, SimResult, WorkflowEnvironment};

/// A per-function summary of a configuration and its measured behaviour.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FunctionRow {
    /// Function name.
    pub name: String,
    /// Configured vCPU cores.
    pub vcpu: f64,
    /// Configured memory in MB.
    pub memory_mb: u32,
    /// Billed runtime in ms.
    pub runtime_ms: f64,
    /// Billed cost.
    pub cost: f64,
}

/// A pretty-printable summary of a full workflow configuration.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ConfigurationReport {
    workflow_name: String,
    rows: Vec<FunctionRow>,
    makespan_ms: f64,
    total_cost: f64,
    slo_ms: Option<f64>,
}

impl ConfigurationReport {
    /// Builds a report from a configuration and a matching simulation
    /// result.
    pub fn new(
        env: &WorkflowEnvironment,
        configs: &ConfigMap,
        execution: &SimResult,
        slo_ms: Option<f64>,
    ) -> Self {
        let rows = env
            .workflow()
            .node_ids()
            .map(|id| {
                let cfg = configs.get(id);
                FunctionRow {
                    name: env.workflow().function(id).name().to_owned(),
                    vcpu: cfg.vcpu.get(),
                    memory_mb: cfg.memory.get(),
                    runtime_ms: execution.runtime_of(id).unwrap_or(0.0),
                    cost: execution.cost_of(id).unwrap_or(0.0),
                }
            })
            .collect();
        ConfigurationReport {
            workflow_name: env.workflow().name().to_owned(),
            rows,
            makespan_ms: execution.makespan_ms(),
            total_cost: execution.total_cost(),
            slo_ms,
        }
    }

    /// Per-function rows.
    pub fn rows(&self) -> &[FunctionRow] {
        &self.rows
    }

    /// End-to-end runtime in ms.
    pub fn makespan_ms(&self) -> f64 {
        self.makespan_ms
    }

    /// Total billed cost.
    pub fn total_cost(&self) -> f64 {
        self.total_cost
    }

    /// Whether the configuration met the SLO it was built for (if one was
    /// given).
    pub fn meets_slo(&self) -> Option<bool> {
        self.slo_ms.map(|slo| self.makespan_ms <= slo)
    }
}

impl fmt::Display for ConfigurationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "configuration for workflow `{}`", self.workflow_name)?;
        writeln!(
            f,
            "{:<28} {:>8} {:>10} {:>14} {:>14}",
            "function", "vCPU", "memory", "runtime (ms)", "cost"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<28} {:>8.1} {:>7} MB {:>14.1} {:>14.1}",
                row.name, row.vcpu, row.memory_mb, row.runtime_ms, row.cost
            )?;
        }
        write!(
            f,
            "end-to-end: {:.1} ms, total cost: {:.1}",
            self.makespan_ms, self.total_cost
        )?;
        if let Some(slo) = self.slo_ms {
            write!(
                f,
                " (slo {:.1} ms: {})",
                slo,
                if self.makespan_ms <= slo {
                    "met"
                } else {
                    "VIOLATED"
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarc_simulator::{FunctionProfile, ProfileSet, ResourceConfig};
    use aarc_workflow::WorkflowBuilder;

    fn env() -> WorkflowEnvironment {
        let mut b = WorkflowBuilder::new("report");
        let a = b.add_function("alpha");
        let c = b.add_function("beta");
        b.add_edge(a, c).unwrap();
        let wf = b.build().unwrap();
        let mut p = ProfileSet::new();
        p.insert(
            a,
            FunctionProfile::builder("alpha").serial_ms(100.0).build(),
        );
        p.insert(c, FunctionProfile::builder("beta").serial_ms(200.0).build());
        WorkflowEnvironment::builder(wf, p).build().unwrap()
    }

    #[test]
    fn report_contains_all_functions_and_totals() {
        let env = env();
        let configs = ConfigMap::uniform(2, ResourceConfig::new(1.0, 512));
        let execution = aarc_simulator::EvalEngine::single_threaded(env.clone())
            .evaluate(&configs)
            .unwrap();
        let report = ConfigurationReport::new(&env, &configs, &execution, Some(10_000.0));
        assert_eq!(report.rows().len(), 2);
        assert_eq!(report.meets_slo(), Some(true));
        assert!(report.total_cost() > 0.0);
        let text = report.to_string();
        assert!(text.contains("alpha"));
        assert!(text.contains("beta"));
        assert!(text.contains("met"));
    }

    #[test]
    fn violated_slo_is_flagged() {
        let env = env();
        let configs = ConfigMap::uniform(2, ResourceConfig::new(1.0, 512));
        let execution = aarc_simulator::EvalEngine::single_threaded(env.clone())
            .evaluate(&configs)
            .unwrap();
        let report = ConfigurationReport::new(&env, &configs, &execution, Some(1.0));
        assert_eq!(report.meets_slo(), Some(false));
        assert!(report.to_string().contains("VIOLATED"));
    }

    #[test]
    fn report_without_slo_has_no_verdict() {
        let env = env();
        let configs = ConfigMap::uniform(2, ResourceConfig::new(1.0, 512));
        let execution = aarc_simulator::EvalEngine::single_threaded(env.clone())
            .evaluate(&configs)
            .unwrap();
        let report = ConfigurationReport::new(&env, &configs, &execution, None);
        assert_eq!(report.meets_slo(), None);
        assert!(!report.to_string().contains("slo"));
    }
}
