//! The common interface shared by AARC and the baseline search methods, and
//! the per-sample trace that drives the paper's search-efficiency figures
//! (Figs. 5, 6 and 7).

use serde::{Deserialize, Serialize};

use aarc_simulator::{
    ConfigMap, EvalEngine, ExecutionReport, ScenarioHandle, SimResult, WorkflowEnvironment,
};

use crate::driver::{SearchDriver, SearchStrategy};
use crate::error::AarcError;

/// One configuration sample taken during a search: the candidate was
/// executed once and its runtime and cost observed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSample {
    /// 1-based sample index.
    pub index: usize,
    /// End-to-end runtime of the sampled execution, in ms.
    pub makespan_ms: f64,
    /// Billed cost of the sampled execution.
    pub cost: f64,
    /// Whether any function was OOM-killed in this sample.
    pub oom: bool,
    /// Whether the sample was accepted (kept) by the search method.
    pub accepted: bool,
    /// Short human-readable description (e.g. `"n2.cpu -20%"`).
    pub label: String,
}

/// The chronological record of all samples taken by one search run.
///
/// *Total search runtime* (Fig. 5a) is the sum of the sampled executions'
/// runtimes — each sample requires actually running the workflow once on the
/// platform. *Total search cost* (Fig. 5b) is the sum of their billed costs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SearchTrace {
    samples: Vec<SearchSample>,
}

impl SearchTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        SearchTrace {
            samples: Vec::new(),
        }
    }

    /// Records one sample, assigning it the next index.
    pub fn record(&mut self, result: &SimResult, accepted: bool, label: impl Into<String>) {
        self.push(SearchSample {
            index: 0,
            makespan_ms: result.makespan_ms(),
            cost: result.total_cost(),
            oom: result.any_oom(),
            accepted,
            label: label.into(),
        });
    }

    /// Appends an already-constructed sample, re-assigning its index to keep
    /// the trace chronological.
    pub fn push(&mut self, mut sample: SearchSample) {
        sample.index = self.samples.len() + 1;
        self.samples.push(sample);
    }

    /// Appends every sample of `other` to this trace (re-indexed), cloning
    /// each sample. Prefer [`append`](SearchTrace::append) when `other` is
    /// no longer needed.
    pub fn merge(&mut self, other: &SearchTrace) {
        for sample in other.samples() {
            self.push(sample.clone());
        }
    }

    /// Consumes `other`, moving its samples onto the end of this trace and
    /// re-indexing them in place — the allocation-free form of
    /// [`merge`](SearchTrace::merge), used by the input-aware engine to
    /// fold the per-class scheduler runs into one engine-level trace.
    pub fn append(&mut self, other: SearchTrace) {
        let offset = self.samples.len();
        self.samples.extend(other.samples);
        for (i, sample) in self.samples.iter_mut().enumerate().skip(offset) {
            sample.index = i + 1;
        }
    }

    /// All samples in chronological order.
    pub fn samples(&self) -> &[SearchSample] {
        &self.samples
    }

    /// Number of samples taken (the x-axis of Figs. 6 and 7).
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// Total wall-clock time spent executing samples, in ms (Fig. 5a).
    pub fn total_runtime_ms(&self) -> f64 {
        self.samples.iter().map(|s| s.makespan_ms).sum()
    }

    /// Total billed cost of all samples (Fig. 5b).
    pub fn total_cost(&self) -> f64 {
        self.samples.iter().map(|s| s.cost).sum()
    }

    /// The per-sample runtime series (Fig. 6).
    pub fn runtime_series(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.makespan_ms).collect()
    }

    /// The per-sample cost series (Fig. 7).
    pub fn cost_series(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.cost).collect()
    }

    /// The best (lowest) cost observed among samples that met `slo_ms` and
    /// did not OOM, as a running series ("best configuration found so far").
    pub fn best_cost_series(&self, slo_ms: f64) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.samples
            .iter()
            .map(|s| {
                if !s.oom && s.makespan_ms <= slo_ms {
                    best = best.min(s.cost);
                }
                best
            })
            .collect()
    }
}

/// The result of a configuration search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best configuration found.
    pub best_configs: ConfigMap,
    /// Simulation result of the best configuration, exactly as the search
    /// observed it (under runtime jitter this is the winning sample's own
    /// result — re-simulating under a different seed could contradict the
    /// feasibility decision that selected it). The lean [`SimResult`]
    /// carries everything the reports need; the full trace-bearing
    /// [`ExecutionReport`] is materialised on demand via
    /// [`SearchOutcome::materialize_report`].
    pub final_report: SimResult,
    /// The chronological sample trace of the search.
    pub trace: SearchTrace,
}

impl SearchOutcome {
    /// Cost of the best configuration (one execution).
    pub fn best_cost(&self) -> f64 {
        self.final_report.total_cost()
    }

    /// Runtime of the best configuration, in ms.
    pub fn best_runtime_ms(&self) -> f64 {
        self.final_report.makespan_ms()
    }

    /// Materialises the full [`ExecutionReport`] (names + event trace) of
    /// the winning configuration, re-running it under the exact `(input,
    /// seed)` the search observed so the report is bit-identical to
    /// [`final_report`](SearchOutcome::final_report).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (none are expected for a configuration
    /// the search already executed).
    pub fn materialize_report(&self, engine: &EvalEngine) -> Result<ExecutionReport, AarcError> {
        Ok(engine.materialize_result(&self.best_configs, &self.final_report)?)
    }
}

/// A configuration-search method: given an environment and an end-to-end
/// SLO, produce a per-function configuration.
///
/// AARC's [`GraphCentricScheduler`](crate::scheduler::GraphCentricScheduler)
/// and the baselines (Bayesian optimization, MAFF, random search) all
/// implement this trait, which is what the experiment harness iterates
/// over. A method's only required behaviour is building its ask/tell
/// [`SearchStrategy`]; the evaluate-loop itself lives in the
/// [`SearchDriver`], which lets independent searches interleave their
/// batches on one shared evaluation pool.
pub trait ConfigurationSearch {
    /// Short method name used in figures ("AARC", "BO", "MAFF").
    fn name(&self) -> &str;

    /// Builds the resumable ask/tell strategy of one search run over `env`
    /// under `slo_ms`.
    ///
    /// Strategies must stay deterministic with respect to the evaluation
    /// pool's thread count and to interleaving with other searches: their
    /// ask sequence may depend only on the results they were told, and
    /// batch candidates receive index-derived seeds (see
    /// [`aarc_simulator::derive_seed`]), never evaluation-order-derived
    /// ones.
    ///
    /// # Errors
    ///
    /// Returns an error if the SLO is invalid (see [`validate_slo`]) or the
    /// method cannot search this environment.
    fn strategy(
        &self,
        env: &WorkflowEnvironment,
        slo_ms: f64,
    ) -> Result<Box<dyn SearchStrategy>, AarcError>;

    /// Runs the search to completion on `handle` — a scenario registered on
    /// a (possibly shared) [`EvalService`](aarc_simulator::EvalService) —
    /// driving the strategy through the [`SearchDriver`].
    ///
    /// # Errors
    ///
    /// Returns an error if the SLO is invalid, the base configuration
    /// already violates it, or the platform rejects an execution.
    fn search_on(
        &self,
        handle: &ScenarioHandle<'_>,
        slo_ms: f64,
    ) -> Result<SearchOutcome, AarcError> {
        SearchDriver::run(self.strategy(handle.env(), slo_ms)?, handle)
    }

    /// Runs the search through an [`EvalEngine`] — the single-scenario
    /// compatibility facade over the service layer.
    ///
    /// # Errors
    ///
    /// See [`ConfigurationSearch::search_on`].
    fn search_with(&self, engine: &EvalEngine, slo_ms: f64) -> Result<SearchOutcome, AarcError> {
        self.search_on(&engine.handle(), slo_ms)
    }

    /// Runs the search on a private single-threaded engine over a copy of
    /// `env` — the convenience entry point for callers that do not share an
    /// evaluation service across methods.
    ///
    /// # Errors
    ///
    /// See [`ConfigurationSearch::search_on`].
    fn search(&self, env: &WorkflowEnvironment, slo_ms: f64) -> Result<SearchOutcome, AarcError> {
        self.search_with(&EvalEngine::single_threaded(env.clone()), slo_ms)
    }
}

/// Validates an SLO value (positive, finite).
///
/// # Errors
///
/// Returns [`AarcError::InvalidSlo`] for zero, negative, NaN or infinite
/// values. Exposed so baseline implementations of [`ConfigurationSearch`]
/// can apply the same validation.
pub fn validate_slo(slo_ms: f64) -> Result<(), AarcError> {
    if !slo_ms.is_finite() || slo_ms <= 0.0 {
        return Err(AarcError::InvalidSlo(slo_ms));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarc_simulator::{FunctionProfile, ProfileSet, ResourceConfig};
    use aarc_workflow::WorkflowBuilder;

    fn tiny_env() -> WorkflowEnvironment {
        let mut b = WorkflowBuilder::new("t");
        let a = b.add_function("a");
        let wf = b.build().unwrap();
        let mut p = ProfileSet::new();
        p.insert(a, FunctionProfile::builder("a").serial_ms(100.0).build());
        WorkflowEnvironment::builder(wf, p).build().unwrap()
    }

    #[test]
    fn trace_accumulates_totals_and_series() {
        let env = tiny_env();
        let engine = EvalEngine::single_threaded(env);
        let mut trace = SearchTrace::new();
        let big = engine
            .evaluate(&ConfigMap::uniform(1, ResourceConfig::new(2.0, 1024)))
            .unwrap();
        let small = engine
            .evaluate(&ConfigMap::uniform(1, ResourceConfig::new(1.0, 512)))
            .unwrap();
        trace.record(&big, true, "base");
        trace.record(&small, true, "shrunk");
        assert_eq!(trace.sample_count(), 2);
        assert_eq!(trace.samples()[0].index, 1);
        assert_eq!(trace.samples()[1].index, 2);
        assert!(
            (trace.total_runtime_ms() - (big.makespan_ms() + small.makespan_ms())).abs() < 1e-9
        );
        assert!((trace.total_cost() - (big.total_cost() + small.total_cost())).abs() < 1e-9);
        assert_eq!(trace.runtime_series().len(), 2);
        assert_eq!(trace.cost_series().len(), 2);
    }

    #[test]
    fn best_cost_series_ignores_slo_violations_and_oom() {
        let mut trace = SearchTrace::new();
        // Hand-craft samples: a violating one followed by a good one.
        trace.samples.push(SearchSample {
            index: 1,
            makespan_ms: 500.0,
            cost: 10.0,
            oom: false,
            accepted: false,
            label: "too slow".into(),
        });
        trace.samples.push(SearchSample {
            index: 2,
            makespan_ms: 100.0,
            cost: 50.0,
            oom: true,
            accepted: false,
            label: "oom".into(),
        });
        trace.samples.push(SearchSample {
            index: 3,
            makespan_ms: 100.0,
            cost: 30.0,
            oom: false,
            accepted: true,
            label: "good".into(),
        });
        let series = trace.best_cost_series(200.0);
        assert!(series[0].is_infinite());
        assert!(series[1].is_infinite());
        assert_eq!(series[2], 30.0);
    }

    #[test]
    fn append_moves_samples_and_reindexes() {
        let sample = |label: &str| SearchSample {
            index: 99,
            makespan_ms: 1.0,
            cost: 2.0,
            oom: false,
            accepted: true,
            label: label.into(),
        };
        let mut a = SearchTrace::new();
        a.push(sample("a1"));
        let mut b = SearchTrace::new();
        b.push(sample("b1"));
        b.push(sample("b2"));
        let mut merged_ref = a.clone();
        merged_ref.merge(&b);
        a.append(b);
        assert_eq!(a, merged_ref, "append must behave exactly like merge");
        assert_eq!(
            a.samples().iter().map(|s| s.index).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(a.samples()[2].label, "b2");
    }

    #[test]
    fn validate_slo_rejects_nonsense() {
        assert!(validate_slo(1.0).is_ok());
        assert!(validate_slo(0.0).is_err());
        assert!(validate_slo(-5.0).is_err());
        assert!(validate_slo(f64::NAN).is_err());
        assert!(validate_slo(f64::INFINITY).is_err());
    }
}
