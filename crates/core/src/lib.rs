//! AARC core: automated, affinity-aware, decoupled CPU/memory resource
//! configuration for serverless workflows.
//!
//! This crate implements the paper's contribution:
//!
//! * [`scheduler::GraphCentricScheduler`] — Algorithm 1 (*Overall
//!   Scheduling*): profiles the workflow under an over-provisioned base
//!   configuration, builds the weighted DAG, extracts the critical path and
//!   its detour sub-paths, derives sub-SLOs and drives the configurator
//!   path by path.
//! * [`configurator::PriorityConfigurator`] — Algorithm 2 (*Priority
//!   Configuration*): a priority-queue driven greedy search that repeatedly
//!   shrinks the CPU or memory of one function on a path, reverts with
//!   exponential back-off on SLO violation / cost increase / OOM, and stops
//!   when the queue drains or the trial budget is spent.
//! * [`affinity`] — resource-affinity analysis that seeds the priority queue
//!   (memory operations first for CPU-bound functions and vice versa).
//! * [`input_aware::InputAwareEngine`] — the §IV-D plugin that pre-computes
//!   one configuration per input size class and dispatches requests to the
//!   matching configuration.
//! * [`search`] — the [`search::ConfigurationSearch`] trait and the
//!   sample-by-sample [`search::SearchTrace`] shared with the baseline
//!   methods; the traces drive Figs. 5–7.
//! * [`driver`] — the ask/tell protocol: every method is a resumable
//!   [`driver::SearchStrategy`], a [`driver::SearchSession`] advances one
//!   strategy a single ask/evaluate/tell round per step (with
//!   pause/cancel and a pollable progress snapshot), and the
//!   [`driver::SearchDriver`] entry points are thin loops over sessions —
//!   so independent searches interleave their batches on one shared
//!   [`EvalService`](aarc_simulator::EvalService) pool (or are served
//!   online by a daemon) while staying bit-identical to sequential runs.
//!
//! # Quick start
//!
//! ```
//! use aarc_core::prelude::*;
//! use aarc_simulator::prelude::*;
//! use aarc_workflow::WorkflowBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A two-function workflow with a CPU-heavy stage.
//! let mut b = WorkflowBuilder::new("demo");
//! let crunch = b.add_function("crunch");
//! let store = b.add_function("store");
//! b.add_edge(crunch, store)?;
//! let wf = b.build()?;
//!
//! let mut profiles = ProfileSet::new();
//! profiles.insert(crunch, FunctionProfile::builder("crunch")
//!     .parallel_ms(30_000.0).max_parallelism(4.0).build());
//! profiles.insert(store, FunctionProfile::builder("store")
//!     .serial_ms(2_000.0).build());
//! let env = WorkflowEnvironment::builder(wf, profiles).build()?;
//!
//! // Find a cost-minimal decoupled configuration under a 60 s SLO.
//! let scheduler = GraphCentricScheduler::new(AarcParams::default());
//! let outcome = scheduler.search(&env, 60_000.0)?;
//! assert!(outcome.final_report.meets_slo(60_000.0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod affinity;
pub mod configurator;
pub mod driver;
pub mod error;
pub mod input_aware;
pub mod operation;
pub mod params;
pub mod report;
pub mod scheduler;
pub mod search;

pub use affinity::{classify_affinity, AffinityReport};
pub use configurator::{PathConfigState, PriorityConfigurator};
pub use driver::{
    Ask, Incumbent, RoundPoint, SearchDriver, SearchSession, SearchStrategy, SessionProgress,
    SessionState,
};
pub use error::AarcError;
pub use input_aware::InputAwareEngine;
pub use operation::{OpType, Operation, OperationQueue};
pub use params::AarcParams;
pub use report::ConfigurationReport;
pub use scheduler::GraphCentricScheduler;
pub use search::{ConfigurationSearch, SearchOutcome, SearchSample, SearchTrace};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::affinity::classify_affinity;
    pub use crate::driver::{
        Ask, Incumbent, SearchDriver, SearchSession, SearchStrategy, SessionProgress, SessionState,
    };
    pub use crate::error::AarcError;
    pub use crate::input_aware::InputAwareEngine;
    pub use crate::params::AarcParams;
    pub use crate::report::ConfigurationReport;
    pub use crate::scheduler::GraphCentricScheduler;
    pub use crate::search::{ConfigurationSearch, SearchOutcome, SearchTrace};
}
