//! Resource-affinity analysis.
//!
//! The "affinity-aware" part of AARC: before shrinking anything, the
//! framework probes each function's performance profile along both resource
//! axes and classifies it as CPU-bound, memory-bound, I/O-bound or balanced.
//! The classification seeds the priority queue of Algorithm 2 so that the
//! *cheap-to-shrink* dimension is tried first (memory for CPU-bound
//! functions, CPU for memory-bound functions), which reduces the number of
//! wasted samples.

use serde::{Deserialize, Serialize};

use aarc_simulator::{ResourceConfig, WorkflowEnvironment};
use aarc_workflow::{NodeId, ResourceAffinity};

/// Relative sensitivities of one function to each resource dimension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AffinityReport {
    /// The function.
    pub node: NodeId,
    /// Relative runtime increase when the vCPU allocation is halved from the
    /// base configuration (0 = insensitive).
    pub cpu_sensitivity: f64,
    /// Relative runtime increase when the memory allocation is halved from
    /// the base configuration (0 = insensitive).
    pub mem_sensitivity: f64,
    /// The resulting classification.
    pub affinity: ResourceAffinity,
}

/// Sensitivity threshold above which a dimension is considered significant.
const SENSITIVITY_THRESHOLD: f64 = 0.10;

/// Probes the profile of `node` in `env` and classifies its resource
/// affinity.
///
/// The probe evaluates the analytical profile directly (the equivalent of
/// running the single function in isolation twice per axis), so it costs no
/// workflow executions.
pub fn classify_affinity(env: &WorkflowEnvironment, node: NodeId) -> Option<AffinityReport> {
    let profile = env.profiles().get(node)?;
    let base = env.base_config();
    let space = env.space();
    let base_runtime = profile.runtime_ms(base)?;

    let half_cpu = ResourceConfig::new(space.snap_vcpu(base.vcpu.get() / 2.0), base.memory.get());
    let half_mem = ResourceConfig::new(base.vcpu.get(), space.snap_memory(base.memory.get() / 2));

    // OOM on the halved-memory probe counts as maximal memory sensitivity.
    let cpu_runtime = profile.runtime_ms(half_cpu).unwrap_or(f64::INFINITY);
    let mem_runtime = profile.runtime_ms(half_mem).unwrap_or(f64::INFINITY);

    let rel = |probe: f64| {
        if probe.is_infinite() {
            f64::INFINITY
        } else {
            ((probe - base_runtime) / base_runtime).max(0.0)
        }
    };
    let cpu_sensitivity = rel(cpu_runtime);
    let mem_sensitivity = rel(mem_runtime);

    let affinity = match (
        cpu_sensitivity > SENSITIVITY_THRESHOLD,
        mem_sensitivity > SENSITIVITY_THRESHOLD,
    ) {
        (true, false) => ResourceAffinity::CpuBound,
        (false, true) => ResourceAffinity::MemoryBound,
        (true, true) => ResourceAffinity::Balanced,
        (false, false) => ResourceAffinity::IoBound,
    };

    Some(AffinityReport {
        node,
        cpu_sensitivity,
        mem_sensitivity,
        affinity,
    })
}

/// Classifies every function of the environment's workflow.
pub fn classify_workflow(env: &WorkflowEnvironment) -> Vec<AffinityReport> {
    env.workflow()
        .node_ids()
        .filter_map(|id| classify_affinity(env, id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarc_simulator::{FunctionProfile, ProfileSet};
    use aarc_workflow::WorkflowBuilder;

    fn env_with(profiles: Vec<(&str, FunctionProfile)>) -> (WorkflowEnvironment, Vec<NodeId>) {
        let mut b = WorkflowBuilder::new("aff");
        let ids: Vec<NodeId> = profiles.iter().map(|(n, _)| b.add_function(*n)).collect();
        let wf = b.build().unwrap();
        let mut set = ProfileSet::new();
        for (id, (_, p)) in ids.iter().zip(profiles) {
            set.insert(*id, p);
        }
        let env = WorkflowEnvironment::builder(wf, set).build().unwrap();
        (env, ids)
    }

    #[test]
    fn cpu_bound_function_is_classified_cpu_bound() {
        let (env, ids) = env_with(vec![(
            "cpu",
            FunctionProfile::builder("cpu")
                .parallel_ms(50_000.0)
                .max_parallelism(10.0)
                .working_set_mb(256.0)
                .build(),
        )]);
        let report = classify_affinity(&env, ids[0]).unwrap();
        assert_eq!(report.affinity, ResourceAffinity::CpuBound);
        assert!(report.cpu_sensitivity > report.mem_sensitivity);
    }

    #[test]
    fn memory_bound_function_is_classified_memory_bound() {
        let (env, ids) = env_with(vec![(
            "mem",
            FunctionProfile::builder("mem")
                .serial_ms(10_000.0)
                .working_set_mb(8_192.0)
                .mem_floor_mb(6_144.0)
                .mem_penalty_factor(6.0)
                .build(),
        )]);
        let report = classify_affinity(&env, ids[0]).unwrap();
        assert_eq!(report.affinity, ResourceAffinity::MemoryBound);
        assert!(report.mem_sensitivity > report.cpu_sensitivity);
    }

    #[test]
    fn io_bound_function_is_insensitive_to_both() {
        let (env, ids) = env_with(vec![(
            "io",
            FunctionProfile::builder("io")
                .io_ms(5_000.0)
                .working_set_mb(128.0)
                .build(),
        )]);
        let report = classify_affinity(&env, ids[0]).unwrap();
        assert_eq!(report.affinity, ResourceAffinity::IoBound);
    }

    #[test]
    fn balanced_function_is_sensitive_to_both() {
        let (env, ids) = env_with(vec![(
            "both",
            FunctionProfile::builder("both")
                .parallel_ms(60_000.0)
                .max_parallelism(10.0)
                .working_set_mb(8_192.0)
                .mem_floor_mb(4_096.0)
                .mem_penalty_factor(6.0)
                .build(),
        )]);
        let report = classify_affinity(&env, ids[0]).unwrap();
        assert_eq!(report.affinity, ResourceAffinity::Balanced);
    }

    #[test]
    fn classify_workflow_covers_all_functions() {
        let (env, _) = env_with(vec![
            ("a", FunctionProfile::builder("a").serial_ms(100.0).build()),
            ("b", FunctionProfile::builder("b").io_ms(100.0).build()),
        ]);
        let reports = classify_workflow(&env);
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn unknown_node_returns_none() {
        let (env, _) = env_with(vec![(
            "a",
            FunctionProfile::builder("a").serial_ms(100.0).build(),
        )]);
        assert!(classify_affinity(&env, NodeId::new(42)).is_none());
    }
}
