//! Property-based tests of the Priority Configurator's safety invariants on
//! randomly shaped two-branch workflows.

use aarc_core::configurator::PriorityConfigurator;
use aarc_core::search::SearchTrace;
use aarc_core::AarcParams;
use aarc_simulator::{EvalEngine, FunctionProfile, ProfileSet, WorkflowEnvironment};
use aarc_workflow::{NodeId, WorkflowBuilder};
use proptest::prelude::*;

/// Builds a two-function chain whose profiles are drawn from the given
/// parameters.
fn chain_env(serial_a: f64, parallel_a: f64, ws_b: f64) -> (WorkflowEnvironment, Vec<NodeId>) {
    let mut b = WorkflowBuilder::new("prop-chain");
    let x = b.add_function("x");
    let y = b.add_function("y");
    b.add_edge(x, y).unwrap();
    let wf = b.build().unwrap();
    let mut profiles = ProfileSet::new();
    profiles.insert(
        x,
        FunctionProfile::builder("x")
            .serial_ms(serial_a)
            .parallel_ms(parallel_a)
            .max_parallelism(6.0)
            .working_set_mb(512.0)
            .mem_floor_mb(256.0)
            .build(),
    );
    profiles.insert(
        y,
        FunctionProfile::builder("y")
            .serial_ms(4_000.0)
            .working_set_mb(ws_b)
            .mem_floor_mb(ws_b * 0.5)
            .mem_penalty_factor(4.0)
            .build(),
    );
    let env = WorkflowEnvironment::builder(wf, profiles).build().unwrap();
    (env, vec![x, y])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the profiles and budget headroom, the configurator never
    /// accepts a configuration that violates its path budget, raises the
    /// path cost or OOMs — and the number of samples never exceeds the
    /// configured trial cap.
    #[test]
    fn configurator_is_safe(
        serial_a in 500.0f64..20_000.0,
        parallel_a in 0.0f64..60_000.0,
        ws_b in 256.0f64..4_096.0,
        headroom in 1.05f64..3.0,
        max_trials in 5usize..60,
    ) {
        let (env, path) = chain_env(serial_a, parallel_a, ws_b);
        let engine = EvalEngine::single_threaded(env.clone());
        let mut configs = env.base_configs();
        let baseline = engine.evaluate(&configs).unwrap();
        let budget = baseline.makespan_ms() * headroom;
        let params = AarcParams {
            max_trials_per_path: max_trials,
            ..AarcParams::paper()
        };
        let configurator = PriorityConfigurator::new(params);
        let mut trace = SearchTrace::new();
        let result = configurator
            .configure_path(&engine, &mut configs, &path, budget, budget, &baseline, &mut trace)
            .unwrap();

        prop_assert!(result.samples_used <= max_trials);
        prop_assert_eq!(trace.sample_count(), result.samples_used);

        // The configuration left behind is feasible and not more expensive
        // than the baseline.
        let final_report = env.execute(&configs).unwrap();
        prop_assert!(!final_report.any_oom());
        prop_assert!(final_report.makespan_ms() <= budget + 1e-6);
        prop_assert!(final_report.total_cost() <= baseline.total_cost() + 1e-6);

        // Every configuration stays inside the resource space.
        for (_, cfg) in configs.iter() {
            prop_assert!(env.space().contains(cfg));
        }

        // Accepted samples never increase cost along the trace.
        let mut last = f64::INFINITY;
        for sample in trace.samples() {
            if sample.accepted {
                prop_assert!(sample.cost <= last + 1e-6);
                last = sample.cost;
            }
        }
    }
}
