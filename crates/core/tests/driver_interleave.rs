//! Pins the invariant the serve daemon's session scheduler (and `aarc
//! sweep`) relies on: round-robin interleaving of independent searches on
//! one shared [`EvalService`] is bit-identical to running each search
//! alone on a private engine — even when strategies issue unequal batch
//! sizes and finish at different rounds, and even though a finished
//! session keeps being skipped while the others continue.

use aarc_core::{AarcError, SearchTrace};
use aarc_core::{Ask, SearchDriver, SearchOutcome, SearchSession, SearchStrategy, SessionState};
use aarc_simulator::{
    ConfigMap, EvalEngine, EvalService, FunctionProfile, ProfileSet, ResourceConfig, SimResult,
    WorkflowEnvironment,
};
use aarc_workflow::WorkflowBuilder;

fn env() -> WorkflowEnvironment {
    let mut b = WorkflowBuilder::new("interleave");
    let a = b.add_function("a");
    let c = b.add_function("b");
    b.add_edge(a, c).unwrap();
    let wf = b.build().unwrap();
    let mut p = ProfileSet::new();
    p.insert(
        a,
        FunctionProfile::builder("a")
            .serial_ms(800.0)
            .parallel_ms(3_000.0)
            .max_parallelism(4.0)
            .working_set_mb(512.0)
            .mem_floor_mb(256.0)
            .build(),
    );
    p.insert(c, FunctionProfile::builder("b").serial_ms(400.0).build());
    WorkflowEnvironment::builder(wf, p).build().unwrap()
}

/// A deterministic mock strategy: each round asks for a batch of the next
/// planned size (deterministically generated candidates, salted per
/// strategy), then finishes. Its ask sequence depends only on its own
/// plan, so any interleaving must reproduce its solo results.
struct PlannedBatches {
    name: &'static str,
    salt: u32,
    plan: Vec<usize>,
    round: usize,
    counter: u32,
    trace: SearchTrace,
    best: Option<(ConfigMap, SimResult)>,
}

impl PlannedBatches {
    fn new(name: &'static str, salt: u32, plan: Vec<usize>) -> Self {
        PlannedBatches {
            name,
            salt,
            plan,
            round: 0,
            counter: 0,
            trace: SearchTrace::new(),
            best: None,
        }
    }

    fn boxed(name: &'static str, salt: u32, plan: &[usize]) -> Box<dyn SearchStrategy> {
        Box::new(PlannedBatches::new(name, salt, plan.to_vec()))
    }

    fn candidate(&self, i: u32) -> ConfigMap {
        let k = self.salt.wrapping_mul(31).wrapping_add(i);
        ConfigMap::uniform(
            2,
            ResourceConfig::new(1.0 + f64::from(k % 5), 512 + 64 * (k % 9)),
        )
    }
}

impl SearchStrategy for PlannedBatches {
    fn name(&self) -> &str {
        self.name
    }

    fn ask(&mut self, _env: &WorkflowEnvironment) -> Result<Ask, AarcError> {
        if self.round >= self.plan.len() {
            return Ok(Ask::Done);
        }
        let size = self.plan[self.round];
        let batch = (0..size)
            .map(|i| self.candidate(self.counter + i as u32))
            .collect::<Vec<_>>();
        self.counter += size as u32;
        self.round += 1;
        Ok(Ask::Batch(batch))
    }

    fn tell(&mut self, _env: &WorkflowEnvironment, results: &[SimResult]) -> Result<(), AarcError> {
        let base = self.counter - results.len() as u32;
        for (i, result) in results.iter().enumerate() {
            self.trace
                .record(result, true, format!("candidate {}", base + i as u32));
            let configs = self.candidate(base + i as u32);
            let better = self
                .best
                .as_ref()
                .is_none_or(|(_, b)| result.total_cost() < b.total_cost());
            if !result.any_oom() && better {
                self.best = Some((configs, result.clone()));
            }
        }
        Ok(())
    }

    fn finish(&mut self, _env: &WorkflowEnvironment) -> Result<SearchOutcome, AarcError> {
        let (best_configs, final_report) = self.best.take().expect("told at least one result");
        Ok(SearchOutcome {
            best_configs,
            final_report,
            trace: std::mem::take(&mut self.trace),
        })
    }
}

/// The plans deliberately differ in batch size per round *and* in total
/// rounds, so strategies drop out of the round-robin at different times.
const PLANS: [(&str, u32, &[usize]); 4] = [
    ("wide-then-narrow", 1, &[7, 1, 5]),
    ("one-round", 2, &[3]),
    ("steady", 3, &[2, 2, 2, 2, 2, 2]),
    ("late-bloomer", 4, &[1, 1, 9, 4]),
];

/// Result equality modulo the provenance seed: a shared-cache hit returns
/// the first inserter's `(input, seed)` provenance, which without runtime
/// jitter is deliberately seed-independent (the cache key normalises the
/// seed away precisely because the observable values cannot differ).
/// Everything a report can ever surface must be identical.
fn assert_results_equal(got: &SimResult, want: &SimResult, context: &str) {
    assert_eq!(
        got.executions(),
        want.executions(),
        "{context}: node outcomes"
    );
    assert_eq!(got.makespan_ms(), want.makespan_ms(), "{context}: makespan");
    assert_eq!(got.total_cost(), want.total_cost(), "{context}: cost");
    assert_eq!(got.any_oom(), want.any_oom(), "{context}: oom");
    assert_eq!(got.input(), want.input(), "{context}: input");
}

fn assert_outcomes_equal(got: &SearchOutcome, want: &SearchOutcome, context: &str) {
    assert_eq!(
        got.best_configs, want.best_configs,
        "{context}: best configs"
    );
    assert_results_equal(&got.final_report, &want.final_report, context);
    assert_eq!(got.trace, want.trace, "{context}: trace");
}

/// Solo reference runs, each on its own private single-threaded engine.
fn solo_outcomes() -> Vec<SearchOutcome> {
    PLANS
        .iter()
        .map(|(name, salt, plan)| {
            let engine = EvalEngine::single_threaded(env());
            SearchDriver::run(PlannedBatches::boxed(name, *salt, plan), &engine.handle()).unwrap()
        })
        .collect()
}

#[test]
fn unequal_batches_and_early_done_do_not_perturb_interleaved_results() {
    let solo = solo_outcomes();
    for threads in [1, 4] {
        let service = EvalService::with_threads(threads);
        let handle = service.register(env());
        let sessions = PLANS
            .iter()
            .map(|(name, salt, plan)| {
                SearchSession::new(PlannedBatches::boxed(name, *salt, plan), handle.clone())
            })
            .collect();
        let outcomes = SearchDriver::run_interleaved(sessions);
        assert_eq!(outcomes.len(), solo.len());
        for ((outcome, want), (name, _, _)) in outcomes.iter().zip(&solo).zip(PLANS) {
            let got = outcome.as_ref().unwrap();
            assert_outcomes_equal(got, want, &format!("{name} @{threads} threads"));
        }
    }
}

#[test]
fn interleaved_results_are_submission_order_invariant() {
    let solo = solo_outcomes();
    // Reversed submission order: every strategy must still reproduce its
    // solo outcome, proving no cross-session leakage through the shared
    // pool or cache.
    let service = EvalService::with_threads(2);
    let handle = service.register(env());
    let sessions = PLANS
        .iter()
        .rev()
        .map(|(name, salt, plan)| {
            SearchSession::new(PlannedBatches::boxed(name, *salt, plan), handle.clone())
        })
        .collect();
    let outcomes = SearchDriver::run_interleaved(sessions);
    for ((outcome, want), (name, _, _)) in outcomes
        .iter()
        .zip(solo.iter().rev())
        .zip(PLANS.iter().rev())
    {
        assert_outcomes_equal(outcome.as_ref().unwrap(), want, &format!("{name} reversed"));
    }
}

#[test]
fn stepped_sessions_report_progress_and_match_the_driver_loop() {
    let service = EvalService::with_threads(1);
    let handle = service.register(env());
    let (name, salt, plan) = PLANS[0];
    let mut session = SearchSession::new(PlannedBatches::boxed(name, salt, plan), handle.clone());
    assert_eq!(session.state(), SessionState::Running);
    let mut rounds = 0u64;
    while session.step() == SessionState::Running {
        rounds += 1;
        assert_eq!(session.progress().rounds, rounds);
    }
    // The final step consumed Ask::Done, which is not a told round.
    assert_eq!(session.progress().rounds, plan.len() as u64);
    assert_eq!(
        session.progress().evals,
        plan.iter().sum::<usize>() as u64,
        "a batch of n counts n evaluations"
    );
    let incumbent = session.progress().incumbent.clone().expect("tracked");
    let outcome = session.into_outcome().unwrap().unwrap();
    assert_eq!(incumbent.cost, outcome.final_report.total_cost());
    assert_eq!(incumbent.configs, outcome.best_configs);

    // And the whole stepped run equals the driver's one-shot loop.
    let reference = SearchDriver::run(
        PlannedBatches::boxed(name, salt, plan),
        &EvalEngine::single_threaded(env()).handle(),
    )
    .unwrap();
    assert_outcomes_equal(&outcome, &reference, "stepped vs driver loop");
}

#[test]
fn pause_blocks_steps_and_cancel_finishes_with_cancelled_error() {
    let service = EvalService::with_threads(1);
    let handle = service.register(env());
    let (name, salt, plan) = PLANS[2];
    let mut session = SearchSession::new(PlannedBatches::boxed(name, salt, plan), handle.clone());
    assert_eq!(session.step(), SessionState::Running);
    session.pause();
    assert_eq!(session.state(), SessionState::Paused);
    let before = session.progress().clone();
    assert_eq!(
        session.step(),
        SessionState::Paused,
        "paused steps are no-ops"
    );
    assert_eq!(session.progress(), &before);
    session.resume();
    assert_eq!(session.step(), SessionState::Running);
    session.cancel();
    assert_eq!(session.state(), SessionState::Finished);
    assert_eq!(session.step(), SessionState::Finished);
    assert!(matches!(
        session.into_outcome(),
        Some(Err(AarcError::SearchCancelled))
    ));
}
