//! Fig. 8 — the input-aware configuration engine (§IV-D) on the Video
//! Analysis workflow: per-request runtime against the SLO threshold and
//! average cost per input size class, for AARC (input-aware) vs the static
//! configurations found by BO and MAFF.

use std::collections::BTreeMap;

use aarc_core::{AarcError, AarcParams, GraphCentricScheduler, InputAwareEngine};
use aarc_simulator::{ConfigMap, EvalService, InputClass};
use aarc_workloads::inputs::request_sequence;
use aarc_workloads::video_analysis;

use crate::methods::{build_method, MethodName};

/// Outcome of serving one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestOutcome {
    /// Request index (x-axis of Fig. 8a).
    pub request: usize,
    /// Input class of the request.
    pub class: InputClass,
    /// End-to-end runtime in ms.
    pub runtime_ms: f64,
    /// Billed cost of the request.
    pub cost: f64,
    /// Whether the request met the workload SLO.
    pub met_slo: bool,
}

/// The Fig. 8 measurements for one method.
#[derive(Debug, Clone, PartialEq)]
pub struct InputAwareResult {
    /// Method name.
    pub method: MethodName,
    /// Per-request outcomes (Fig. 8a).
    pub requests: Vec<RequestOutcome>,
    /// Average cost per input class (Fig. 8b).
    pub avg_cost_per_class: BTreeMap<InputClass, f64>,
    /// Number of SLO violations across all requests.
    pub slo_violations: usize,
}

impl InputAwareResult {
    fn from_requests(method: MethodName, requests: Vec<RequestOutcome>) -> Self {
        let mut sums: BTreeMap<InputClass, (f64, usize)> = BTreeMap::new();
        for r in &requests {
            let e = sums.entry(r.class).or_insert((0.0, 0));
            e.0 += r.cost;
            e.1 += 1;
        }
        let avg_cost_per_class = sums
            .into_iter()
            .map(|(c, (sum, n))| (c, sum / n as f64))
            .collect();
        let slo_violations = requests.iter().filter(|r| !r.met_slo).count();
        InputAwareResult {
            method,
            requests,
            avg_cost_per_class,
            slo_violations,
        }
    }
}

/// Runs the Fig. 8 experiment with `total_requests` requests cycling through
/// light / middle / heavy inputs.
///
/// AARC uses the input-aware engine (one configuration per class); BO and
/// MAFF use the single static configuration their search finds for the
/// nominal input, as in the paper.
///
/// # Errors
///
/// Propagates search and execution errors.
pub fn run(total_requests: usize) -> Result<Vec<InputAwareResult>, AarcError> {
    let workload = video_analysis();
    let env = workload.env();
    let slo = workload.slo_ms();
    let requests = request_sequence(total_requests);

    let mut results = Vec::new();

    // One shared evaluation service for the whole figure: the per-class
    // input-aware searches interleave on its pool, and the static
    // baselines' searches reuse the same cache.
    let service = EvalService::default();

    // AARC with the input-aware engine plugin.
    let scheduler = GraphCentricScheduler::new(AarcParams::paper());
    let engine =
        InputAwareEngine::build_with(&scheduler, &service, env, slo, workload.input_classes())?;
    let mut aarc_requests = Vec::with_capacity(total_requests);
    for (i, (class, input)) in requests.iter().enumerate() {
        let report = engine.serve(env, *input)?;
        aarc_requests.push(RequestOutcome {
            request: i,
            class: *class,
            runtime_ms: report.makespan_ms(),
            cost: report.total_cost(),
            met_slo: report.meets_slo(slo),
        });
    }
    results.push(InputAwareResult::from_requests(
        MethodName::Aarc,
        aarc_requests,
    ));

    // Static baselines: one configuration for all inputs.
    for method in [MethodName::Bo, MethodName::Maff] {
        let search = build_method(method);
        let outcome = search.search_on(&service.register(env.clone()), slo)?;
        results.push(serve_static(
            method,
            &outcome.best_configs,
            &requests,
            slo,
            env,
        )?);
    }
    Ok(results)
}

fn serve_static(
    method: MethodName,
    configs: &ConfigMap,
    requests: &[(InputClass, aarc_simulator::InputSpec)],
    slo: f64,
    env: &aarc_simulator::WorkflowEnvironment,
) -> Result<InputAwareResult, AarcError> {
    let mut outcomes = Vec::with_capacity(requests.len());
    for (i, (class, input)) in requests.iter().enumerate() {
        let report = env.execute_with_input(configs, *input)?;
        outcomes.push(RequestOutcome {
            request: i,
            class: *class,
            runtime_ms: report.makespan_ms(),
            cost: report.total_cost(),
            met_slo: report.meets_slo(slo),
        });
    }
    Ok(InputAwareResult::from_requests(method, outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_aware_aarc_never_violates_and_undercuts_static_baselines_on_light_inputs() {
        // A small request count keeps the test tractable; the experiments
        // binary runs the full 300-request sequence.
        let results = run(9).unwrap();
        assert_eq!(results.len(), 3);
        let aarc = &results[0];
        assert_eq!(aarc.method, MethodName::Aarc);
        assert_eq!(
            aarc.slo_violations, 0,
            "input-aware AARC must stay within the SLO"
        );

        let light_cost_aarc = aarc.avg_cost_per_class[&InputClass::Light];
        for baseline in &results[1..] {
            let light_cost_baseline = baseline.avg_cost_per_class[&InputClass::Light];
            assert!(
                light_cost_aarc < light_cost_baseline,
                "AARC should be cheaper on light inputs than {} ({} vs {})",
                baseline.method,
                light_cost_aarc,
                light_cost_baseline
            );
        }
    }
}
