//! Figs. 5, 6 and 7 — search efficiency of AARC vs BO vs MAFF on the three
//! workflows: total sampling runtime and cost (Fig. 5) and the per-sample
//! runtime / cost series (Figs. 6 and 7).

use aarc_core::AarcError;
use aarc_simulator::EvalService;
use aarc_workloads::{paper_workloads, Workload};

use crate::methods::{build_method, MethodName};

/// Search-efficiency measurements of one (workload, method) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchEfficiency {
    /// Workload name.
    pub workload: String,
    /// Method name.
    pub method: MethodName,
    /// Number of samples (workflow executions) the search performed.
    pub samples: usize,
    /// Total sampling wall-clock runtime in seconds (Fig. 5a).
    pub total_runtime_s: f64,
    /// Total sampling cost (Fig. 5b).
    pub total_cost: f64,
    /// Per-sample runtime series in ms (Fig. 6).
    pub runtime_series_ms: Vec<f64>,
    /// Per-sample cost series (Fig. 7).
    pub cost_series: Vec<f64>,
    /// Cost of the final configuration the method settled on.
    pub final_cost: f64,
    /// Runtime of the final configuration in ms.
    pub final_runtime_ms: f64,
    /// Whether the final configuration meets the workload's SLO.
    pub final_meets_slo: bool,
}

/// Runs one method on one workload and collects its efficiency metrics,
/// over a private single-threaded evaluation service.
///
/// # Errors
///
/// Propagates search errors.
pub fn measure(workload: &Workload, method: MethodName) -> Result<SearchEfficiency, AarcError> {
    measure_on(&EvalService::default(), workload, method)
}

/// [`measure`] over a shared [`EvalService`]: the workload is registered as
/// a handle and the search submits through the shared pool and
/// fingerprint-keyed cache. Results are bit-identical to a private engine.
///
/// # Errors
///
/// Propagates search errors.
pub fn measure_on(
    service: &EvalService,
    workload: &Workload,
    method: MethodName,
) -> Result<SearchEfficiency, AarcError> {
    let search = build_method(method);
    let outcome = search.search_on(&service.register(workload.env().clone()), workload.slo_ms())?;
    Ok(SearchEfficiency {
        workload: workload.name().to_owned(),
        method,
        samples: outcome.trace.sample_count(),
        total_runtime_s: outcome.trace.total_runtime_ms() / 1_000.0,
        total_cost: outcome.trace.total_cost(),
        runtime_series_ms: outcome.trace.runtime_series(),
        cost_series: outcome.trace.cost_series(),
        final_cost: outcome.final_report.total_cost(),
        final_runtime_ms: outcome.final_report.makespan_ms(),
        final_meets_slo: outcome.final_report.meets_slo(workload.slo_ms()),
    })
}

/// Runs all three methods on all three paper workloads (the full Fig. 5/6/7
/// matrix).
///
/// # Errors
///
/// Propagates search errors.
pub fn run_all() -> Result<Vec<SearchEfficiency>, AarcError> {
    // One shared service across the whole matrix: every (workload, method)
    // pair draws from the same pool, and repeated simulations (e.g. the
    // base configuration per workload) hit the shared cache across methods.
    let service = EvalService::default();
    let mut out = Vec::new();
    for workload in paper_workloads() {
        for method in MethodName::ALL {
            out.push(measure_on(&service, &workload, method)?);
        }
    }
    Ok(out)
}

/// Relative reduction of `ours` against `baseline` (e.g. `0.85` = 85 %
/// lower).
pub fn reduction(ours: f64, baseline: f64) -> f64 {
    if baseline <= 0.0 {
        return 0.0;
    }
    1.0 - ours / baseline
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarc_workloads::chatbot;

    #[test]
    fn aarc_beats_bo_on_chatbot_final_cost_with_comparable_search_effort() {
        let wl = chatbot();
        let aarc = measure(&wl, MethodName::Aarc).unwrap();
        let bo = measure(&wl, MethodName::Bo).unwrap();
        assert!(aarc.final_meets_slo);
        assert!(bo.final_meets_slo);
        // On the Chatbot workload (serial functions near the SLO) the two
        // methods spend a similar sampling budget; AARC's advantage is the
        // quality of the found configuration. The large search-runtime gap
        // of the paper shows up on Video Analysis (see the end-to-end test
        // `aarc_search_is_cheaper_and_faster_than_bo_on_the_heavy_workload`).
        // The ratio is fully deterministic: executions carry per-candidate
        // seeds derived from the sample index (see
        // `aarc_simulator::derive_seed`), so the measurement no longer
        // depends on RNG stream order or thread count — only on the fixed
        // candidate sequence BO's vendored-rand stream draws (ratio 1.813 at
        // the time of writing, vs 1.6 with crates.io rand). The bound keeps
        // a small margin over that pinned value.
        assert!(
            aarc.total_runtime_s < 1.9 * bo.total_runtime_s,
            "AARC search effort should stay comparable to BO ({} vs {})",
            aarc.total_runtime_s,
            bo.total_runtime_s
        );
        assert!(
            aarc.final_cost < bo.final_cost,
            "AARC final config must be cheaper than BO ({} vs {})",
            aarc.final_cost,
            bo.final_cost
        );
    }

    #[test]
    fn aarc_beats_maff_final_cost_on_chatbot() {
        let wl = chatbot();
        let aarc = measure(&wl, MethodName::Aarc).unwrap();
        let maff = measure(&wl, MethodName::Maff).unwrap();
        assert!(maff.final_meets_slo);
        assert!(
            aarc.final_cost < maff.final_cost,
            "AARC ({}) must undercut MAFF ({})",
            aarc.final_cost,
            maff.final_cost
        );
    }

    #[test]
    fn reduction_helper() {
        assert!((reduction(15.0, 100.0) - 0.85).abs() < 1e-12);
        assert_eq!(reduction(5.0, 0.0), 0.0);
    }

    #[test]
    fn measurements_carry_full_series() {
        let wl = chatbot();
        let aarc = measure(&wl, MethodName::Aarc).unwrap();
        assert_eq!(aarc.samples, aarc.runtime_series_ms.len());
        assert_eq!(aarc.samples, aarc.cost_series.len());
        assert!(aarc.samples > 3);
    }
}
