//! Experiment harness regenerating every table and figure of the AARC
//! paper's evaluation (§IV).
//!
//! Each module corresponds to one figure or table and produces plain data
//! structures that the `experiments` binary prints as text tables and the
//! Criterion benches time. See DESIGN.md for the experiment ↔ module map and
//! EXPERIMENTS.md for the measured results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod fig2_decoupling;
pub mod fig3_bo_motivation;
pub mod fig5_search_efficiency;
pub mod fig8_input_aware;
pub mod methods;
pub mod table2_optimal;

pub use methods::{default_methods, MethodName};

/// Formats a floating-point number with thousands separators for table
/// output (e.g. `1234567.8` → `"1,234,567.8"`).
pub fn fmt_thousands(value: f64) -> String {
    let negative = value < 0.0;
    let rounded = (value.abs() * 10.0).round() / 10.0;
    let int_part = rounded.trunc() as u64;
    let frac = ((rounded - rounded.trunc()) * 10.0).round() as u64;
    let digits = int_part.to_string();
    let mut grouped = String::new();
    for (i, c) in digits.chars().rev().enumerate() {
        if i > 0 && i % 3 == 0 {
            grouped.push(',');
        }
        grouped.push(c);
    }
    let grouped: String = grouped.chars().rev().collect();
    let sign = if negative { "-" } else { "" };
    format!("{sign}{grouped}.{frac}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_formatting() {
        assert_eq!(fmt_thousands(0.0), "0.0");
        assert_eq!(fmt_thousands(12.34), "12.3");
        assert_eq!(fmt_thousands(1_234.0), "1,234.0");
        assert_eq!(fmt_thousands(1_234_567.89), "1,234,567.9");
        assert_eq!(fmt_thousands(-9_876.5), "-9,876.5");
    }
}
