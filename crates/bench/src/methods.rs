//! The three search methods compared throughout the evaluation, constructed
//! with the parameters used by the paper.

use aarc_baselines::{BayesianOptimization, BoParams, MaffGradientDescent, MaffParams};
use aarc_core::{AarcParams, ConfigurationSearch, GraphCentricScheduler};

/// Identifier of a search method, in the order used by the figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodName {
    /// The paper's contribution.
    Aarc,
    /// Bayesian optimization (Bilal et al., extended to workflows).
    Bo,
    /// MAFF coupled gradient descent.
    Maff,
}

impl MethodName {
    /// All methods in figure order.
    pub const ALL: [MethodName; 3] = [MethodName::Aarc, MethodName::Bo, MethodName::Maff];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            MethodName::Aarc => "AARC",
            MethodName::Bo => "BO",
            MethodName::Maff => "MAFF",
        }
    }
}

impl std::fmt::Display for MethodName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Builds one search method with its evaluation-default parameters.
pub fn build_method(name: MethodName) -> Box<dyn ConfigurationSearch> {
    match name {
        MethodName::Aarc => Box::new(GraphCentricScheduler::new(AarcParams::paper())),
        MethodName::Bo => Box::new(BayesianOptimization::new(BoParams::default())),
        MethodName::Maff => Box::new(MaffGradientDescent::new(MaffParams::default())),
    }
}

/// All three methods with their evaluation-default parameters, in figure
/// order.
pub fn default_methods() -> Vec<(MethodName, Box<dyn ConfigurationSearch>)> {
    MethodName::ALL
        .iter()
        .map(|&m| (m, build_method(m)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_trait_names() {
        for (name, method) in default_methods() {
            assert_eq!(name.label(), method.name());
        }
    }

    #[test]
    fn three_methods_in_order() {
        let names: Vec<MethodName> = default_methods().into_iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            vec![MethodName::Aarc, MethodName::Bo, MethodName::Maff]
        );
        assert_eq!(MethodName::Aarc.to_string(), "AARC");
    }
}
