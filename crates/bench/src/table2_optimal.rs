//! Table II — average runtime (± standard deviation) and cost of the
//! configurations found by each method, measured over repeated executions
//! with runtime jitter (the paper executes each found configuration 100
//! times).

use aarc_core::AarcError;
use aarc_simulator::metrics::Summary;
use aarc_simulator::{ClusterSpec, ConfigMap, EvalService, WorkflowEnvironment};
use aarc_workloads::{paper_workloads, Workload};

use crate::methods::{build_method, MethodName};

/// One row of Table II: a (workload, method) pair with its repeated-execution
/// statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalConfigRow {
    /// Workload name.
    pub workload: String,
    /// Method name.
    pub method: MethodName,
    /// Mean end-to-end runtime in seconds.
    pub runtime_mean_s: f64,
    /// Standard deviation of the runtime in seconds.
    pub runtime_std_s: f64,
    /// Mean billed cost.
    pub cost_mean: f64,
    /// Number of SLO violations observed across the repetitions.
    pub slo_violations: usize,
    /// Number of repetitions.
    pub repetitions: usize,
}

/// Executes `configs` repeatedly (with ±2 % runtime jitter, mimicking
/// measurement noise on the real testbed) and summarises runtime and cost.
///
/// # Errors
///
/// Propagates execution errors.
pub fn evaluate_config(
    env: &WorkflowEnvironment,
    configs: &ConfigMap,
    slo_ms: f64,
    repetitions: usize,
) -> Result<(Summary, Summary, usize), AarcError> {
    let noisy_env_cluster = ClusterSpec::paper_testbed_with_jitter(0.02);
    let mut runtimes_s = Vec::with_capacity(repetitions);
    let mut costs = Vec::with_capacity(repetitions);
    let mut violations = 0;
    for rep in 0..repetitions {
        // Re-seed per repetition so the jitter differs between runs.
        let report = {
            // Rebuild a jittered environment sharing the same workflow and
            // profiles; seeds vary per repetition.
            let env = env.clone();
            let jittered =
                WorkflowEnvironment::builder(env.workflow().clone(), env.profiles().clone())
                    .pricing(*env.pricing())
                    .cluster(noisy_env_cluster)
                    .space(*env.space())
                    .input(env.input())
                    .base_config(env.base_config())
                    .seed(1_000 + rep as u64)
                    .build()?;
            jittered.execute(configs)?
        };
        if !report.meets_slo(slo_ms) {
            violations += 1;
        }
        runtimes_s.push(report.makespan_ms() / 1_000.0);
        costs.push(report.total_cost());
    }
    Ok((Summary::of(&runtimes_s), Summary::of(&costs), violations))
}

/// Produces one Table II row: search once, then execute the found
/// configuration `repetitions` times.
///
/// # Errors
///
/// Propagates search and execution errors.
pub fn measure(
    workload: &Workload,
    method: MethodName,
    repetitions: usize,
) -> Result<OptimalConfigRow, AarcError> {
    measure_on(&EvalService::default(), workload, method, repetitions)
}

/// [`measure`] over a shared [`EvalService`] (see the sibling harnesses).
///
/// # Errors
///
/// Propagates search and execution errors.
pub fn measure_on(
    service: &EvalService,
    workload: &Workload,
    method: MethodName,
    repetitions: usize,
) -> Result<OptimalConfigRow, AarcError> {
    let search = build_method(method);
    let outcome = search.search_on(&service.register(workload.env().clone()), workload.slo_ms())?;
    let (runtime, cost, violations) = evaluate_config(
        workload.env(),
        &outcome.best_configs,
        workload.slo_ms(),
        repetitions,
    )?;
    Ok(OptimalConfigRow {
        workload: workload.name().to_owned(),
        method,
        runtime_mean_s: runtime.mean,
        runtime_std_s: runtime.std_dev,
        cost_mean: cost.mean,
        slo_violations: violations,
        repetitions,
    })
}

/// The full Table II (all workloads × all methods).
///
/// # Errors
///
/// Propagates search and execution errors.
pub fn run_all(repetitions: usize) -> Result<Vec<OptimalConfigRow>, AarcError> {
    let service = EvalService::default();
    let mut rows = Vec::new();
    for workload in paper_workloads() {
        for method in MethodName::ALL {
            rows.push(measure_on(&service, &workload, method, repetitions)?);
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarc_workloads::chatbot;

    #[test]
    fn repeated_executions_meet_the_slo_and_have_small_variance() {
        let wl = chatbot();
        let row = measure(&wl, MethodName::Aarc, 10).unwrap();
        assert_eq!(row.repetitions, 10);
        assert_eq!(
            row.slo_violations, 0,
            "AARC configurations must stay within the SLO"
        );
        assert!(row.runtime_mean_s > 0.0);
        assert!(
            row.runtime_std_s < 0.1 * row.runtime_mean_s,
            "jitter is only a few percent"
        );
        assert!(row.cost_mean > 0.0);
    }

    #[test]
    fn aarc_row_is_cheaper_than_maff_row_for_chatbot() {
        let wl = chatbot();
        let aarc = measure(&wl, MethodName::Aarc, 5).unwrap();
        let maff = measure(&wl, MethodName::Maff, 5).unwrap();
        assert!(aarc.cost_mean < maff.cost_mean);
        assert_eq!(maff.slo_violations, 0);
    }
}
