//! Fig. 3 — the §II-B motivation experiment: Bayesian optimization on the
//! Chatbot workflow for 100 sampling rounds, showing slow convergence, long
//! total runtime and unstable cost.

use aarc_baselines::{BayesianOptimization, BoParams};
use aarc_core::{AarcError, ConfigurationSearch};
use aarc_simulator::metrics::fluctuation_amplitude;
use aarc_simulator::EvalService;
use aarc_workloads::chatbot;

/// Result of the Fig. 3 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct BoMotivation {
    /// Per-sample workflow runtime in ms (the upper series of Fig. 3).
    pub runtime_series_ms: Vec<f64>,
    /// Per-sample workflow cost (the lower series of Fig. 3).
    pub cost_series: Vec<f64>,
    /// Total sampling wall-clock time in hours (the paper reports 9.76 h).
    pub total_runtime_hours: f64,
    /// Relative cost reduction between the first sample and the best
    /// feasible sample (the paper reports 32.13 %).
    pub cost_reduction: f64,
    /// Mean absolute consecutive cost change divided by the mean cost (the
    /// paper reports 18.3 %).
    pub fluctuation_amplitude: f64,
    /// Fraction of consecutive cost changes that are increases (the paper
    /// reports "over half").
    pub increase_fraction: f64,
}

/// Runs Bayesian optimization on the Chatbot workflow for `rounds` samples.
///
/// # Errors
///
/// Propagates search errors (cannot occur for the built-in workload and its
/// paper SLO).
pub fn run(rounds: usize) -> Result<BoMotivation, AarcError> {
    let workload = chatbot();
    let bo = BayesianOptimization::new(BoParams {
        iterations: rounds,
        ..BoParams::motivation()
    });
    let service = EvalService::default();
    let outcome = bo.search_on(&service.register(workload.env().clone()), workload.slo_ms())?;
    let runtime_series_ms = outcome.trace.runtime_series();
    let cost_series = outcome.trace.cost_series();

    let first_cost = cost_series.first().copied().unwrap_or(0.0);
    let best_cost = outcome
        .trace
        .best_cost_series(workload.slo_ms())
        .last()
        .copied()
        .unwrap_or(first_cost);
    let cost_reduction = if first_cost > 0.0 {
        (first_cost - best_cost) / first_cost
    } else {
        0.0
    };
    let increases = cost_series.windows(2).filter(|w| w[1] > w[0]).count();
    let increase_fraction = if cost_series.len() > 1 {
        increases as f64 / (cost_series.len() - 1) as f64
    } else {
        0.0
    };

    Ok(BoMotivation {
        total_runtime_hours: runtime_series_ms.iter().sum::<f64>() / 3_600_000.0,
        fluctuation_amplitude: fluctuation_amplitude(&cost_series),
        cost_reduction,
        increase_fraction,
        runtime_series_ms,
        cost_series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bo_motivation_shows_instability_and_nonzero_reduction() {
        // 30 rounds keep the test fast while still exposing the qualitative
        // behaviour; the experiments binary runs the full 100.
        let result = run(30).unwrap();
        assert_eq!(result.runtime_series_ms.len(), 30);
        assert_eq!(result.cost_series.len(), 30);
        assert!(result.total_runtime_hours > 0.0);
        assert!(result.cost_reduction >= 0.0);
        assert!(
            result.fluctuation_amplitude > 0.05,
            "BO cost series should fluctuate noticeably, got {}",
            result.fluctuation_amplitude
        );
        assert!(
            result.increase_fraction > 0.2,
            "many changes should be increases"
        );
    }
}
