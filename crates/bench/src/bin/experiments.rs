//! Command-line experiment runner that regenerates every table and figure of
//! the AARC paper's evaluation as text tables.
//!
//! ```text
//! experiments [fig2|fig3|fig5|fig6|fig7|table2|fig8|ablations|all] [--quick]
//! ```
//!
//! `--quick` shrinks repetition counts so the full suite finishes in a couple
//! of minutes; the defaults mirror the paper (100 BO rounds, 100 repeated
//! executions, 300 requests).

use std::env;

use aarc_bench::fig5_search_efficiency::{reduction, run_all as run_fig5};
use aarc_bench::methods::MethodName;
use aarc_bench::{
    ablations, fig2_decoupling, fig3_bo_motivation, fig8_input_aware, fmt_thousands, table2_optimal,
};
use aarc_workloads::paper_workloads;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_owned());

    let run = |name: &str| which == "all" || which == name;

    if run("fig2") {
        fig2();
    }
    if run("fig3") {
        fig3(quick);
    }
    if run("fig5") || run("fig6") || run("fig7") {
        fig5_6_7(run("fig5"), run("fig6"), run("fig7"));
    }
    if run("table2") {
        table2(quick);
    }
    if run("fig8") {
        fig8(quick);
    }
    if run("ablations") {
        run_ablations();
    }
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn fig2() {
    banner("Fig. 2 — runtime and cost with decoupled resources");
    for workload in paper_workloads() {
        let heatmap = fig2_decoupling::sweep(&workload);
        println!("\nworkload: {}", workload.name());
        println!(
            "{:>6} {:>9} {:>14} {:>16}",
            "vCPU", "mem (MB)", "runtime (ms)", "cost"
        );
        for cell in &heatmap.cells {
            match (cell.runtime_ms, cell.cost) {
                (Some(rt), Some(cost)) => println!(
                    "{:>6.1} {:>9} {:>14.1} {:>16}",
                    cell.vcpu,
                    cell.memory_mb,
                    rt,
                    fmt_thousands(cost)
                ),
                _ => println!(
                    "{:>6.1} {:>9} {:>14} {:>16}",
                    cell.vcpu, cell.memory_mb, "OOM", "-"
                ),
            }
        }
        if let Some(best) = heatmap.cheapest_within_slo(workload.slo_ms()) {
            println!(
                "cost optimum within SLO: {:.1} vCPU / {} MB (cost {})",
                best.vcpu,
                best.memory_mb,
                fmt_thousands(best.cost.unwrap_or(0.0))
            );
        }
        if let Some(saving) = fig2_decoupling::decoupling_memory_saving(&heatmap, 1_024.0) {
            println!(
                "memory saving vs coupled allocation: {:.1} %",
                saving * 100.0
            );
        }
    }
}

fn fig3(quick: bool) {
    banner("Fig. 3 — Bayesian optimization search for Chatbot (§II-B motivation)");
    let rounds = if quick { 40 } else { 100 };
    match fig3_bo_motivation::run(rounds) {
        Ok(result) => {
            println!("rounds: {rounds}");
            println!(
                "total sampling runtime: {:.2} h",
                result.total_runtime_hours
            );
            println!(
                "cost reduction of best feasible sample: {:.1} %",
                result.cost_reduction * 100.0
            );
            println!(
                "average fluctuation amplitude: {:.1} % of the mean cost",
                result.fluctuation_amplitude * 100.0
            );
            println!(
                "fraction of cost changes that are increases: {:.1} %",
                result.increase_fraction * 100.0
            );
            println!("\n{:>6} {:>14} {:>16}", "sample", "runtime (ms)", "cost");
            for (i, (rt, cost)) in result
                .runtime_series_ms
                .iter()
                .zip(&result.cost_series)
                .enumerate()
            {
                println!("{:>6} {:>14.1} {:>16}", i + 1, rt, fmt_thousands(*cost));
            }
        }
        Err(e) => eprintln!("fig3 failed: {e}"),
    }
}

fn fig5_6_7(print5: bool, print6: bool, print7: bool) {
    banner("Figs. 5/6/7 — search efficiency of AARC vs BO vs MAFF");
    let results = match run_fig5() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("search-efficiency experiment failed: {e}");
            return;
        }
    };

    if print5 {
        println!("\nFig. 5 — total sampling runtime and cost");
        println!(
            "{:<16} {:<6} {:>8} {:>18} {:>18}",
            "workload", "method", "samples", "total runtime (s)", "total cost"
        );
        for r in &results {
            println!(
                "{:<16} {:<6} {:>8} {:>18.1} {:>18}",
                r.workload,
                r.method,
                r.samples,
                r.total_runtime_s,
                fmt_thousands(r.total_cost)
            );
        }
        // Headline reductions (AARC vs each baseline, per workload).
        for workload in ["chatbot", "ml-pipeline", "video-analysis"] {
            let find = |m: MethodName| {
                results
                    .iter()
                    .find(|r| r.workload == workload && r.method == m)
            };
            if let (Some(aarc), Some(bo), Some(maff)) = (
                find(MethodName::Aarc),
                find(MethodName::Bo),
                find(MethodName::Maff),
            ) {
                println!(
                    "{workload}: AARC search runtime {:.1}% vs BO, {:.1}% vs MAFF; search cost {:.1}% vs BO, {:.1}% vs MAFF (positive = AARC lower)",
                    reduction(aarc.total_runtime_s, bo.total_runtime_s) * 100.0,
                    reduction(aarc.total_runtime_s, maff.total_runtime_s) * 100.0,
                    reduction(aarc.total_cost, bo.total_cost) * 100.0,
                    reduction(aarc.total_cost, maff.total_cost) * 100.0,
                );
            }
        }
    }

    if print6 {
        println!("\nFig. 6 — workflow runtime vs sample count");
        for r in &results {
            let series: Vec<String> = r
                .runtime_series_ms
                .iter()
                .map(|v| format!("{v:.0}"))
                .collect();
            println!("{} / {}: [{}]", r.workload, r.method, series.join(", "));
        }
    }

    if print7 {
        println!("\nFig. 7 — workflow cost vs sample count");
        for r in &results {
            let series: Vec<String> = r.cost_series.iter().map(|v| format!("{v:.0}")).collect();
            println!("{} / {}: [{}]", r.workload, r.method, series.join(", "));
        }
    }
}

fn table2(quick: bool) {
    banner("Table II — average runtime and cost of the found configurations");
    let repetitions = if quick { 20 } else { 100 };
    match table2_optimal::run_all(repetitions) {
        Ok(rows) => {
            println!(
                "{:<16} {:<6} {:>18} {:>16} {:>14}",
                "workload", "method", "runtime (s)", "cost", "slo violations"
            );
            for r in rows {
                println!(
                    "{:<16} {:<6} {:>12.1} ± {:>3.1} {:>16} {:>10}/{}",
                    r.workload,
                    r.method,
                    r.runtime_mean_s,
                    r.runtime_std_s,
                    fmt_thousands(r.cost_mean),
                    r.slo_violations,
                    r.repetitions
                );
            }
        }
        Err(e) => eprintln!("table2 failed: {e}"),
    }
}

fn fig8(quick: bool) {
    banner("Fig. 8 — input-aware configuration on Video Analysis");
    let requests = if quick { 30 } else { 300 };
    match fig8_input_aware::run(requests) {
        Ok(results) => {
            for r in &results {
                println!(
                    "\nmethod {} — {} SLO violations out of {} requests",
                    r.method,
                    r.slo_violations,
                    r.requests.len()
                );
                println!("average cost per input class:");
                for (class, cost) in &r.avg_cost_per_class {
                    println!("  {class:>7}: {}", fmt_thousands(*cost));
                }
            }
        }
        Err(e) => eprintln!("fig8 failed: {e}"),
    }
}

fn run_ablations() {
    banner("Ablations — AARC design choices (chatbot workload)");
    let workload = aarc_workloads::chatbot();
    match ablations::run_all(&workload) {
        Ok(results) => {
            println!(
                "{:<28} {:>8} {:>18} {:>16} {:>10}",
                "variant", "samples", "search runtime (s)", "final cost", "meets SLO"
            );
            for r in results {
                println!(
                    "{:<28} {:>8} {:>18.1} {:>16} {:>10}",
                    r.variant,
                    r.samples,
                    r.total_runtime_s,
                    fmt_thousands(r.final_cost),
                    r.meets_slo
                );
            }
        }
        Err(e) => eprintln!("ablations failed: {e}"),
    }
}
