//! Ablation studies of AARC's design choices (see DESIGN.md §5):
//! affinity-guided queue seeding, exponential back-off aggressiveness and
//! the initial step size.

use aarc_core::{AarcError, AarcParams, ConfigurationSearch, GraphCentricScheduler};
use aarc_simulator::EvalService;
use aarc_workloads::Workload;

/// Result of one ablation variant on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationResult {
    /// Variant label.
    pub variant: String,
    /// Number of samples the search used.
    pub samples: usize,
    /// Total sampling runtime in seconds.
    pub total_runtime_s: f64,
    /// Cost of the final configuration.
    pub final_cost: f64,
    /// Whether the final configuration meets the SLO.
    pub meets_slo: bool,
}

/// Runs one parameter variant on a workload.
///
/// # Errors
///
/// Propagates search errors.
pub fn run_variant(
    workload: &Workload,
    label: &str,
    params: AarcParams,
) -> Result<AblationResult, AarcError> {
    run_variant_on(&EvalService::default(), workload, label, params)
}

/// [`run_variant`] over a shared [`EvalService`], so a grid of variants
/// reuses one pool and cache (the base-configuration profiling run of every
/// variant is simulated once and answered from the cache thereafter).
///
/// # Errors
///
/// Propagates search errors.
pub fn run_variant_on(
    service: &EvalService,
    workload: &Workload,
    label: &str,
    params: AarcParams,
) -> Result<AblationResult, AarcError> {
    let scheduler = GraphCentricScheduler::new(params);
    let outcome =
        scheduler.search_on(&service.register(workload.env().clone()), workload.slo_ms())?;
    Ok(AblationResult {
        variant: label.to_owned(),
        samples: outcome.trace.sample_count(),
        total_runtime_s: outcome.trace.total_runtime_ms() / 1_000.0,
        final_cost: outcome.final_report.total_cost(),
        meets_slo: outcome.final_report.meets_slo(workload.slo_ms()),
    })
}

/// The ablation grid the `ablations` bench and the experiments binary run.
pub fn variants() -> Vec<(&'static str, AarcParams)> {
    let paper = AarcParams::paper();
    vec![
        ("paper defaults", paper),
        (
            "no affinity guidance",
            AarcParams {
                affinity_guided: false,
                ..paper
            },
        ),
        (
            "gentle backoff (0.8)",
            AarcParams {
                backoff_factor: 0.8,
                ..paper
            },
        ),
        (
            "small initial steps (5%)",
            AarcParams {
                initial_cpu_step: 0.05,
                initial_mem_step: 0.05,
                ..paper
            },
        ),
        (
            "large initial steps (40%)",
            AarcParams {
                initial_cpu_step: 0.4,
                initial_mem_step: 0.4,
                ..paper
            },
        ),
        (
            "tight safety factor (0.9)",
            AarcParams {
                slo_safety_factor: 0.9,
                ..paper
            },
        ),
    ]
}

/// Runs the full ablation grid on one workload.
///
/// # Errors
///
/// Propagates search errors.
pub fn run_all(workload: &Workload) -> Result<Vec<AblationResult>, AarcError> {
    let service = EvalService::default();
    variants()
        .into_iter()
        .map(|(label, params)| run_variant_on(&service, workload, label, params))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarc_workloads::chatbot;

    #[test]
    fn every_variant_is_slo_compliant() {
        let wl = chatbot();
        let results = run_all(&wl).unwrap();
        assert_eq!(results.len(), variants().len());
        for r in &results {
            assert!(r.meets_slo, "variant `{}` violated the SLO", r.variant);
            assert!(r.samples > 0);
            assert!(r.final_cost > 0.0);
        }
    }

    #[test]
    fn small_steps_need_at_least_as_many_samples_as_paper_defaults() {
        let wl = chatbot();
        let paper = run_variant(&wl, "paper", AarcParams::paper()).unwrap();
        let small = run_variant(
            &wl,
            "small",
            AarcParams {
                initial_cpu_step: 0.05,
                initial_mem_step: 0.05,
                ..AarcParams::paper()
            },
        )
        .unwrap();
        assert!(small.samples + 5 >= paper.samples);
    }
}
