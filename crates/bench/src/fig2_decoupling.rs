//! Fig. 2 — runtime and cost heat-maps over decoupled (vCPU, memory) grids
//! for the three workflows, plus the §II-A motivation numbers.

use aarc_simulator::{ConfigMap, ResourceConfig};
use aarc_workloads::Workload;

/// One cell of a decoupling heat-map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeatmapCell {
    /// vCPU allocation applied uniformly to every function.
    pub vcpu: f64,
    /// Memory allocation in MB applied uniformly to every function.
    pub memory_mb: u32,
    /// End-to-end runtime in ms (`None` when the configuration OOMs).
    pub runtime_ms: Option<f64>,
    /// Total billed cost (`None` when the configuration OOMs).
    pub cost: Option<f64>,
}

/// The full grid for one workflow.
#[derive(Debug, Clone, PartialEq)]
pub struct DecouplingHeatmap {
    /// Workflow name.
    pub workload: String,
    /// Grid cells in row-major (vCPU-major) order.
    pub cells: Vec<HeatmapCell>,
}

impl DecouplingHeatmap {
    /// The cheapest non-OOM cell.
    pub fn cheapest(&self) -> Option<HeatmapCell> {
        self.cells
            .iter()
            .filter(|c| c.cost.is_some())
            .min_by(|a, b| a.cost.partial_cmp(&b.cost).expect("costs are finite"))
            .copied()
    }

    /// The cheapest non-OOM cell that also meets `slo_ms`.
    pub fn cheapest_within_slo(&self, slo_ms: f64) -> Option<HeatmapCell> {
        self.cells
            .iter()
            .filter(|c| c.cost.is_some() && c.runtime_ms.is_some_and(|r| r <= slo_ms))
            .min_by(|a, b| a.cost.partial_cmp(&b.cost).expect("costs are finite"))
            .copied()
    }
}

/// The (vCPU, memory) grid the paper sweeps for a workload (Fig. 2 axes).
pub fn paper_grid(workload_name: &str) -> (Vec<f64>, Vec<u32>) {
    match workload_name {
        // Chatbot and ML Pipeline: 0.5–4 vCPU × 512–2048 MB.
        "chatbot" | "ml-pipeline" => (
            vec![0.5, 1.0, 2.0, 3.0, 4.0],
            vec![512, 1_024, 1_536, 2_048],
        ),
        // Video Analysis: 4–8 vCPU × 5120–8192 MB.
        "video-analysis" => (
            vec![4.0, 5.0, 6.0, 7.0, 8.0],
            vec![5_120, 6_144, 7_168, 8_192],
        ),
        _ => (vec![1.0, 2.0, 4.0, 8.0], vec![512, 1_024, 2_048, 4_096]),
    }
}

/// Sweeps the decoupled grid for one workload.
///
/// # Panics
///
/// Panics if the platform rejects an execution (cannot happen for the
/// built-in grids, which stay within the paper testbed's capacity).
pub fn sweep(workload: &Workload) -> DecouplingHeatmap {
    let (vcpus, memories) = paper_grid(workload.name());
    sweep_grid(workload, &vcpus, &memories)
}

/// Sweeps an explicit grid for one workload.
///
/// # Panics
///
/// Panics if the platform rejects an execution (configuration outside the
/// cluster capacity).
pub fn sweep_grid(workload: &Workload, vcpus: &[f64], memories: &[u32]) -> DecouplingHeatmap {
    let env = workload.env();
    let mut cells = Vec::with_capacity(vcpus.len() * memories.len());
    for &vcpu in vcpus {
        for &memory_mb in memories {
            let configs =
                ConfigMap::uniform(env.workflow().len(), ResourceConfig::new(vcpu, memory_mb));
            let report = env
                .execute(&configs)
                .expect("grid configurations fit the paper testbed");
            let (runtime_ms, cost) = if report.any_oom() {
                (None, None)
            } else {
                (Some(report.makespan_ms()), Some(report.total_cost()))
            };
            cells.push(HeatmapCell {
                vcpu,
                memory_mb,
                runtime_ms,
                cost,
            });
        }
    }
    DecouplingHeatmap {
        workload: workload.name().to_owned(),
        cells,
    }
}

/// The §II-A motivation numbers: the memory saving of the decoupled cost
/// optimum against the coupled configuration providing the same vCPU count
/// (1 core per `mb_per_core` MB).
pub fn decoupling_memory_saving(heatmap: &DecouplingHeatmap, mb_per_core: f64) -> Option<f64> {
    let best = heatmap.cheapest()?;
    let coupled_memory = best.vcpu * mb_per_core;
    Some(1.0 - f64::from(best.memory_mb) / coupled_memory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarc_workloads::{chatbot, ml_pipeline, video_analysis};

    #[test]
    fn chatbot_grid_is_flat_in_memory() {
        let hm = sweep(&chatbot());
        assert_eq!(hm.cells.len(), 20);
        // Fix vCPU = 1, runtimes across memory sizes barely differ.
        let row: Vec<f64> = hm
            .cells
            .iter()
            .filter(|c| (c.vcpu - 1.0).abs() < 1e-9)
            .filter_map(|c| c.runtime_ms)
            .collect();
        assert!(row.len() >= 3);
        let min = row.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (max - min) / min < 0.02,
            "chatbot runtime should be flat in memory"
        );
    }

    #[test]
    fn chatbot_cost_optimum_is_low_cpu_low_memory() {
        let hm = sweep(&chatbot());
        let best = hm.cheapest_within_slo(120_000.0).unwrap();
        assert!(
            best.vcpu <= 1.0,
            "chatbot optimum should need at most 1 vCPU"
        );
        assert_eq!(best.memory_mb, 512);
    }

    #[test]
    fn ml_pipeline_cost_optimum_is_high_cpu_low_memory() {
        let hm = sweep(&ml_pipeline());
        let best = hm.cheapest_within_slo(120_000.0).unwrap();
        assert!(best.vcpu >= 2.0, "ml pipeline needs several cores");
        assert_eq!(best.memory_mb, 512, "ml pipeline needs little memory");
        // The motivating 87.5 % memory saving vs a coupled 4-core allocation.
        if (best.vcpu - 4.0).abs() < 1e-9 {
            let saving = decoupling_memory_saving(&hm, 1_024.0).unwrap();
            assert!(saving > 0.8);
        }
    }

    #[test]
    fn video_analysis_needs_large_memory() {
        let hm = sweep(&video_analysis());
        let best = hm.cheapest_within_slo(600_000.0).unwrap();
        assert!(best.memory_mb >= 5_120);
        assert!(best.vcpu >= 5.0);
    }

    #[test]
    fn custom_grid_reports_oom_cells() {
        let wl = video_analysis();
        let hm = sweep_grid(&wl, &[4.0], &[1_024]);
        assert_eq!(hm.cells.len(), 1);
        assert!(
            hm.cells[0].cost.is_none(),
            "1 GB must OOM the video workload"
        );
        assert!(hm.cheapest().is_none());
    }
}
