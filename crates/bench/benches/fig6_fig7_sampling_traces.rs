//! Figs. 6 and 7 bench: producing the per-sample runtime and cost series of
//! each method on the Chatbot workflow (the series plotted in the figures),
//! plus the trace post-processing itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aarc_bench::fig5_search_efficiency::measure;
use aarc_bench::methods::MethodName;
use aarc_workloads::chatbot;

fn bench_fig6_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_fig7_sampling_traces");
    group.sample_size(10);

    for method in MethodName::ALL {
        group.bench_with_input(
            BenchmarkId::new("series", method.label()),
            &method,
            |b, &m| {
                let workload = chatbot();
                b.iter(|| {
                    let eff = measure(&workload, m).expect("search succeeds");
                    std::hint::black_box((eff.runtime_series_ms, eff.cost_series))
                });
            },
        );
    }

    // Post-processing of an already-collected trace (best-cost running
    // minimum) — cheap, but it is what the plotting pipeline does per point.
    let workload = chatbot();
    let eff = measure(&workload, MethodName::Aarc).expect("search succeeds");
    group.bench_function("best_cost_running_minimum", |b| {
        b.iter(|| {
            let mut best = f64::INFINITY;
            let series: Vec<f64> = eff
                .cost_series
                .iter()
                .map(|&c| {
                    best = best.min(c);
                    best
                })
                .collect();
            std::hint::black_box(series)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig6_fig7);
criterion_main!(benches);
