//! Fig. 8 bench: building the input-aware engine for the Video Analysis
//! workflow and serving a light/middle/heavy request mix with it.

use criterion::{criterion_group, criterion_main, Criterion};

use aarc_core::{AarcParams, GraphCentricScheduler, InputAwareEngine};
use aarc_workloads::inputs::request_sequence;
use aarc_workloads::video_analysis;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_input_aware");
    group.sample_size(10);

    let workload = video_analysis();
    let scheduler = GraphCentricScheduler::new(AarcParams::fast());

    group.bench_function("build_engine_fast_params", |b| {
        b.iter(|| {
            std::hint::black_box(
                InputAwareEngine::build(
                    &scheduler,
                    workload.env(),
                    workload.slo_ms(),
                    workload.input_classes(),
                )
                .expect("engine builds"),
            )
        });
    });

    let engine = InputAwareEngine::build(
        &GraphCentricScheduler::new(AarcParams::paper()),
        workload.env(),
        workload.slo_ms(),
        workload.input_classes(),
    )
    .expect("engine builds");
    let requests = request_sequence(9);
    group.bench_function("serve_9_requests", |b| {
        b.iter(|| {
            for (_, input) in &requests {
                std::hint::black_box(
                    engine
                        .serve(workload.env(), *input)
                        .expect("request served"),
                );
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
