//! Bare simulation-kernel bench: one simulation per iteration, no search,
//! no memo-cache — the denominator behind every sims/sec number the `aarc
//! bench` perf gate tracks. Measures the three paper workloads through
//! both kernel paths:
//!
//! * `simulate` — the hot path (lean `SimResult`, reused `SimScratch`);
//! * `materialize` — the cold path (full `ExecutionReport` with trace),
//!   for comparison of what trace recording and name cloning cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aarc_simulator::kernel::{CompiledScenario, SimScratch};
use aarc_simulator::InputSpec;
use aarc_workloads::paper_workloads;

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_single_simulation");
    group.sample_size(50);
    for workload in paper_workloads() {
        let env = workload.env().clone();
        let scenario = CompiledScenario::compile(
            env.workflow(),
            env.profiles(),
            *env.cluster(),
            *env.pricing(),
        )
        .expect("paper workloads compile");
        let configs = env.base_configs();
        let mut scratch = SimScratch::new();

        group.bench_with_input(
            BenchmarkId::new("simulate", workload.name()),
            &configs,
            |b, cfg| {
                b.iter(|| {
                    std::hint::black_box(
                        scenario
                            .simulate(&mut scratch, cfg, InputSpec::nominal(), 0)
                            .expect("base config simulates"),
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("materialize", workload.name()),
            &configs,
            |b, cfg| {
                b.iter(|| {
                    std::hint::black_box(
                        scenario
                            .simulate_report(&mut scratch, cfg, InputSpec::nominal(), 0)
                            .expect("base config simulates"),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
