//! Fig. 5 bench: one full configuration search per (workload, method) pair —
//! the quantity whose total sampling runtime and cost the figure reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aarc_bench::fig5_search_efficiency::measure;
use aarc_bench::methods::MethodName;
use aarc_workloads::{chatbot, ml_pipeline};

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_search_efficiency");
    group.sample_size(10);
    // The chatbot and ML Pipeline workloads keep the bench runtime sane;
    // the experiments binary covers Video Analysis as well.
    for workload in [chatbot(), ml_pipeline()] {
        for method in MethodName::ALL {
            group.bench_with_input(
                BenchmarkId::new(method.label(), workload.name()),
                &(workload.clone(), method),
                |b, (wl, m)| {
                    b.iter(|| std::hint::black_box(measure(wl, *m).expect("search succeeds")));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
