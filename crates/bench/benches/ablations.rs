//! Ablation bench: AARC parameter variants (affinity guidance, back-off,
//! step size, safety factor) on the Chatbot workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aarc_bench::ablations::{run_variant, variants};
use aarc_workloads::chatbot;

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let workload = chatbot();
    for (label, params) in variants() {
        group.bench_with_input(BenchmarkId::new("variant", label), &params, |b, &p| {
            b.iter(|| {
                std::hint::black_box(run_variant(&workload, label, p).expect("variant runs"))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
