//! Fig. 2 bench: sweeping the decoupled (vCPU, memory) grid for each paper
//! workload and locating its cost optimum.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aarc_bench::fig2_decoupling::{sweep, sweep_grid};
use aarc_workloads::paper_workloads;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_decoupling");
    group.sample_size(10);
    for workload in paper_workloads() {
        group.bench_with_input(
            BenchmarkId::new("paper_grid_sweep", workload.name()),
            &workload,
            |b, wl| {
                b.iter(|| {
                    let heatmap = sweep(wl);
                    std::hint::black_box(heatmap.cheapest_within_slo(wl.slo_ms()))
                });
            },
        );
    }
    // A single-cell sweep isolates the cost of one simulated execution.
    let chatbot = &paper_workloads()[0];
    group.bench_function("single_execution_chatbot", |b| {
        b.iter(|| std::hint::black_box(sweep_grid(chatbot, &[1.0], &[512])));
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
