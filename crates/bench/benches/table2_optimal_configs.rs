//! Table II bench: repeated execution of a found configuration under runtime
//! jitter (the paper's 100-run averaging), measured per method on the
//! Chatbot workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aarc_bench::methods::{build_method, MethodName};
use aarc_bench::table2_optimal::evaluate_config;
use aarc_workloads::chatbot;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_optimal_configs");
    group.sample_size(10);

    let workload = chatbot();
    for method in MethodName::ALL {
        // Search once outside the timed section; the bench measures the
        // repeated evaluation of the found configuration.
        let outcome = build_method(method)
            .search(workload.env(), workload.slo_ms())
            .expect("search succeeds");
        group.bench_with_input(
            BenchmarkId::new("evaluate_20_runs", method.label()),
            &outcome.best_configs,
            |b, configs| {
                b.iter(|| {
                    std::hint::black_box(
                        evaluate_config(workload.env(), configs, workload.slo_ms(), 20)
                            .expect("evaluation succeeds"),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
