//! Batch-path bench: µs per simulation as a function of batch size through
//! the round-two scheduler. Three shapes per paper workload:
//!
//! * `evaluate_batch` — distinct candidates through the [`EvalService`]
//!   batch path (cache off), at batch sizes 1, 64 and 4096: the per-job
//!   overhead of chunking, dedup pre-pass and result merging over the raw
//!   kernel.
//! * `lockstep_chain` — the same candidates driven directly through a
//!   [`BatchSim`], where each result anchors the next: the incremental
//!   re-simulation fast path local search leans on.
//! * `event_loop_chain` — the identical chain through the event-loop
//!   reference, the pre-round-two cost of the same work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aarc_simulator::kernel::{BatchSim, CompiledScenario, SimScratch};
use aarc_simulator::{ConfigMap, EvalOptions, EvalService, ResourceConfig};
use aarc_workloads::paper_workloads;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BATCH_SIZES: [usize; 3] = [1, 64, 4096];

/// Deterministic suffix-edit candidate chain: each candidate re-tunes one
/// node of its predecessor, starting from the base configuration.
fn candidate_chain(env: &aarc_simulator::WorkflowEnvironment, len: usize) -> Vec<ConfigMap> {
    let space = *env.space();
    let n = env.workflow().len();
    let mut rng = StdRng::seed_from_u64(0xba7c);
    let mut configs: Vec<ResourceConfig> = env.base_configs().as_slice().to_vec();
    (0..len)
        .map(|_| {
            let node = rng.gen_range(0..n);
            let vcpu = space.snap_vcpu(rng.gen_range(space.min_vcpu..=space.max_vcpu));
            let mem = space.snap_memory(rng.gen_range(space.min_memory_mb..=space.max_memory_mb));
            configs[node] = ResourceConfig::new(vcpu, mem);
            ConfigMap::from_vec(configs.clone())
        })
        .collect()
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_simulation");
    group.sample_size(10);
    for workload in paper_workloads() {
        let env = workload.env().clone();
        let scenario = CompiledScenario::compile(
            env.workflow(),
            env.profiles(),
            *env.cluster(),
            *env.pricing(),
        )
        .expect("paper workloads compile");
        let chain = candidate_chain(&env, *BATCH_SIZES.last().unwrap());

        for &size in &BATCH_SIZES {
            let candidates = &chain[..size];

            group.bench_with_input(
                BenchmarkId::new(format!("evaluate_batch/{}", workload.name()), size),
                &candidates,
                |b, cands| {
                    let service = EvalService::new(EvalOptions {
                        threads: 1,
                        cache_capacity: 0,
                    });
                    let handle = service.register(env.clone());
                    b.iter(|| {
                        std::hint::black_box(handle.evaluate_batch(cands).expect("batch evaluates"))
                    });
                },
            );

            group.bench_with_input(
                BenchmarkId::new(format!("lockstep_chain/{}", workload.name()), size),
                &candidates,
                |b, cands| {
                    let mut scratch = SimScratch::new();
                    b.iter(|| {
                        let mut batch = BatchSim::new(&scenario, env.input());
                        for (i, configs) in cands.iter().enumerate() {
                            std::hint::black_box(
                                batch
                                    .simulate(&mut scratch, configs, i as u64)
                                    .expect("candidate simulates"),
                            );
                        }
                    });
                },
            );

            group.bench_with_input(
                BenchmarkId::new(format!("event_loop_chain/{}", workload.name()), size),
                &candidates,
                |b, cands| {
                    let mut scratch = SimScratch::new();
                    b.iter(|| {
                        for (i, configs) in cands.iter().enumerate() {
                            std::hint::black_box(
                                scenario
                                    .simulate_reference(
                                        &mut scratch,
                                        configs,
                                        env.input(),
                                        i as u64,
                                    )
                                    .expect("candidate simulates"),
                            );
                        }
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
