//! Fig. 3 bench: the Bayesian-optimization motivation experiment on the
//! Chatbot workflow (§II-B). A reduced round count keeps the bench tractable
//! while exercising the full GP fit / acquisition / sampling loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aarc_bench::fig3_bo_motivation::run;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_bo_motivation");
    group.sample_size(10);
    for rounds in [10usize, 25] {
        group.bench_with_input(BenchmarkId::new("bo_chatbot", rounds), &rounds, |b, &r| {
            b.iter(|| std::hint::black_box(run(r).expect("bo motivation run succeeds")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
