//! Data-layout bench: isolates the two round-three changes per paper
//! workload at batch sizes 64 and 4096.
//!
//! * `relaxation_aos` vs `relaxation_soa` — the same candidate chain
//!   through the event-loop reference (array-of-structs `NodeState` rows,
//!   simulated event queue) and through the exact relaxation over the
//!   structure-of-arrays column tables. The gap is the layout + algorithm
//!   win on the solo path; both mint one result slab per simulation, so
//!   allocation is held constant.
//! * `result_arc_per_sim` vs `result_slab_per_chunk` — the identical
//!   anchored relaxation chain driven per-call (one `Arc<[NodeSimOutcome]>`
//!   allocation per result) and through `simulate_chunk` (all results carve
//!   offsets into one refcounted slab per chunk). Relaxation work is
//!   bit-identical, so the gap is purely the allocator leaving the miss
//!   path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aarc_simulator::kernel::{BatchSim, CompiledScenario, SimScratch};
use aarc_simulator::{ConfigMap, ResourceConfig};
use aarc_workloads::paper_workloads;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BATCH_SIZES: [usize; 2] = [64, 4096];

/// Deterministic suffix-edit candidate chain, same construction as the
/// `batch` bench: each candidate re-tunes one node of its predecessor.
fn candidate_chain(env: &aarc_simulator::WorkflowEnvironment, len: usize) -> Vec<ConfigMap> {
    let space = *env.space();
    let n = env.workflow().len();
    let mut rng = StdRng::seed_from_u64(0x1a70);
    let mut configs: Vec<ResourceConfig> = env.base_configs().as_slice().to_vec();
    (0..len)
        .map(|_| {
            let node = rng.gen_range(0..n);
            let vcpu = space.snap_vcpu(rng.gen_range(space.min_vcpu..=space.max_vcpu));
            let mem = space.snap_memory(rng.gen_range(space.min_memory_mb..=space.max_memory_mb));
            configs[node] = ResourceConfig::new(vcpu, mem);
            ConfigMap::from_vec(configs.clone())
        })
        .collect()
}

fn bench_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout");
    group.sample_size(10);
    for workload in paper_workloads() {
        let env = workload.env().clone();
        let scenario = CompiledScenario::compile(
            env.workflow(),
            env.profiles(),
            *env.cluster(),
            *env.pricing(),
        )
        .expect("paper workloads compile");
        let chain = candidate_chain(&env, *BATCH_SIZES.last().unwrap());

        for &size in &BATCH_SIZES {
            let candidates = &chain[..size];

            group.bench_with_input(
                BenchmarkId::new(format!("relaxation_aos/{}", workload.name()), size),
                &candidates,
                |b, cands| {
                    let mut scratch = SimScratch::new();
                    b.iter(|| {
                        for (i, configs) in cands.iter().enumerate() {
                            std::hint::black_box(
                                scenario
                                    .simulate_reference(
                                        &mut scratch,
                                        configs,
                                        env.input(),
                                        i as u64,
                                    )
                                    .expect("candidate simulates"),
                            );
                        }
                    });
                },
            );

            group.bench_with_input(
                BenchmarkId::new(format!("relaxation_soa/{}", workload.name()), size),
                &candidates,
                |b, cands| {
                    let mut scratch = SimScratch::new();
                    b.iter(|| {
                        for (i, configs) in cands.iter().enumerate() {
                            std::hint::black_box(
                                scenario
                                    .simulate(&mut scratch, configs, env.input(), i as u64)
                                    .expect("candidate simulates"),
                            );
                        }
                    });
                },
            );

            group.bench_with_input(
                BenchmarkId::new(format!("result_arc_per_sim/{}", workload.name()), size),
                &candidates,
                |b, cands| {
                    let mut scratch = SimScratch::new();
                    b.iter(|| {
                        let mut batch = BatchSim::new(&scenario, env.input());
                        for (i, configs) in cands.iter().enumerate() {
                            std::hint::black_box(
                                batch
                                    .simulate(&mut scratch, configs, i as u64)
                                    .expect("candidate simulates"),
                            );
                        }
                    });
                },
            );

            group.bench_with_input(
                BenchmarkId::new(format!("result_slab_per_chunk/{}", workload.name()), size),
                &candidates,
                |b, cands| {
                    let mut scratch = SimScratch::new();
                    let jobs: Vec<(&ConfigMap, u64)> = cands
                        .iter()
                        .enumerate()
                        .map(|(i, c)| (c, i as u64))
                        .collect();
                    b.iter(|| {
                        let mut batch = BatchSim::new(&scenario, env.input());
                        std::hint::black_box(batch.simulate_chunk(&mut scratch, &jobs));
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_layout);
criterion_main!(benches);
