//! Synthetic models of the serverless workflows evaluated in the AARC paper.
//!
//! The paper evaluates three applications taken from the Orion benchmark
//! suite (Fig. 1):
//!
//! * **Chatbot** — processes user input, trains intent classifiers in
//!   parallel and stores them; a *scatter* workflow whose functions are
//!   mostly serial and light on memory (cost optimum ≈ 1 vCPU / 512 MB).
//! * **ML Pipeline** — dimensionality reduction, hyper-parameter tuning and
//!   model testing; a *broadcast* workflow that is strongly CPU-bound and
//!   light on memory (cost optimum ≈ 4 vCPU / 512 MB).
//! * **Video Analysis** — splits a video, extracts key frames and classifies
//!   them; a *scatter* workflow that is both CPU- and memory-hungry and
//!   input-sensitive (cost optimum ≈ 8 vCPU / 5120 MB).
//!
//! We do not have the original application code or its container images, so
//! each workload is a synthetic model: the same DAG topology and
//! communication pattern as the paper's Fig. 1, with per-function
//! performance profiles calibrated so that the qualitative resource
//! affinities above — and therefore the paper's headline comparisons — are
//! reproduced (see DESIGN.md §2 for the substitution rationale).
//!
//! # Example
//!
//! ```
//! use aarc_workloads::Workload;
//!
//! let chatbot = aarc_workloads::chatbot();
//! assert_eq!(chatbot.name(), "chatbot");
//! assert_eq!(chatbot.slo_ms(), 120_000.0);
//! let report = chatbot
//!     .env()
//!     .execute(&chatbot.env().base_configs())
//!     .expect("base configuration always executes");
//! assert!(report.meets_slo(chatbot.slo_ms()));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chatbot;
pub mod generator;
pub mod inputs;
pub mod ml_pipeline;
pub mod video_analysis;
mod workload;

pub use chatbot::chatbot;
pub use generator::{RandomWorkloadConfig, RandomWorkloadGenerator};
pub use inputs::video_input;
pub use ml_pipeline::ml_pipeline;
pub use video_analysis::video_analysis;
pub use workload::Workload;

/// All three paper workloads, in the order used by the evaluation figures.
pub fn paper_workloads() -> Vec<Workload> {
    vec![chatbot(), ml_pipeline(), video_analysis()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workloads_are_three_and_named() {
        let all = paper_workloads();
        let names: Vec<&str> = all.iter().map(Workload::name).collect();
        assert_eq!(names, vec!["chatbot", "ml-pipeline", "video-analysis"]);
    }

    #[test]
    fn all_paper_workloads_meet_their_slo_at_base_config() {
        for wl in paper_workloads() {
            let report = wl.env().execute(&wl.env().base_configs()).unwrap();
            assert!(
                report.meets_slo(wl.slo_ms()),
                "{} base config violates SLO: {} > {}",
                wl.name(),
                report.makespan_ms(),
                wl.slo_ms()
            );
        }
    }
}
