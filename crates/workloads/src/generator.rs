//! Random workload generation.
//!
//! Property tests and ablation benches need workflows beyond the paper's
//! three applications. The generator produces random layered DAGs with
//! random (but well-formed) performance profiles, drawn deterministically
//! from a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use aarc_simulator::{FunctionProfile, ProfileSet, WorkflowEnvironment};
use aarc_workflow::{CommunicationKind, WorkflowBuilder};

use crate::workload::Workload;

/// Parameters of the random workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWorkloadConfig {
    /// Number of DAG layers (≥ 1).
    pub layers: usize,
    /// Maximum functions per layer (≥ 1); the actual width of each layer is
    /// drawn uniformly from `1..=max_width`.
    pub max_width: usize,
    /// Probability of adding an edge between functions in consecutive
    /// layers beyond the spanning connection.
    pub edge_probability: f64,
    /// Upper bound on a function's total compute at one core, in ms.
    pub max_compute_ms: f64,
    /// Upper bound on a function's working set, in MB.
    pub max_working_set_mb: f64,
    /// SLO headroom over the base-configuration makespan (e.g. `1.5` sets
    /// the SLO to 150 % of the profiled makespan).
    pub slo_headroom: f64,
}

impl Default for RandomWorkloadConfig {
    fn default() -> Self {
        RandomWorkloadConfig {
            layers: 4,
            max_width: 3,
            edge_probability: 0.3,
            max_compute_ms: 60_000.0,
            max_working_set_mb: 4_096.0,
            slo_headroom: 1.5,
        }
    }
}

/// Deterministic random workload generator.
#[derive(Debug)]
pub struct RandomWorkloadGenerator {
    config: RandomWorkloadConfig,
    rng: StdRng,
    counter: usize,
}

impl RandomWorkloadGenerator {
    /// Creates a generator with the given configuration and seed.
    pub fn new(config: RandomWorkloadConfig, seed: u64) -> Self {
        RandomWorkloadGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
            counter: 0,
        }
    }

    /// Generates the next random workload.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero layers or zero width (a usage
    /// error of this test utility).
    pub fn generate(&mut self) -> Workload {
        assert!(self.config.layers > 0 && self.config.max_width > 0);
        self.counter += 1;
        let name = format!("random-{}", self.counter);
        let mut b = WorkflowBuilder::new(&name);
        let mut profiles_todo = Vec::new();

        // Build layered topology.
        let mut prev_layer = Vec::new();
        for l in 0..self.config.layers {
            let width = self.rng.gen_range(1..=self.config.max_width);
            let mut layer = Vec::with_capacity(width);
            for w in 0..width {
                let fname = format!("{name}_l{l}_f{w}");
                let id = b.add_function(&fname);
                profiles_todo.push((id, fname));
                layer.push(id);
            }
            if !prev_layer.is_empty() {
                // Guarantee connectivity: each node gets at least one parent.
                for (i, &child) in layer.iter().enumerate() {
                    let parent = prev_layer[i % prev_layer.len()];
                    b.add_edge_with(parent, child, 4.0, CommunicationKind::Direct)
                        .expect("layered edges cannot form cycles");
                }
                // Extra random edges.
                for &parent in &prev_layer {
                    for &child in &layer {
                        if self.rng.gen::<f64>() < self.config.edge_probability {
                            // Ignore duplicates.
                            let _ = b.add_edge_with(parent, child, 4.0, CommunicationKind::Direct);
                        }
                    }
                }
            }
            prev_layer = layer;
        }
        let workflow = b.build().expect("generated workflow is structurally valid");

        // Random but well-formed profiles.
        let mut profiles = ProfileSet::new();
        for (id, fname) in profiles_todo {
            let compute = self.rng.gen_range(1_000.0..self.config.max_compute_ms);
            let parallel_share = self.rng.gen_range(0.0..1.0);
            let working_set = self.rng.gen_range(128.0..self.config.max_working_set_mb);
            let profile = FunctionProfile::builder(&fname)
                .serial_ms(compute * (1.0 - parallel_share))
                .parallel_ms(compute * parallel_share)
                .max_parallelism(self.rng.gen_range(1.0..8.0))
                .io_ms(self.rng.gen_range(0.0..2_000.0))
                .working_set_mb(working_set)
                .mem_floor_mb(working_set * self.rng.gen_range(0.3..0.7))
                .mem_penalty_factor(self.rng.gen_range(2.0..6.0))
                .build();
            profiles.insert(id, profile);
        }

        let env = WorkflowEnvironment::builder(workflow, profiles)
            .seed(self.rng.gen())
            .build()
            .expect("generated environment is valid");
        let base_makespan = env
            .execute(&env.base_configs())
            .expect("base configuration always executes")
            .makespan_ms();
        let slo = base_makespan * self.config.slo_headroom;
        Workload::new(name, env, slo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_for_a_seed() {
        let mut g1 = RandomWorkloadGenerator::new(RandomWorkloadConfig::default(), 7);
        let mut g2 = RandomWorkloadGenerator::new(RandomWorkloadConfig::default(), 7);
        let w1 = g1.generate();
        let w2 = g2.generate();
        assert_eq!(w1.len(), w2.len());
        assert_eq!(w1.slo_ms(), w2.slo_ms());
    }

    #[test]
    fn different_seeds_give_different_workloads() {
        let mut g1 = RandomWorkloadGenerator::new(RandomWorkloadConfig::default(), 1);
        let mut g2 = RandomWorkloadGenerator::new(RandomWorkloadConfig::default(), 2);
        let w1 = g1.generate();
        let w2 = g2.generate();
        // Either structure or SLO differs with overwhelming probability.
        assert!(w1.len() != w2.len() || (w1.slo_ms() - w2.slo_ms()).abs() > 1e-9);
    }

    #[test]
    fn generated_workloads_meet_their_own_slo_at_base_config() {
        let mut gen = RandomWorkloadGenerator::new(RandomWorkloadConfig::default(), 42);
        for _ in 0..5 {
            let wl = gen.generate();
            let report = wl.env().execute(&wl.env().base_configs()).unwrap();
            assert!(report.meets_slo(wl.slo_ms()));
            assert!(wl.len() >= wl.env().workflow().entries().len());
        }
    }

    #[test]
    fn generator_counts_workloads() {
        let mut gen = RandomWorkloadGenerator::new(RandomWorkloadConfig::default(), 3);
        let a = gen.generate();
        let b = gen.generate();
        assert_ne!(a.name(), b.name());
    }
}
