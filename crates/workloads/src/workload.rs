//! The [`Workload`] wrapper: a ready-to-search workflow environment with its
//! SLO and (optionally) input classes.

use std::collections::BTreeMap;

use aarc_simulator::{InputClass, InputSpec, WorkflowEnvironment};

/// A benchmark workload: an executable workflow environment plus the
/// end-to-end latency SLO the paper assigns to it and, for input-sensitive
/// workloads, representative inputs per size class.
#[derive(Debug, Clone)]
pub struct Workload {
    name: String,
    env: WorkflowEnvironment,
    slo_ms: f64,
    input_classes: BTreeMap<InputClass, InputSpec>,
}

impl Workload {
    /// Creates a workload.
    pub fn new(name: impl Into<String>, env: WorkflowEnvironment, slo_ms: f64) -> Self {
        Workload {
            name: name.into(),
            env,
            slo_ms,
            input_classes: BTreeMap::new(),
        }
    }

    /// Adds a representative input for one size class (builder-style).
    pub fn with_input_class(mut self, class: InputClass, input: InputSpec) -> Self {
        self.input_classes.insert(class, input);
        self
    }

    /// Workload name (matches the paper's figure labels).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The executable environment (workflow, profiles, pricing, cluster).
    pub fn env(&self) -> &WorkflowEnvironment {
        &self.env
    }

    /// End-to-end latency SLO in milliseconds.
    pub fn slo_ms(&self) -> f64 {
        self.slo_ms
    }

    /// Representative inputs per size class (empty for input-insensitive
    /// workloads).
    pub fn input_classes(&self) -> &BTreeMap<InputClass, InputSpec> {
        &self.input_classes
    }

    /// Whether the workload declares per-class inputs (i.e. is
    /// input-sensitive in the sense of §IV-D).
    pub fn is_input_sensitive(&self) -> bool {
        !self.input_classes.is_empty()
    }

    /// Number of functions in the workflow.
    pub fn len(&self) -> usize {
        self.env.workflow().len()
    }

    /// Returns `true` if the workflow has no functions (never the case for
    /// the built-in workloads).
    pub fn is_empty(&self) -> bool {
        self.env.workflow().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarc_simulator::{FunctionProfile, ProfileSet};
    use aarc_workflow::WorkflowBuilder;

    fn tiny_env() -> WorkflowEnvironment {
        let mut b = WorkflowBuilder::new("tiny");
        let a = b.add_function("only");
        let wf = b.build().unwrap();
        let mut p = ProfileSet::new();
        p.insert(a, FunctionProfile::builder("only").serial_ms(10.0).build());
        WorkflowEnvironment::builder(wf, p).build().unwrap()
    }

    #[test]
    fn workload_accessors() {
        let wl = Workload::new("tiny", tiny_env(), 1_000.0)
            .with_input_class(InputClass::Light, InputSpec::new(0.5, 1.0));
        assert_eq!(wl.name(), "tiny");
        assert_eq!(wl.slo_ms(), 1_000.0);
        assert_eq!(wl.len(), 1);
        assert!(!wl.is_empty());
        assert!(wl.is_input_sensitive());
        assert_eq!(wl.input_classes().len(), 1);
    }

    #[test]
    fn workload_without_classes_is_input_insensitive() {
        let wl = Workload::new("tiny", tiny_env(), 1_000.0);
        assert!(!wl.is_input_sensitive());
    }
}
