//! The Video Analysis workflow (paper Fig. 1c).
//!
//! The application splits an input video into chunks, extracts key frames
//! from each chunk and classifies them. It is the paper's resource-hungry,
//! *input-sensitive* workload: both compute and working set grow with the
//! video size, and the cost optimum at nominal input sits near
//! **8 vCPU / 5120 MB** (Fig. 2c). The input-aware engine of §IV-D is
//! evaluated on this workload with light / middle / heavy inputs.

use aarc_simulator::{FunctionProfile, InputClass, ProfileSet, WorkflowEnvironment};
use aarc_workflow::{CommunicationKind, ResourceAffinity, WorkflowBuilder};

use crate::inputs::video_input;
use crate::workload::Workload;

/// End-to-end SLO the paper assigns to the Video Analysis workflow (600 s).
pub const VIDEO_ANALYSIS_SLO_MS: f64 = 600_000.0;

/// Builds the Video Analysis workload.
///
/// # Panics
///
/// Never panics for the fixed topology defined here.
pub fn video_analysis() -> Workload {
    let mut b = WorkflowBuilder::new("video-analysis");
    let start = b.add_function_with_affinity("start", ResourceAffinity::IoBound);
    let split = b.add_function_with_affinity("split", ResourceAffinity::Balanced);
    let extract = b.add_function_with_affinity("extract", ResourceAffinity::MemoryBound);
    let classify = b.add_function_with_affinity("classify", ResourceAffinity::Balanced);
    let end = b.add_function_with_affinity("end", ResourceAffinity::IoBound);

    b.add_edge_with(start, split, 128.0, CommunicationKind::Direct)
        .expect("static edge");
    b.add_edge_with(split, extract, 256.0, CommunicationKind::Scatter)
        .expect("static edge");
    b.add_edge_with(extract, classify, 64.0, CommunicationKind::Direct)
        .expect("static edge");
    b.add_edge_with(classify, end, 4.0, CommunicationKind::Direct)
        .expect("static edge");
    let workflow = b
        .build()
        .expect("video analysis workflow is statically valid");

    let mut profiles = ProfileSet::new();
    profiles.insert(
        start,
        FunctionProfile::builder("start")
            .serial_ms(2_000.0)
            .io_ms(1_000.0)
            .working_set_mb(256.0)
            .mem_floor_mb(128.0)
            .input_sensitivity(0.3)
            .build(),
    );
    profiles.insert(
        split,
        FunctionProfile::builder("split")
            .serial_ms(6_000.0)
            .parallel_ms(60_000.0)
            .max_parallelism(6.0)
            .io_ms(3_000.0)
            .working_set_mb(2_048.0)
            .mem_floor_mb(1_024.0)
            .mem_penalty_factor(4.0)
            .input_sensitivity(1.0)
            .mem_input_sensitivity(0.7)
            .build(),
    );
    profiles.insert(
        extract,
        FunctionProfile::builder("extract")
            .serial_ms(10_000.0)
            .parallel_ms(640_000.0)
            .max_parallelism(12.0)
            .io_ms(4_000.0)
            .working_set_mb(5_120.0)
            .mem_floor_mb(2_560.0)
            .mem_penalty_factor(5.0)
            .input_sensitivity(1.0)
            .mem_input_sensitivity(0.7)
            .build(),
    );
    profiles.insert(
        classify,
        FunctionProfile::builder("classify")
            .serial_ms(10_000.0)
            .parallel_ms(440_000.0)
            .max_parallelism(10.0)
            .io_ms(3_000.0)
            .working_set_mb(4_608.0)
            .mem_floor_mb(2_048.0)
            .mem_penalty_factor(4.0)
            .input_sensitivity(1.0)
            .mem_input_sensitivity(0.6)
            .build(),
    );
    profiles.insert(
        end,
        FunctionProfile::builder("end")
            .serial_ms(2_000.0)
            .io_ms(1_000.0)
            .working_set_mb(256.0)
            .mem_floor_mb(128.0)
            .input_sensitivity(0.2)
            .build(),
    );

    let env = WorkflowEnvironment::builder(workflow, profiles)
        .seed(31)
        .build()
        .expect("video analysis environment is statically valid");
    Workload::new("video-analysis", env, VIDEO_ANALYSIS_SLO_MS)
        .with_input_class(InputClass::Light, video_input(InputClass::Light))
        .with_input_class(InputClass::Middle, video_input(InputClass::Middle))
        .with_input_class(InputClass::Heavy, video_input(InputClass::Heavy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarc_simulator::{ConfigMap, InputSpec, ResourceConfig};

    #[test]
    fn topology_matches_fig_1c() {
        let wl = video_analysis();
        let wf = wl.env().workflow();
        assert_eq!(wf.len(), 5);
        assert_eq!(wf.entries().len(), 1);
        assert_eq!(wf.exits().len(), 1);
        assert!(wl.is_input_sensitive());
        assert_eq!(wl.input_classes().len(), 3);
    }

    #[test]
    fn workflow_needs_both_cpu_and_memory() {
        let wl = video_analysis();
        let balanced = ConfigMap::uniform(wl.len(), ResourceConfig::new(8.0, 5_120));
        let low_mem = ConfigMap::uniform(wl.len(), ResourceConfig::new(8.0, 3_072));
        let low_cpu = ConfigMap::uniform(wl.len(), ResourceConfig::new(2.0, 5_120));
        let rb = wl.env().execute(&balanced).unwrap().makespan_ms();
        let rm = wl.env().execute(&low_mem).unwrap().makespan_ms();
        let rc = wl.env().execute(&low_cpu).unwrap().makespan_ms();
        assert!(rm > 1.2 * rb, "memory pressure must slow the workflow down");
        assert!(rc > 1.8 * rb, "losing cores must slow the workflow down");
    }

    #[test]
    fn paper_optimum_meets_the_slo() {
        let wl = video_analysis();
        let cfg = ConfigMap::uniform(wl.len(), ResourceConfig::new(8.0, 5_120));
        let report = wl.env().execute(&cfg).unwrap();
        assert!(report.meets_slo(wl.slo_ms()));
    }

    #[test]
    fn heavy_inputs_increase_runtime_and_memory_demand() {
        let wl = video_analysis();
        let cfg = ConfigMap::uniform(wl.len(), ResourceConfig::new(8.0, 5_120));
        let light = wl
            .env()
            .execute_with_input(&cfg, video_input(InputClass::Light))
            .unwrap();
        let heavy = wl
            .env()
            .execute_with_input(&cfg, video_input(InputClass::Heavy))
            .unwrap();
        assert!(heavy.makespan_ms() > 2.0 * light.makespan_ms());

        // A configuration sized for light inputs OOMs on heavy ones.
        let small = ConfigMap::uniform(wl.len(), ResourceConfig::new(8.0, 3_072));
        let small_on_heavy = wl
            .env()
            .execute_with_input(&small, video_input(InputClass::Heavy))
            .unwrap();
        assert!(small_on_heavy.any_oom() || small_on_heavy.makespan_ms() > heavy.makespan_ms());
    }

    #[test]
    fn coupled_allocation_is_wasteful_for_video() {
        // To obtain 8 cores a coupled platform (1 core / 1024 MB) must buy
        // 8 GB of memory; the decoupled optimum at 5 GB is cheaper.
        let wl = video_analysis();
        let decoupled = ConfigMap::uniform(wl.len(), ResourceConfig::new(8.0, 5_120));
        let coupled = ConfigMap::uniform(wl.len(), ResourceConfig::coupled(8_192, 1024.0));
        let rd = wl.env().execute(&decoupled).unwrap();
        let rc = wl.env().execute(&coupled).unwrap();
        assert!(rd.total_cost() < rc.total_cost());
    }

    #[test]
    fn nominal_input_is_middle_class() {
        assert_eq!(
            InputSpec::nominal().classify(),
            aarc_simulator::InputClass::Middle
        );
    }
}
