//! Representative inputs for the input-sensitive Video Analysis workload
//! (§IV-D: light / middle / heavy videos).

use aarc_simulator::{InputClass, InputSpec};

/// Returns the representative input the paper's §IV-D experiment uses for a
/// given video size class.
///
/// * light  — a short, low-bitrate clip (≈ 40 % of the nominal work),
/// * middle — the nominal profiling input,
/// * heavy  — a long, high-bitrate video (≈ 2.2× the nominal work).
pub fn video_input(class: InputClass) -> InputSpec {
    match class {
        InputClass::Light => InputSpec::new(0.4, 48.0),
        InputClass::Middle => InputSpec::new(1.0, 128.0),
        InputClass::Heavy => InputSpec::new(2.2, 512.0),
    }
}

/// A deterministic request mix over the three input classes, cycling
/// light → middle → heavy, as used by the Fig. 8 experiment (the paper sends
/// requests "with light, middle, and heavy inputs in sequence").
pub fn request_sequence(total: usize) -> Vec<(InputClass, InputSpec)> {
    (0..total)
        .map(|i| {
            let class = InputClass::ALL[i % InputClass::ALL.len()];
            (class, video_input(class))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_map_to_increasing_scales() {
        let light = video_input(InputClass::Light);
        let middle = video_input(InputClass::Middle);
        let heavy = video_input(InputClass::Heavy);
        assert!(light.scale < middle.scale && middle.scale < heavy.scale);
        assert!(light.payload_mb < heavy.payload_mb);
        // Self-consistent with the simulator's classifier.
        assert_eq!(light.classify(), InputClass::Light);
        assert_eq!(middle.classify(), InputClass::Middle);
        assert_eq!(heavy.classify(), InputClass::Heavy);
    }

    #[test]
    fn request_sequence_cycles_through_classes() {
        let seq = request_sequence(7);
        assert_eq!(seq.len(), 7);
        assert_eq!(seq[0].0, InputClass::Light);
        assert_eq!(seq[1].0, InputClass::Middle);
        assert_eq!(seq[2].0, InputClass::Heavy);
        assert_eq!(seq[3].0, InputClass::Light);
        assert_eq!(seq[6].0, InputClass::Light);
    }

    #[test]
    fn empty_sequence_is_allowed() {
        assert!(request_sequence(0).is_empty());
    }
}
