//! The Chatbot workflow (paper Fig. 1a).
//!
//! The application processes a user utterance, splits the training corpus,
//! trains two intent classifiers in parallel against remote storage and
//! aggregates them for real-time intent detection. Its functions are almost
//! entirely serial and need little memory, which is why the paper finds its
//! cost optimum at roughly **1 vCPU / 512 MB** (Fig. 2a) — a memory-centric
//! platform would grossly over-provision memory to obtain one core.

use aarc_simulator::{FunctionProfile, ProfileSet, WorkflowEnvironment};
use aarc_workflow::{CommunicationKind, ResourceAffinity, WorkflowBuilder};

use crate::workload::Workload;

/// End-to-end SLO the paper assigns to the Chatbot workflow (120 s).
pub const CHATBOT_SLO_MS: f64 = 120_000.0;

/// Builds the Chatbot workload.
///
/// # Panics
///
/// Never panics for the fixed topology defined here; the `expect`s guard
/// against programming errors while constructing the static DAG.
pub fn chatbot() -> Workload {
    let mut b = WorkflowBuilder::new("chatbot");
    let start = b.add_function_with_affinity("start", ResourceAffinity::IoBound);
    let split = b.add_function_with_affinity("split", ResourceAffinity::CpuBound);
    let classify_intent =
        b.add_function_with_affinity("classify_intent", ResourceAffinity::CpuBound);
    let classify_entity =
        b.add_function_with_affinity("classify_entity", ResourceAffinity::CpuBound);
    let aggregate = b.add_function_with_affinity("aggregate", ResourceAffinity::Balanced);
    let end = b.add_function_with_affinity("end", ResourceAffinity::IoBound);

    b.add_edge_with(start, split, 4.0, CommunicationKind::Direct)
        .expect("static edge");
    b.add_edge_with(split, classify_intent, 16.0, CommunicationKind::Scatter)
        .expect("static edge");
    b.add_edge_with(split, classify_entity, 16.0, CommunicationKind::Scatter)
        .expect("static edge");
    b.add_edge_with(classify_intent, aggregate, 8.0, CommunicationKind::Gather)
        .expect("static edge");
    b.add_edge_with(classify_entity, aggregate, 8.0, CommunicationKind::Gather)
        .expect("static edge");
    b.add_edge_with(aggregate, end, 2.0, CommunicationKind::Direct)
        .expect("static edge");
    let workflow = b.build().expect("chatbot workflow is statically valid");

    let mut profiles = ProfileSet::new();
    profiles.insert(
        start,
        FunctionProfile::builder("start")
            .serial_ms(1_500.0)
            .io_ms(500.0)
            .working_set_mb(192.0)
            .mem_floor_mb(128.0)
            .input_sensitivity(0.2)
            .build(),
    );
    profiles.insert(
        split,
        FunctionProfile::builder("split")
            .serial_ms(15_000.0)
            .parallel_ms(3_000.0)
            .max_parallelism(2.0)
            .io_ms(1_000.0)
            .working_set_mb(384.0)
            .mem_floor_mb(192.0)
            .build(),
    );
    profiles.insert(
        classify_intent,
        FunctionProfile::builder("classify_intent")
            .serial_ms(32_000.0)
            .parallel_ms(24_000.0)
            .max_parallelism(2.0)
            .io_ms(2_000.0)
            .working_set_mb(448.0)
            .mem_floor_mb(256.0)
            .mem_penalty_factor(3.0)
            .build(),
    );
    profiles.insert(
        classify_entity,
        FunctionProfile::builder("classify_entity")
            .serial_ms(20_000.0)
            .parallel_ms(14_000.0)
            .max_parallelism(2.0)
            .io_ms(1_500.0)
            .working_set_mb(448.0)
            .mem_floor_mb(256.0)
            .mem_penalty_factor(3.0)
            .build(),
    );
    profiles.insert(
        aggregate,
        FunctionProfile::builder("aggregate")
            .serial_ms(18_000.0)
            .parallel_ms(4_000.0)
            .max_parallelism(2.0)
            .io_ms(1_000.0)
            .working_set_mb(320.0)
            .mem_floor_mb(192.0)
            .build(),
    );
    profiles.insert(
        end,
        FunctionProfile::builder("end")
            .serial_ms(1_000.0)
            .io_ms(500.0)
            .working_set_mb(128.0)
            .mem_floor_mb(64.0)
            .input_sensitivity(0.2)
            .build(),
    );

    let env = WorkflowEnvironment::builder(workflow, profiles)
        .seed(17)
        .build()
        .expect("chatbot environment is statically valid");
    Workload::new("chatbot", env, CHATBOT_SLO_MS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarc_simulator::{ConfigMap, ResourceConfig};
    use aarc_workflow::critical_path::critical_path;
    use aarc_workflow::subpath::decompose;

    #[test]
    fn topology_matches_fig_1a() {
        let wl = chatbot();
        let wf = wl.env().workflow();
        assert_eq!(wf.len(), 6);
        let split = wf.find("split").unwrap();
        assert_eq!(
            wf.dag().successors(split).len(),
            2,
            "two parallel classifiers"
        );
        assert_eq!(wf.entries().len(), 1);
        assert_eq!(wf.exits().len(), 1);
    }

    #[test]
    fn critical_path_goes_through_the_heavier_classifier() {
        let wl = chatbot();
        let env = wl.env();
        let weights = aarc_simulator::profile_workflow(env, &env.base_configs()).unwrap();
        let cp = critical_path(env.workflow().dag(), weights.weight_fn());
        assert!(cp.contains(env.workflow().find("classify_intent").unwrap()));
        assert!(!cp.contains(env.workflow().find("classify_entity").unwrap()));
        let decomp = decompose(env.workflow().dag(), weights.weight_fn());
        assert_eq!(decomp.subpaths.len(), 1);
    }

    #[test]
    fn paper_optimum_runs_close_to_but_under_the_slo() {
        let wl = chatbot();
        let cfg = ConfigMap::uniform(wl.len(), ResourceConfig::new(1.0, 512));
        let report = wl.env().execute(&cfg).unwrap();
        assert!(report.meets_slo(wl.slo_ms()));
        assert!(
            report.makespan_ms() > 0.6 * wl.slo_ms(),
            "the 1 vCPU / 512 MB optimum should use most of the SLO budget (got {} ms)",
            report.makespan_ms()
        );
    }

    #[test]
    fn chatbot_is_cpu_light_memory_light() {
        // Runtime barely changes when memory grows beyond 512 MB (flat rows
        // of Fig. 2a) and adding many cores brings little benefit.
        let wl = chatbot();
        let small = ConfigMap::uniform(wl.len(), ResourceConfig::new(1.0, 512));
        let big_mem = ConfigMap::uniform(wl.len(), ResourceConfig::new(1.0, 4096));
        let big_cpu = ConfigMap::uniform(wl.len(), ResourceConfig::new(8.0, 512));
        let r_small = wl.env().execute(&small).unwrap().makespan_ms();
        let r_big_mem = wl.env().execute(&big_mem).unwrap().makespan_ms();
        let r_big_cpu = wl.env().execute(&big_cpu).unwrap().makespan_ms();
        assert!((r_small - r_big_mem).abs() / r_small < 0.01);
        assert!(
            r_big_cpu > 0.6 * r_small,
            "8 cores must not even halve the runtime"
        );
    }

    #[test]
    fn undersized_memory_ooms() {
        let wl = chatbot();
        let cfg = ConfigMap::uniform(wl.len(), ResourceConfig::new(1.0, 128));
        let report = wl.env().execute(&cfg).unwrap();
        assert!(report.any_oom());
    }
}
