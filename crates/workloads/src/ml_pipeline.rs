//! The ML Pipeline workflow (paper Fig. 1b).
//!
//! The application broadcasts the dataset to a training branch (PCA followed
//! by hyper-parameter tuning) and a testing branch (PCA), then combines the
//! models and evaluates them. It is the paper's CPU-affine workload: runtime
//! scales strongly with vCPU while the working sets stay small, so its cost
//! optimum sits near **4 vCPU / 512 MB** — which is also the paper's
//! motivating example for decoupling (87.5 % memory reduction against the
//! coupled allocation that would be needed to obtain 4 cores).

use aarc_simulator::{FunctionProfile, ProfileSet, WorkflowEnvironment};
use aarc_workflow::{CommunicationKind, ResourceAffinity, WorkflowBuilder};

use crate::workload::Workload;

/// End-to-end SLO the paper assigns to the ML Pipeline workflow (120 s).
pub const ML_PIPELINE_SLO_MS: f64 = 120_000.0;

/// Builds the ML Pipeline workload.
///
/// # Panics
///
/// Never panics for the fixed topology defined here.
pub fn ml_pipeline() -> Workload {
    let mut b = WorkflowBuilder::new("ml-pipeline");
    let start = b.add_function_with_affinity("start", ResourceAffinity::IoBound);
    let train_pca = b.add_function_with_affinity("train_pca", ResourceAffinity::CpuBound);
    let param_tune = b.add_function_with_affinity("param_tune", ResourceAffinity::CpuBound);
    let test_pca = b.add_function_with_affinity("test_pca", ResourceAffinity::CpuBound);
    let combine =
        b.add_function_with_affinity("combine_models_and_test", ResourceAffinity::CpuBound);
    let end = b.add_function_with_affinity("end", ResourceAffinity::IoBound);

    b.add_edge_with(start, train_pca, 32.0, CommunicationKind::Broadcast)
        .expect("static edge");
    b.add_edge_with(start, test_pca, 32.0, CommunicationKind::Broadcast)
        .expect("static edge");
    b.add_edge_with(train_pca, param_tune, 24.0, CommunicationKind::Direct)
        .expect("static edge");
    b.add_edge_with(param_tune, combine, 8.0, CommunicationKind::Gather)
        .expect("static edge");
    b.add_edge_with(test_pca, combine, 8.0, CommunicationKind::Gather)
        .expect("static edge");
    b.add_edge_with(combine, end, 2.0, CommunicationKind::Direct)
        .expect("static edge");
    let workflow = b.build().expect("ml pipeline workflow is statically valid");

    let mut profiles = ProfileSet::new();
    profiles.insert(
        start,
        FunctionProfile::builder("start")
            .serial_ms(1_000.0)
            .io_ms(500.0)
            .working_set_mb(192.0)
            .mem_floor_mb(128.0)
            .input_sensitivity(0.2)
            .build(),
    );
    profiles.insert(
        train_pca,
        FunctionProfile::builder("train_pca")
            .serial_ms(5_000.0)
            .parallel_ms(40_000.0)
            .max_parallelism(6.0)
            .io_ms(1_000.0)
            .working_set_mb(512.0)
            .mem_floor_mb(256.0)
            .build(),
    );
    profiles.insert(
        param_tune,
        FunctionProfile::builder("param_tune")
            .serial_ms(10_000.0)
            .parallel_ms(120_000.0)
            .max_parallelism(8.0)
            .io_ms(1_000.0)
            .working_set_mb(512.0)
            .mem_floor_mb(256.0)
            .build(),
    );
    profiles.insert(
        test_pca,
        FunctionProfile::builder("test_pca")
            .serial_ms(3_000.0)
            .parallel_ms(20_000.0)
            .max_parallelism(4.0)
            .io_ms(800.0)
            .working_set_mb(448.0)
            .mem_floor_mb(256.0)
            .build(),
    );
    profiles.insert(
        combine,
        FunctionProfile::builder("combine_models_and_test")
            .serial_ms(8_000.0)
            .parallel_ms(16_000.0)
            .max_parallelism(4.0)
            .io_ms(1_000.0)
            .working_set_mb(512.0)
            .mem_floor_mb(256.0)
            .build(),
    );
    profiles.insert(
        end,
        FunctionProfile::builder("end")
            .serial_ms(1_000.0)
            .io_ms(500.0)
            .working_set_mb(128.0)
            .mem_floor_mb(64.0)
            .input_sensitivity(0.2)
            .build(),
    );

    let env = WorkflowEnvironment::builder(workflow, profiles)
        .seed(23)
        .build()
        .expect("ml pipeline environment is statically valid");
    Workload::new("ml-pipeline", env, ML_PIPELINE_SLO_MS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aarc_simulator::{ConfigMap, ResourceConfig};
    use aarc_workflow::critical_path::critical_path;

    #[test]
    fn topology_matches_fig_1b() {
        let wl = ml_pipeline();
        let wf = wl.env().workflow();
        assert_eq!(wf.len(), 6);
        let start = wf.find("start").unwrap();
        let combine = wf.find("combine_models_and_test").unwrap();
        assert_eq!(
            wf.dag().successors(start).len(),
            2,
            "broadcast to two branches"
        );
        assert_eq!(
            wf.dag().predecessors(combine).len(),
            2,
            "both branches rejoin"
        );
    }

    #[test]
    fn workflow_is_cpu_affine() {
        // More cores keep shrinking runtime up to ~6-8, while memory beyond
        // 512 MB is wasted (the flat columns of Fig. 2b).
        let wl = ml_pipeline();
        let c1 = ConfigMap::uniform(wl.len(), ResourceConfig::new(1.0, 512));
        let c4 = ConfigMap::uniform(wl.len(), ResourceConfig::new(4.0, 512));
        let c4_big_mem = ConfigMap::uniform(wl.len(), ResourceConfig::new(4.0, 8192));
        let r1 = wl.env().execute(&c1).unwrap().makespan_ms();
        let r4 = wl.env().execute(&c4).unwrap().makespan_ms();
        let r4m = wl.env().execute(&c4_big_mem).unwrap().makespan_ms();
        assert!(r4 < 0.5 * r1, "4 cores should at least halve the runtime");
        assert!(
            (r4 - r4m).abs() / r4 < 0.01,
            "extra memory gives no speedup"
        );
    }

    #[test]
    fn one_core_cannot_meet_the_slo_but_four_can() {
        let wl = ml_pipeline();
        let c1 = ConfigMap::uniform(wl.len(), ResourceConfig::new(1.0, 512));
        let c4 = ConfigMap::uniform(wl.len(), ResourceConfig::new(4.0, 512));
        assert!(!wl.env().execute(&c1).unwrap().meets_slo(wl.slo_ms()));
        assert!(wl.env().execute(&c4).unwrap().meets_slo(wl.slo_ms()));
    }

    #[test]
    fn decoupled_optimum_is_cheaper_than_coupled_equivalent() {
        // The paper's motivating number: 4 vCPU / 512 MB decoupled vs the
        // coupled allocation that would be required to obtain 4 cores
        // (4 × 1024 MB = 4096 MB): same runtime, much lower cost.
        let wl = ml_pipeline();
        let decoupled = ConfigMap::uniform(wl.len(), ResourceConfig::new(4.0, 512));
        let coupled = ConfigMap::uniform(wl.len(), ResourceConfig::coupled(4096, 1024.0));
        let rd = wl.env().execute(&decoupled).unwrap();
        let rc = wl.env().execute(&coupled).unwrap();
        assert!(rd.meets_slo(wl.slo_ms()));
        assert!(rd.total_cost() < rc.total_cost());
        // Memory saving of the decoupled optimum: 1 - 512/4096 = 87.5 %.
        assert!((1.0_f64 - 512.0 / 4096.0 - 0.875).abs() < 1e-12);
    }

    #[test]
    fn critical_path_contains_param_tune() {
        let wl = ml_pipeline();
        let env = wl.env();
        let weights = aarc_simulator::profile_workflow(env, &env.base_configs()).unwrap();
        let cp = critical_path(env.workflow().dag(), weights.weight_fn());
        assert!(cp.contains(env.workflow().find("param_tune").unwrap()));
    }
}
