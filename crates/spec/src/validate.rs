//! Semantic validation of scenario specs.
//!
//! Parsing already guarantees shape (required fields, types, known enum
//! spellings, unknown-key rejection); this module checks the semantics the
//! engine assumes: DAG acyclicity, edge references, profile sanity,
//! platform plausibility and SLO validity. All problems are collected and
//! reported together.

use std::collections::{HashMap, HashSet};

use crate::error::{SpecError, ValidationIssue};
use crate::schema::{ProfileDecl, ScenarioSpec, SPEC_VERSION};

/// Validates `spec`, returning every problem found.
///
/// # Errors
///
/// Returns [`SpecError::Invalid`] with the full issue list when anything is
/// wrong.
pub fn validate(spec: &ScenarioSpec) -> Result<(), SpecError> {
    let issues = collect_issues(spec);
    if issues.is_empty() {
        Ok(())
    } else {
        Err(SpecError::Invalid(issues))
    }
}

fn finite(x: f64) -> bool {
    x.is_finite()
}

fn note(issues: &mut Vec<ValidationIssue>, path: &str, msg: String) {
    issues.push(ValidationIssue::new(path, msg));
}

fn collect_issues(spec: &ScenarioSpec) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();

    if spec.version != SPEC_VERSION {
        note(
            &mut issues,
            "version",
            format!(
                "unsupported version {} (this build reads {SPEC_VERSION})",
                spec.version
            ),
        );
    }
    if spec.name.trim().is_empty() {
        note(&mut issues, "name", "must not be empty".to_string());
    }
    if !finite(spec.slo_ms) || spec.slo_ms <= 0.0 {
        note(
            &mut issues,
            "slo_ms",
            format!("must be a positive finite number, got {}", spec.slo_ms),
        );
    }

    // Functions: unique non-empty names, sane profiles.
    if spec.functions.is_empty() {
        note(
            &mut issues,
            "functions",
            "a workflow needs at least one function".to_string(),
        );
    }
    let mut names: HashMap<&str, usize> = HashMap::new();
    for (i, f) in spec.functions.iter().enumerate() {
        let path = format!("functions[{i}]");
        if f.name.trim().is_empty() {
            note(
                &mut issues,
                &path,
                "function name must not be empty".to_string(),
            );
        }
        if let Some(first) = names.insert(f.name.as_str(), i) {
            note(
                &mut issues,
                &path,
                format!(
                    "duplicate function name `{}` (first declared at functions[{first}])",
                    f.name
                ),
            );
        }
        profile_issues(&f.profile, &format!("{path}.profile"), &mut issues);
    }

    // Edges: known endpoints, no self-loops or duplicates, acyclic.
    let index: HashMap<&str, usize> = spec
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), i))
        .collect();
    let mut seen_edges = HashSet::new();
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); spec.functions.len()];
    for (i, e) in spec.edges.iter().enumerate() {
        let path = format!("edges[{i}]");
        let from = index.get(e.from.as_str()).copied();
        let to = index.get(e.to.as_str()).copied();
        if from.is_none() {
            note(
                &mut issues,
                &path,
                format!("`from` references unknown function `{}`", e.from),
            );
        }
        if to.is_none() {
            note(
                &mut issues,
                &path,
                format!("`to` references unknown function `{}`", e.to),
            );
        }
        if e.from == e.to {
            note(&mut issues, &path, format!("self-loop on `{}`", e.from));
        }
        if !seen_edges.insert((e.from.as_str(), e.to.as_str())) {
            note(
                &mut issues,
                &path,
                format!("duplicate edge `{}` -> `{}`", e.from, e.to),
            );
        }
        if let Some(p) = e.payload_mb {
            if !finite(p) || p < 0.0 {
                note(
                    &mut issues,
                    &path,
                    format!("payload_mb must be non-negative and finite, got {p}"),
                );
            }
        }
        if let (Some(a), Some(b)) = (from, to) {
            if a != b {
                adjacency[a].push(b);
            }
        }
    }
    if let Some(cycle) = find_cycle(&adjacency) {
        let names: Vec<&str> = cycle
            .iter()
            .map(|&i| spec.functions[i].name.as_str())
            .collect();
        note(
            &mut issues,
            "edges",
            format!("workflow contains a cycle: {}", names.join(" -> ")),
        );
    }

    // Platform sections.
    if let Some(c) = &spec.cluster {
        if c.hosts == 0 {
            note(
                &mut issues,
                "cluster.hosts",
                "must be at least 1".to_string(),
            );
        }
        if !finite(c.vcpus_per_host) || c.vcpus_per_host <= 0.0 {
            note(
                &mut issues,
                "cluster.vcpus_per_host",
                format!("must be positive, got {}", c.vcpus_per_host),
            );
        }
        if c.memory_mb_per_host == 0 {
            note(
                &mut issues,
                "cluster.memory_mb_per_host",
                "must be positive".to_string(),
            );
        }
        if !finite(c.network_mb_per_s) || c.network_mb_per_s < 0.0 {
            note(
                &mut issues,
                "cluster.network_mb_per_s",
                format!("must be non-negative, got {}", c.network_mb_per_s),
            );
        }
        if !finite(c.runtime_jitter) || !(0.0..1.0).contains(&c.runtime_jitter) {
            note(
                &mut issues,
                "cluster.runtime_jitter",
                format!("must be in [0, 1), got {}", c.runtime_jitter),
            );
        }
        if let Some(cs) = &c.cold_start {
            if !finite(cs.base_ms)
                || cs.base_ms < 0.0
                || !finite(cs.per_gb_ms)
                || cs.per_gb_ms < 0.0
            {
                note(
                    &mut issues,
                    "cluster.cold_start",
                    "latencies must be non-negative and finite".to_string(),
                );
            }
        }
    }
    if let Some(p) = &spec.pricing {
        for (field, v) in [
            ("per_vcpu_ms", p.per_vcpu_ms),
            ("per_mb_ms", p.per_mb_ms),
            ("per_request", p.per_request),
        ] {
            if !finite(v) || v < 0.0 {
                note(
                    &mut issues,
                    &format!("pricing.{field}"),
                    format!("must be non-negative and finite, got {v}"),
                );
            }
        }
    }
    if let Some(s) = &spec.resource_space {
        if !finite(s.min_vcpu)
            || !finite(s.max_vcpu)
            || s.min_vcpu <= 0.0
            || s.max_vcpu < s.min_vcpu
        {
            note(
                &mut issues,
                "resource_space",
                format!("vCPU bounds invalid: min {} max {}", s.min_vcpu, s.max_vcpu),
            );
        }
        if !finite(s.vcpu_step) || s.vcpu_step <= 0.0 {
            note(
                &mut issues,
                "resource_space.vcpu_step",
                format!("must be positive, got {}", s.vcpu_step),
            );
        }
        if s.min_memory_mb == 0 || s.max_memory_mb < s.min_memory_mb {
            note(
                &mut issues,
                "resource_space",
                format!(
                    "memory bounds invalid: min {} max {}",
                    s.min_memory_mb, s.max_memory_mb
                ),
            );
        }
        if s.memory_step_mb == 0 {
            note(
                &mut issues,
                "resource_space.memory_step_mb",
                "must be positive".to_string(),
            );
        }
    }
    if let Some(b) = &spec.base_config {
        if !finite(b.vcpu) || b.vcpu <= 0.0 {
            note(
                &mut issues,
                "base_config.vcpu",
                format!("must be positive, got {}", b.vcpu),
            );
        }
        if b.memory_mb == 0 {
            note(
                &mut issues,
                "base_config.memory_mb",
                "must be positive".to_string(),
            );
        }
        // The base configuration must lie inside the declared (or default)
        // resource space — the engine guarantees every returned
        // configuration stays inside the space, and an out-of-space base
        // would break that invariant from the start.
        let space = spec
            .resource_space
            .as_ref()
            .map(|s| s.to_engine())
            .unwrap_or_else(aarc_simulator::ResourceSpace::paper);
        if finite(b.vcpu)
            && b.vcpu > 0.0
            && b.memory_mb > 0
            && !space.contains(aarc_simulator::ResourceConfig::new(b.vcpu, b.memory_mb))
        {
            note(
                &mut issues,
                "base_config",
                format!(
                    "{} vCPU / {} MB lies outside the resource space ([{}, {}] vCPU, [{}, {}] MB)",
                    b.vcpu,
                    b.memory_mb,
                    space.min_vcpu,
                    space.max_vcpu,
                    space.min_memory_mb,
                    space.max_memory_mb
                ),
            );
        }
        // ... and fit the cluster it will run on.
        let cluster = spec
            .cluster
            .as_ref()
            .map(|c| c.to_engine())
            .unwrap_or_else(aarc_simulator::ClusterSpec::paper_testbed);
        if b.vcpu > cluster.vcpus_per_host || b.memory_mb > cluster.memory_mb_per_host {
            note(
                &mut issues,
                "base_config",
                format!(
                    "{} vCPU / {} MB exceeds the cluster host capacity ({} vCPU / {} MB)",
                    b.vcpu, b.memory_mb, cluster.vcpus_per_host, cluster.memory_mb_per_host
                ),
            );
        }
    }
    if let Some(input) = &spec.input {
        if !finite(input.scale) || input.scale <= 0.0 {
            note(
                &mut issues,
                "input.scale",
                format!("must be positive, got {}", input.scale),
            );
        }
        if !finite(input.payload_mb) || input.payload_mb < 0.0 {
            note(
                &mut issues,
                "input.payload_mb",
                format!("must be non-negative, got {}", input.payload_mb),
            );
        }
    }

    // Input distribution (§IV-D).
    let mut classes = HashSet::new();
    for (i, entry) in spec.input_classes.iter().enumerate() {
        let path = format!("input_classes[{i}]");
        if !classes.insert(entry.class) {
            note(
                &mut issues,
                &path,
                format!("duplicate class `{}`", entry.class),
            );
        }
        if !finite(entry.input.scale) || entry.input.scale <= 0.0 {
            note(
                &mut issues,
                &path,
                format!("input.scale must be positive, got {}", entry.input.scale),
            );
        }
        if !finite(entry.input.payload_mb) || entry.input.payload_mb < 0.0 {
            note(
                &mut issues,
                &path,
                format!(
                    "input.payload_mb must be non-negative, got {}",
                    entry.input.payload_mb
                ),
            );
        }
        if let Some(w) = entry.weight {
            if !finite(w) || w <= 0.0 {
                note(
                    &mut issues,
                    &path,
                    format!("weight must be positive, got {w}"),
                );
            }
        }
    }

    issues
}

fn profile_issues(p: &ProfileDecl, path: &str, issues: &mut Vec<ValidationIssue>) {
    let mut push = |msg: String| issues.push(ValidationIssue::new(path, msg));
    for (field, v) in [
        ("serial_ms", p.serial_ms),
        ("parallel_ms", p.parallel_ms),
        ("io_ms", p.io_ms),
    ] {
        if !finite(v) || v < 0.0 {
            push(format!("{field} must be non-negative and finite, got {v}"));
        }
    }
    if let Some(mp) = p.max_parallelism {
        if !finite(mp) || mp < 1.0 {
            push(format!("max_parallelism must be >= 1, got {mp}"));
        }
    }
    let working_set = p.working_set_mb.unwrap_or(128.0);
    if let Some(ws) = p.working_set_mb {
        if !finite(ws) || ws <= 0.0 {
            push(format!("working_set_mb must be positive, got {ws}"));
        }
    }
    if let Some(floor) = p.mem_floor_mb {
        if !finite(floor) || floor < 0.0 {
            push(format!("mem_floor_mb must be non-negative, got {floor}"));
        } else if floor > working_set {
            push(format!(
                "mem_floor_mb ({floor}) exceeds working_set_mb ({working_set}); the engine would silently clamp it"
            ));
        }
    }
    if let Some(pen) = p.mem_penalty_factor {
        if !finite(pen) || pen < 1.0 {
            push(format!("mem_penalty_factor must be >= 1, got {pen}"));
        }
    }
    if let Some(s) = p.input_sensitivity {
        if !finite(s) || s < 0.0 {
            push(format!("input_sensitivity must be non-negative, got {s}"));
        }
    }
    if !finite(p.mem_input_sensitivity) || p.mem_input_sensitivity < 0.0 {
        push(format!(
            "mem_input_sensitivity must be non-negative, got {}",
            p.mem_input_sensitivity
        ));
    }
}

/// Kahn's algorithm; returns one cycle's node indices when the graph is
/// cyclic.
fn find_cycle(adjacency: &[Vec<usize>]) -> Option<Vec<usize>> {
    let n = adjacency.len();
    let mut indegree = vec![0usize; n];
    for succs in adjacency {
        for &s in succs {
            indegree[s] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut removed = 0usize;
    while let Some(v) = queue.pop() {
        removed += 1;
        for &s in &adjacency[v] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                queue.push(s);
            }
        }
    }
    if removed == n {
        return None;
    }
    // Walk the residual graph to present one concrete cycle.
    let residual: Vec<usize> = (0..n).filter(|&i| indegree[i] > 0).collect();
    let start = residual[0];
    let mut path = vec![start];
    let mut current = start;
    loop {
        let next = adjacency[current]
            .iter()
            .copied()
            .find(|s| indegree[*s] > 0)
            .expect("residual nodes keep a successor in the residual graph");
        if let Some(pos) = path.iter().position(|&v| v == next) {
            path.push(next);
            return Some(path[pos..].to_vec());
        }
        path.push(next);
        current = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ClassDecl, EdgeDecl, FunctionDecl, InputClassDecl, InputDecl};

    fn minimal() -> ScenarioSpec {
        crate::io::from_yaml_str(
            "version: 1\nname: t\nslo_ms: 1000.0\nfunctions:\n  - name: a\n    profile:\n      serial_ms: 10.0\n  - name: b\n    profile:\n      serial_ms: 10.0\nedges:\n  - from: a\n    to: b\n",
        )
        .unwrap()
    }

    #[test]
    fn minimal_spec_is_valid() {
        validate(&minimal()).unwrap();
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut s = minimal();
        s.version = 99;
        let err = validate(&s).unwrap_err();
        assert!(err.to_string().contains("unsupported version"));
    }

    #[test]
    fn dangling_edges_are_reported_with_paths() {
        let mut s = minimal();
        s.edges.push(EdgeDecl {
            from: "a".into(),
            to: "ghost".into(),
            payload_mb: None,
            kind: Default::default(),
        });
        match validate(&s).unwrap_err() {
            SpecError::Invalid(issues) => {
                assert!(issues
                    .iter()
                    .any(|i| i.path == "edges[1]" && i.message.contains("ghost")));
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn cycles_are_detected_and_named() {
        let mut s = minimal();
        s.edges.push(EdgeDecl {
            from: "b".into(),
            to: "a".into(),
            payload_mb: None,
            kind: Default::default(),
        });
        let err = validate(&s).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("cycle"), "missing cycle report: {text}");
        assert!(
            text.contains("a -> b") || text.contains("b -> a"),
            "cycle not named: {text}"
        );
    }

    #[test]
    fn duplicate_functions_and_edges_are_rejected() {
        let mut s = minimal();
        s.functions.push(FunctionDecl {
            name: "a".into(),
            affinity: Default::default(),
            profile: s.functions[0].profile.clone(),
        });
        s.edges.push(s.edges[0].clone());
        match validate(&s).unwrap_err() {
            SpecError::Invalid(issues) => {
                assert!(issues
                    .iter()
                    .any(|i| i.message.contains("duplicate function name")));
                assert!(issues.iter().any(|i| i.message.contains("duplicate edge")));
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn profile_bounds_are_checked() {
        let mut s = minimal();
        s.functions[0].profile.serial_ms = -5.0;
        s.functions[0].profile.max_parallelism = Some(0.5);
        s.functions[0].profile.working_set_mb = Some(100.0);
        s.functions[0].profile.mem_floor_mb = Some(200.0);
        match validate(&s).unwrap_err() {
            SpecError::Invalid(issues) => {
                let text: Vec<String> = issues.iter().map(ToString::to_string).collect();
                assert!(text.iter().any(|t| t.contains("serial_ms")), "{text:?}");
                assert!(
                    text.iter().any(|t| t.contains("max_parallelism")),
                    "{text:?}"
                );
                assert!(
                    text.iter().any(|t| t.contains("exceeds working_set_mb")),
                    "{text:?}"
                );
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn slo_and_distribution_are_checked() {
        let mut s = minimal();
        s.slo_ms = 0.0;
        s.input_classes = vec![
            InputClassDecl {
                class: ClassDecl::Light,
                input: InputDecl {
                    scale: 0.5,
                    payload_mb: 1.0,
                },
                weight: Some(1.0),
            },
            InputClassDecl {
                class: ClassDecl::Light,
                input: InputDecl {
                    scale: -1.0,
                    payload_mb: 1.0,
                },
                weight: Some(0.0),
            },
        ];
        match validate(&s).unwrap_err() {
            SpecError::Invalid(issues) => {
                let text: Vec<String> = issues.iter().map(ToString::to_string).collect();
                assert!(text.iter().any(|t| t.contains("slo_ms")), "{text:?}");
                assert!(
                    text.iter().any(|t| t.contains("duplicate class")),
                    "{text:?}"
                );
                assert!(text.iter().any(|t| t.contains("weight")), "{text:?}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_space_bounds_are_rejected() {
        let mut s = minimal();
        s.resource_space = Some(crate::schema::SpaceDecl {
            min_vcpu: 0.1,
            max_vcpu: f64::NAN,
            vcpu_step: 0.1,
            min_memory_mb: 128,
            max_memory_mb: 10_240,
            memory_step_mb: 64,
        });
        let err = validate(&s).unwrap_err();
        assert!(err.to_string().contains("vCPU bounds invalid"), "{err}");
        s = minimal();
        s.resource_space = Some(crate::schema::SpaceDecl {
            min_vcpu: 0.1,
            max_vcpu: f64::INFINITY,
            vcpu_step: 0.1,
            min_memory_mb: 128,
            max_memory_mb: 10_240,
            memory_step_mb: 64,
        });
        assert!(validate(&s).is_err());
    }

    #[test]
    fn base_config_outside_the_resource_space_is_rejected() {
        let mut s = minimal();
        s.resource_space = Some(crate::schema::SpaceDecl {
            min_vcpu: 0.1,
            max_vcpu: 2.0,
            vcpu_step: 0.1,
            min_memory_mb: 128,
            max_memory_mb: 4_096,
            memory_step_mb: 64,
        });
        s.base_config = Some(crate::schema::ConfigDecl {
            vcpu: 8.0,
            memory_mb: 512,
        });
        let err = validate(&s).unwrap_err();
        assert!(
            err.to_string().contains("outside the resource space"),
            "{err}"
        );
    }

    #[test]
    fn oversized_base_config_is_rejected() {
        let mut s = minimal();
        s.base_config = Some(crate::schema::ConfigDecl {
            vcpu: 200.0,
            memory_mb: 1024,
        });
        let err = validate(&s).unwrap_err();
        assert!(err
            .to_string()
            .contains("exceeds the cluster host capacity"));
    }
}
