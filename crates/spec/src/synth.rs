//! Synthetic scenario generation: bridges the random workload generator to
//! the declarative layer, so new stress scenarios can be minted as spec
//! files (`aarc generate`) instead of Rust code.

use aarc_workloads::{RandomWorkloadConfig, RandomWorkloadGenerator};

use crate::compile::CompiledScenario;
use crate::export::export;
use crate::schema::ScenarioSpec;

/// Parameters of a synthetic scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthParams {
    /// RNG seed; the scenario is a pure function of the parameters.
    pub seed: u64,
    /// Number of DAG layers.
    pub layers: usize,
    /// Maximum functions per layer.
    pub max_width: usize,
    /// Probability of extra edges between consecutive layers.
    pub edge_probability: f64,
    /// SLO headroom over the profiled base makespan.
    pub slo_headroom: f64,
}

impl Default for SynthParams {
    fn default() -> Self {
        let d = RandomWorkloadConfig::default();
        SynthParams {
            seed: 1,
            layers: d.layers,
            max_width: d.max_width,
            edge_probability: d.edge_probability,
            slo_headroom: d.slo_headroom,
        }
    }
}

/// Generates a synthetic scenario spec from the random workload generator.
pub fn synthetic_spec(params: SynthParams) -> ScenarioSpec {
    let config = RandomWorkloadConfig {
        layers: params.layers,
        max_width: params.max_width,
        edge_probability: params.edge_probability,
        slo_headroom: params.slo_headroom,
        ..RandomWorkloadConfig::default()
    };
    let workload = RandomWorkloadGenerator::new(config, params.seed).generate();
    let mut spec = export(&CompiledScenario::from_workload(workload));
    // The generator names every first workload `random-1`; a seed-derived
    // name keeps scenario collections distinguishable.
    spec.name = format!("synthetic-{}", params.seed);
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::validate::validate;

    #[test]
    fn synthetic_specs_validate_compile_and_round_trip() {
        for seed in [1u64, 7, 42] {
            let spec = synthetic_spec(SynthParams {
                seed,
                ..SynthParams::default()
            });
            validate(&spec).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let scenario = compile(&spec).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let again = export(&scenario);
            assert_eq!(spec, again, "seed {seed} not normalized");
        }
    }

    #[test]
    fn synthetic_specs_are_deterministic_per_seed() {
        let a = synthetic_spec(SynthParams::default());
        let b = synthetic_spec(SynthParams::default());
        assert_eq!(a, b);
        let c = synthetic_spec(SynthParams {
            seed: 2,
            ..SynthParams::default()
        });
        assert_ne!(a, c);
    }
}
