//! Error types of the scenario subsystem.

use std::fmt;

/// One semantic problem found while validating a [`ScenarioSpec`]
/// (crate::ScenarioSpec).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationIssue {
    /// Dotted path to the offending element (e.g. `functions[2].profile`).
    pub path: String,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ValidationIssue {
    /// Creates an issue.
    pub fn new(path: impl Into<String>, message: impl Into<String>) -> Self {
        ValidationIssue {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

/// Error produced by the scenario subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The text could not be parsed as YAML/JSON or did not match the
    /// schema shape.
    Parse(String),
    /// The spec parsed but violates semantic rules; all problems are
    /// reported at once.
    Invalid(Vec<ValidationIssue>),
    /// The spec validated but the engine rejected it while compiling (a
    /// validator gap — please report).
    Compile(String),
    /// A file could not be read or written.
    Io(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse(msg) => write!(f, "parse error: {msg}"),
            SpecError::Invalid(issues) => {
                writeln!(f, "invalid scenario ({} problem(s)):", issues.len())?;
                for issue in issues {
                    writeln!(f, "  - {issue}")?;
                }
                Ok(())
            }
            SpecError::Compile(msg) => write!(f, "compile error: {msg}"),
            SpecError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}
