//! Exporters: turn executable scenarios back into normalized specs.
//!
//! "Normalized" means every optional section is written explicitly with the
//! engine's effective values, so `compile(export(x))` is the identity on
//! behaviour and `export(compile(s))` is the identity on normalized specs.
//! The three built-in paper workloads are exported through the same path,
//! which is what pins their golden files.

use aarc_workloads::{chatbot, ml_pipeline, video_analysis};

use crate::compile::CompiledScenario;
use crate::schema::{
    ClusterDecl, ConfigDecl, EdgeDecl, FunctionDecl, InputClassDecl, InputDecl, PricingDecl,
    ProfileDecl, ScenarioSpec, SpaceDecl, SPEC_VERSION,
};

/// Exports a compiled scenario as a normalized spec.
pub fn export(scenario: &CompiledScenario) -> ScenarioSpec {
    let workload = scenario.workload();
    let env = workload.env();
    let workflow = env.workflow();

    let functions = workflow
        .node_ids()
        .map(|id| {
            let spec = workflow.function(id);
            let profile = env
                .profiles()
                .get(id)
                .expect("environments guarantee profile coverage");
            FunctionDecl {
                name: spec.name().to_owned(),
                affinity: spec.affinity().into(),
                profile: ProfileDecl {
                    serial_ms: profile.serial_ms(),
                    parallel_ms: profile.parallel_ms(),
                    max_parallelism: Some(profile.max_parallelism()),
                    io_ms: profile.io_ms(),
                    working_set_mb: Some(profile.working_set_mb()),
                    mem_floor_mb: Some(profile.mem_floor_mb()),
                    mem_penalty_factor: Some(profile.mem_penalty_factor()),
                    input_sensitivity: Some(profile.input_sensitivity()),
                    mem_input_sensitivity: profile.mem_input_sensitivity(),
                },
            }
        })
        .collect();

    let edges = workflow
        .edges()
        .iter()
        .map(|e| EdgeDecl {
            from: workflow.function(e.from).name().to_owned(),
            to: workflow.function(e.to).name().to_owned(),
            payload_mb: Some(e.payload_mb),
            kind: e.kind.into(),
        })
        .collect();

    let input_classes = scenario
        .input_mix()
        .iter()
        .map(|&(class, weight)| {
            let input = workload.input_classes()[&class];
            InputClassDecl {
                class: class.into(),
                input: InputDecl {
                    scale: input.scale,
                    payload_mb: input.payload_mb,
                },
                weight: Some(weight),
            }
        })
        .collect();

    ScenarioSpec {
        version: SPEC_VERSION,
        name: workload.name().to_owned(),
        slo_ms: workload.slo_ms(),
        seed: env.seed(),
        functions,
        edges,
        cluster: Some(ClusterDecl::from_engine(env.cluster())),
        pricing: Some(PricingDecl::from_engine(env.pricing())),
        resource_space: Some(SpaceDecl::from_engine(env.space())),
        base_config: Some(ConfigDecl {
            vcpu: env.base_config().vcpu.get(),
            memory_mb: env.base_config().memory.get(),
        }),
        input: Some(InputDecl {
            scale: env.input().scale,
            payload_mb: env.input().payload_mb,
        }),
        input_classes,
    }
}

/// The file-stem names of the built-in paper workloads, in figure order.
pub const BUILTIN_NAMES: [&str; 3] = ["chatbot", "ml_pipeline", "video_analysis"];

/// Exports the three built-in paper workloads as normalized specs, keyed by
/// their file-stem name ([`BUILTIN_NAMES`] order).
pub fn builtin_specs() -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        (
            "chatbot",
            export(&CompiledScenario::from_workload(chatbot())),
        ),
        (
            "ml_pipeline",
            export(&CompiledScenario::from_workload(ml_pipeline())),
        ),
        (
            "video_analysis",
            export(&CompiledScenario::from_workload(video_analysis())),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::validate::validate;

    #[test]
    fn builtin_specs_validate_and_recompile() {
        for (name, spec) in builtin_specs() {
            validate(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
            let scenario = compile(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(scenario.workload().name(), spec.name);
        }
    }

    #[test]
    fn exported_builtin_behaves_like_the_original() {
        let original = chatbot();
        let spec = export(&CompiledScenario::from_workload(original.clone()));
        let rebuilt = compile(&spec).unwrap().into_workload();
        let base_original = original
            .env()
            .execute(&original.env().base_configs())
            .unwrap();
        let base_rebuilt = rebuilt
            .env()
            .execute(&rebuilt.env().base_configs())
            .unwrap();
        assert_eq!(base_original.makespan_ms(), base_rebuilt.makespan_ms());
        assert_eq!(base_original.total_cost(), base_rebuilt.total_cost());
        assert_eq!(original.slo_ms(), rebuilt.slo_ms());
    }

    #[test]
    fn export_after_compile_is_identity_on_normalized_specs() {
        for (name, spec) in builtin_specs() {
            let again = export(&compile(&spec).unwrap());
            assert_eq!(spec, again, "{name} changed across compile/export");
        }
    }

    #[test]
    fn video_analysis_exports_its_input_distribution() {
        let (_, spec) = builtin_specs().into_iter().nth(2).unwrap();
        assert_eq!(spec.input_classes.len(), 3);
        let classes: Vec<String> = spec
            .input_classes
            .iter()
            .map(|e| e.class.to_string())
            .collect();
        assert_eq!(classes, vec!["light", "middle", "heavy"]);
    }
}
