//! `aarc-spec` — the declarative scenario subsystem of the AARC
//! reproduction.
//!
//! The engine crates (`aarc-workflow`, `aarc-simulator`, `aarc-core`,
//! `aarc-baselines`) expose workloads only as Rust builder code, so every
//! new scenario used to cost a recompile. This crate adds a versioned
//! YAML/JSON schema ([`ScenarioSpec`]) describing everything a
//! configuration search needs — the workflow DAG, per-function performance
//! profiles, cluster, pricing, resource space, SLO and the §IV-D input-size
//! distribution — plus:
//!
//! * [`validate`] — semantic validation (acyclicity, dangling edge
//!   references, profile sanity, platform plausibility) with all problems
//!   reported at once;
//! * [`compile`] — a compiler into the engine's executable
//!   [`Workload`](aarc_workloads::Workload) /
//!   [`WorkflowEnvironment`](aarc_simulator::WorkflowEnvironment);
//! * [`export`] — the inverse direction, used to serialize the three
//!   built-in paper workloads (and any programmatic workload) as specs;
//! * [`synthetic_spec`] — scenario minting via the random workload
//!   generator.
//!
//! # Example
//!
//! ```
//! use aarc_spec::prelude::*;
//!
//! # fn main() -> Result<(), aarc_spec::SpecError> {
//! let spec = aarc_spec::from_yaml_str(r#"
//! version: 1
//! name: demo
//! slo_ms: 60000.0
//! functions:
//!   - name: crunch
//!     affinity: cpu-bound
//!     profile:
//!       parallel_ms: 30000.0
//!       max_parallelism: 4.0
//!   - name: store
//!     profile:
//!       serial_ms: 2000.0
//! edges:
//!   - from: crunch
//!     to: store
//! "#)?;
//! let scenario = compile(&spec)?;
//! let report = scenario
//!     .workload()
//!     .env()
//!     .execute(&scenario.workload().env().base_configs())
//!     .expect("base config executes");
//! assert!(report.makespan_ms() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compile;
pub mod error;
pub mod export;
pub mod io;
pub mod schema;
pub mod synth;
pub mod validate;

pub use compile::{compile, CompiledScenario};
pub use error::{SpecError, ValidationIssue};
pub use export::{builtin_specs, export, BUILTIN_NAMES};
pub use io::{
    atomic_write, from_json_str, from_slice, from_yaml_str, load, save, to_string, SpecFormat,
};
pub use schema::{
    AffinityDecl, ClassDecl, ClusterDecl, ColdStartDecl, ConfigDecl, EdgeDecl, FunctionDecl,
    InputClassDecl, InputDecl, KindDecl, PricingDecl, ProfileDecl, ScenarioSpec, SpaceDecl,
    SPEC_VERSION,
};
pub use synth::{synthetic_spec, SynthParams};
pub use validate::validate;

/// The most commonly used items.
pub mod prelude {
    pub use crate::compile::{compile, CompiledScenario};
    pub use crate::error::SpecError;
    pub use crate::export::{builtin_specs, export};
    pub use crate::io::{from_json_str, from_slice, from_yaml_str, load, save, SpecFormat};
    pub use crate::schema::ScenarioSpec;
    pub use crate::validate::validate;
}
