//! The versioned scenario schema: serde types describing a workflow, its
//! per-function performance profiles, the platform (cluster, pricing,
//! resource space) and the SLO — everything needed to run a configuration
//! search without writing Rust.
//!
//! Optional sections default to the paper's platform constants, so a
//! minimal scenario only needs `version`, `name`, `slo_ms`, `functions`
//! and `edges`. The [exporter](crate::export) always writes every section
//! explicitly ("normalized form"), which is what the golden files and the
//! round-trip property tests pin down.

use serde::{DeError, Deserialize, Serialize, Value};

use aarc_simulator::{ClusterSpec, ColdStartModel, InputClass, PricingModel, ResourceSpace};
use aarc_workflow::{CommunicationKind, ResourceAffinity};

/// The schema version this crate reads and writes.
pub const SPEC_VERSION: u32 = 1;

/// A complete declarative scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Schema version; must equal [`SPEC_VERSION`].
    pub version: u32,
    /// Workflow name (unique per scenario collection; used in reports).
    pub name: String,
    /// End-to-end latency SLO in milliseconds.
    pub slo_ms: f64,
    /// RNG seed for jittered executions (0 = fully deterministic platforms).
    #[serde(default)]
    pub seed: u64,
    /// The workflow's functions with their performance profiles, in
    /// topological declaration order.
    pub functions: Vec<FunctionDecl>,
    /// The workflow's dependency edges.
    pub edges: Vec<EdgeDecl>,
    /// Simulated cluster; defaults to the paper's 96-core testbed.
    pub cluster: Option<ClusterDecl>,
    /// Pricing constants; defaults to the paper's µ values.
    pub pricing: Option<PricingDecl>,
    /// Discretised configuration space; defaults to the paper's grid.
    pub resource_space: Option<SpaceDecl>,
    /// Over-provisioned base configuration; defaults to the space maximum.
    pub base_config: Option<ConfigDecl>,
    /// Default execution input; defaults to the nominal profiling input.
    pub input: Option<InputDecl>,
    /// Input-size distribution for the §IV-D input-aware engine: one entry
    /// per size class with a representative input and a request-mix weight.
    #[serde(default)]
    pub input_classes: Vec<InputClassDecl>,
}

impl ScenarioSpec {
    /// A stable 64-bit fingerprint of the scenario (FNV-1a over the
    /// canonical JSON rendering). Used by the bench harness to derive
    /// per-scenario candidate RNG seeds and surfaced next to cache
    /// statistics in `BENCH_*.json`; any edit to the spec changes it.
    pub fn fingerprint(&self) -> u64 {
        let canonical = crate::io::to_string(self, crate::io::SpecFormat::Json);
        aarc_simulator::eval::fnv1a_64(canonical.bytes())
    }

    /// Parses a spec from raw in-memory bytes, sniffing YAML vs JSON from
    /// the content (see [`SpecFormat::sniff`](crate::io::SpecFormat::sniff)).
    /// Uploaded scenario bodies go through this entry point — they never
    /// touch disk.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`](crate::error::SpecError) on non-UTF-8 input,
    /// malformed text or schema mismatches.
    pub fn from_slice(bytes: &[u8]) -> Result<Self, crate::error::SpecError> {
        crate::io::from_slice(bytes)
    }
}

/// One serverless function: identity, advisory affinity and profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionDecl {
    /// Unique function name.
    pub name: String,
    /// Advisory resource affinity (`balanced` when omitted).
    #[serde(default)]
    pub affinity: AffinityDecl,
    /// Performance profile.
    pub profile: ProfileDecl,
}

/// Per-function performance profile (§II-A performance model inputs).
///
/// Field defaults mirror
/// [`FunctionProfileBuilder`](aarc_simulator::FunctionProfileBuilder).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileDecl {
    /// Serial compute at one core, ms.
    #[serde(default)]
    pub serial_ms: f64,
    /// Parallelisable compute at one core, ms.
    #[serde(default)]
    pub parallel_ms: f64,
    /// Maximum exploitable cores (≥ 1).
    pub max_parallelism: Option<f64>,
    /// Resource-insensitive I/O time, ms.
    #[serde(default)]
    pub io_ms: f64,
    /// Working-set size at nominal input, MB.
    pub working_set_mb: Option<f64>,
    /// Hard OOM floor at nominal input, MB.
    pub mem_floor_mb: Option<f64>,
    /// Slowdown factor at the memory floor (≥ 1).
    pub mem_penalty_factor: Option<f64>,
    /// Exponent scaling compute with input scale.
    pub input_sensitivity: Option<f64>,
    /// Exponent scaling working set / floor with input scale.
    #[serde(default)]
    pub mem_input_sensitivity: f64,
}

/// One dependency edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeDecl {
    /// Upstream function name.
    pub from: String,
    /// Downstream function name.
    pub to: String,
    /// Payload size transferred along the edge, MB.
    pub payload_mb: Option<f64>,
    /// Communication pattern (`direct` when omitted).
    #[serde(default)]
    pub kind: KindDecl,
}

/// Default payload size for edges that do not declare one, matching
/// [`aarc_workflow::WorkflowBuilder::add_edge`].
pub const DEFAULT_PAYLOAD_MB: f64 = 1.0;

/// Cluster description; see [`ClusterSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterDecl {
    /// Number of identical hosts.
    pub hosts: usize,
    /// vCPUs per host.
    pub vcpus_per_host: f64,
    /// Memory per host, MB.
    pub memory_mb_per_host: u32,
    /// Inter-function network bandwidth, MB/s.
    pub network_mb_per_s: f64,
    /// Relative runtime jitter (0 = deterministic).
    #[serde(default)]
    pub runtime_jitter: f64,
    /// Cold-start model; disabled when omitted.
    pub cold_start: Option<ColdStartDecl>,
}

/// Cold-start model; see [`ColdStartModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColdStartDecl {
    /// Whether cold starts are simulated.
    pub enabled: bool,
    /// Fixed provisioning latency, ms.
    #[serde(default)]
    pub base_ms: f64,
    /// Additional latency per GB of configured memory, ms.
    #[serde(default)]
    pub per_gb_ms: f64,
}

/// Pricing constants; see [`PricingModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PricingDecl {
    /// µ0 — price per vCPU-millisecond.
    pub per_vcpu_ms: f64,
    /// µ1 — price per MB-millisecond.
    pub per_mb_ms: f64,
    /// µ2 — flat price per request.
    #[serde(default)]
    pub per_request: f64,
}

/// Discretised resource space; see [`ResourceSpace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpaceDecl {
    /// Minimum vCPU allocation.
    pub min_vcpu: f64,
    /// Maximum vCPU allocation.
    pub max_vcpu: f64,
    /// vCPU grid step.
    pub vcpu_step: f64,
    /// Minimum memory, MB.
    pub min_memory_mb: u32,
    /// Maximum memory, MB.
    pub max_memory_mb: u32,
    /// Memory grid step, MB.
    pub memory_step_mb: u32,
}

/// One decoupled resource configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigDecl {
    /// vCPU cores.
    pub vcpu: f64,
    /// Memory, MB.
    pub memory_mb: u32,
}

/// One workflow input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputDecl {
    /// Work multiplier relative to the nominal profiling input.
    pub scale: f64,
    /// Payload entering the workflow, MB.
    pub payload_mb: f64,
}

/// One entry of the input-size distribution (§IV-D).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputClassDecl {
    /// Size class this entry describes.
    pub class: ClassDecl,
    /// Representative input for the class.
    pub input: InputDecl,
    /// Relative request-mix weight (1.0 when omitted).
    pub weight: Option<f64>,
}

// ---------------------------------------------------------------------------
// Kebab-case enum wrappers. The derive shim serializes unit variants under
// their Rust names; scenario files want lowercase kebab-case, so these
// wrappers implement Serialize/Deserialize by hand and convert to the
// engine enums via `From`.
// ---------------------------------------------------------------------------

macro_rules! kebab_enum {
    (
        $(#[$meta:meta])*
        $name:ident / $engine:ty {
            $( $(#[$vmeta:meta])* $variant:ident / $evariant:ident = $text:literal ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum $name {
            $( $(#[$vmeta])* $variant, )+
        }

        impl $name {
            /// The kebab-case spelling used in scenario files.
            pub fn as_str(&self) -> &'static str {
                match self {
                    $( $name::$variant => $text, )+
                }
            }
        }

        impl Serialize for $name {
            fn to_value(&self) -> Value {
                Value::Str(self.as_str().to_string())
            }
        }

        impl Deserialize for $name {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value.as_str() {
                    $( Some($text) => Ok($name::$variant), )+
                    Some(other) => Err(DeError::custom(format!(
                        concat!("unknown ", stringify!($name), " `{}` (expected one of: ",
                                $( $text, " ", )+ ")"),
                        other
                    ))),
                    None => Err(DeError::expected("string", value)),
                }
            }
        }

        impl From<$name> for $engine {
            fn from(v: $name) -> Self {
                match v {
                    $( $name::$variant => <$engine>::$evariant, )+
                }
            }
        }

        impl From<$engine> for $name {
            fn from(v: $engine) -> Self {
                match v {
                    $( <$engine>::$evariant => $name::$variant, )+
                }
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str(self.as_str())
            }
        }
    };
}

kebab_enum! {
    /// Resource affinity annotation, kebab-case in scenario files.
    AffinityDecl / ResourceAffinity {
        /// Runtime dominated by compute.
        CpuBound / CpuBound = "cpu-bound",
        /// Runtime dominated by the working set.
        MemoryBound / MemoryBound = "memory-bound",
        /// Runtime dominated by I/O.
        IoBound / IoBound = "io-bound",
        /// Sensitive to both resources.
        Balanced / Balanced = "balanced",
    }
}

kebab_enum! {
    /// Edge communication pattern, kebab-case in scenario files.
    KindDecl / CommunicationKind {
        /// Point-to-point full payload.
        Direct / Direct = "direct",
        /// Payload split across successors.
        Scatter / Scatter = "scatter",
        /// Payload replicated to all successors.
        Broadcast / Broadcast = "broadcast",
        /// Successor gathers from all predecessors.
        Gather / Gather = "gather",
    }
}

kebab_enum! {
    /// Input size class, lowercase in scenario files.
    ClassDecl / InputClass {
        /// Small inputs.
        Light / Light = "light",
        /// Typical inputs.
        Middle / Middle = "middle",
        /// Large inputs.
        Heavy / Heavy = "heavy",
    }
}

// `Default` stays a hand-written impl: the derive would need a `#[default]`
// variant attribute threaded through the kebab_enum macro for no gain.
#[allow(clippy::derivable_impls)]
impl Default for AffinityDecl {
    fn default() -> Self {
        AffinityDecl::Balanced
    }
}

#[allow(clippy::derivable_impls)]
impl Default for KindDecl {
    fn default() -> Self {
        KindDecl::Direct
    }
}

impl ClusterDecl {
    /// Converts to the engine's [`ClusterSpec`].
    pub fn to_engine(&self) -> ClusterSpec {
        ClusterSpec {
            hosts: self.hosts,
            vcpus_per_host: self.vcpus_per_host,
            memory_mb_per_host: self.memory_mb_per_host,
            network_mb_per_s: self.network_mb_per_s,
            cold_start: self
                .cold_start
                .as_ref()
                .map(ColdStartDecl::to_engine)
                .unwrap_or_else(ColdStartModel::disabled),
            runtime_jitter: self.runtime_jitter,
        }
    }

    /// Builds the declaration mirroring an engine [`ClusterSpec`].
    pub fn from_engine(c: &ClusterSpec) -> Self {
        ClusterDecl {
            hosts: c.hosts,
            vcpus_per_host: c.vcpus_per_host,
            memory_mb_per_host: c.memory_mb_per_host,
            network_mb_per_s: c.network_mb_per_s,
            runtime_jitter: c.runtime_jitter,
            cold_start: Some(ColdStartDecl::from_engine(&c.cold_start)),
        }
    }
}

impl ColdStartDecl {
    /// Converts to the engine's [`ColdStartModel`].
    pub fn to_engine(&self) -> ColdStartModel {
        ColdStartModel {
            enabled: self.enabled,
            base_ms: self.base_ms,
            per_gb_ms: self.per_gb_ms,
        }
    }

    /// Builds the declaration mirroring an engine [`ColdStartModel`].
    pub fn from_engine(c: &ColdStartModel) -> Self {
        ColdStartDecl {
            enabled: c.enabled,
            base_ms: c.base_ms,
            per_gb_ms: c.per_gb_ms,
        }
    }
}

impl PricingDecl {
    /// Converts to the engine's [`PricingModel`].
    pub fn to_engine(&self) -> PricingModel {
        PricingModel::new(self.per_vcpu_ms, self.per_mb_ms, self.per_request)
    }

    /// Builds the declaration mirroring an engine [`PricingModel`].
    pub fn from_engine(p: &PricingModel) -> Self {
        PricingDecl {
            per_vcpu_ms: p.per_vcpu_ms,
            per_mb_ms: p.per_mb_ms,
            per_request: p.per_request,
        }
    }
}

impl SpaceDecl {
    /// Converts to the engine's [`ResourceSpace`].
    pub fn to_engine(&self) -> ResourceSpace {
        ResourceSpace {
            min_vcpu: self.min_vcpu,
            max_vcpu: self.max_vcpu,
            vcpu_step: self.vcpu_step,
            min_memory_mb: self.min_memory_mb,
            max_memory_mb: self.max_memory_mb,
            memory_step_mb: self.memory_step_mb,
        }
    }

    /// Builds the declaration mirroring an engine [`ResourceSpace`].
    pub fn from_engine(s: &ResourceSpace) -> Self {
        SpaceDecl {
            min_vcpu: s.min_vcpu,
            max_vcpu: s.max_vcpu,
            vcpu_step: s.vcpu_step,
            min_memory_mb: s.min_memory_mb,
            max_memory_mb: s.max_memory_mb,
            memory_step_mb: s.memory_step_mb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kebab_enums_round_trip_through_values() {
        for (decl, text) in [
            (AffinityDecl::CpuBound, "cpu-bound"),
            (AffinityDecl::MemoryBound, "memory-bound"),
            (AffinityDecl::IoBound, "io-bound"),
            (AffinityDecl::Balanced, "balanced"),
        ] {
            let v = decl.to_value();
            assert_eq!(v, Value::Str(text.to_string()));
            assert_eq!(AffinityDecl::from_value(&v).unwrap(), decl);
        }
        assert!(AffinityDecl::from_value(&Value::Str("gpu-bound".into())).is_err());
        assert!(KindDecl::from_value(&Value::Int(3)).is_err());
    }

    #[test]
    fn engine_conversions_are_inverses() {
        for k in [
            KindDecl::Direct,
            KindDecl::Scatter,
            KindDecl::Broadcast,
            KindDecl::Gather,
        ] {
            assert_eq!(KindDecl::from(CommunicationKind::from(k)), k);
        }
        for c in [ClassDecl::Light, ClassDecl::Middle, ClassDecl::Heavy] {
            assert_eq!(ClassDecl::from(InputClass::from(c)), c);
        }
    }

    #[test]
    fn platform_decls_mirror_engine_types() {
        let cluster = ClusterDecl::from_engine(&ClusterSpec::paper_testbed());
        assert_eq!(cluster.to_engine(), ClusterSpec::paper_testbed());
        let pricing = PricingDecl::from_engine(&PricingModel::paper());
        assert_eq!(pricing.to_engine(), PricingModel::paper());
        let space = SpaceDecl::from_engine(&ResourceSpace::paper());
        assert_eq!(space.to_engine(), ResourceSpace::paper());
    }
}
