//! Reading and writing scenario specs as YAML or JSON text and files.

use std::path::Path;

use serde::Serialize;

use crate::error::SpecError;
use crate::schema::ScenarioSpec;

/// Serialization format of a scenario file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecFormat {
    /// Block-style YAML (the default, human-friendly form).
    Yaml,
    /// Pretty-printed JSON.
    Json,
}

impl SpecFormat {
    /// Picks the format for a path from its extension (`.json` is JSON,
    /// everything else YAML).
    pub fn for_path(path: &Path) -> Self {
        match path.extension().and_then(|e| e.to_str()) {
            Some("json") => SpecFormat::Json,
            _ => SpecFormat::Yaml,
        }
    }

    /// Canonical file extension.
    pub fn extension(&self) -> &'static str {
        match self {
            SpecFormat::Yaml => "yaml",
            SpecFormat::Json => "json",
        }
    }

    /// Sniffs the format of raw spec bytes: JSON iff the first
    /// non-whitespace byte is `{`, YAML otherwise (YAML documents start
    /// with a key, a comment or a `---` marker; a YAML flow mapping at the
    /// top level would be valid JSON anyway).
    pub fn sniff(bytes: &[u8]) -> Self {
        match bytes.iter().find(|b| !b.is_ascii_whitespace()) {
            Some(b'{') => SpecFormat::Json,
            _ => SpecFormat::Yaml,
        }
    }
}

/// Parses a spec from YAML text.
///
/// # Errors
///
/// Returns [`SpecError::Parse`] on malformed text or schema mismatches.
pub fn from_yaml_str(text: &str) -> Result<ScenarioSpec, SpecError> {
    serde_yaml::from_str(text).map_err(|e| SpecError::Parse(e.to_string()))
}

/// Parses a spec from JSON text.
///
/// # Errors
///
/// Returns [`SpecError::Parse`] on malformed text or schema mismatches.
pub fn from_json_str(text: &str) -> Result<ScenarioSpec, SpecError> {
    serde_json::from_str(text).map_err(|e| SpecError::Parse(e.to_string()))
}

/// Parses a spec from raw in-memory bytes, sniffing the format with
/// [`SpecFormat::sniff`] — the disk-free entry point used by the serving
/// layer for uploaded scenario bodies.
///
/// # Errors
///
/// Returns [`SpecError::Parse`] on non-UTF-8 input, malformed text or
/// schema mismatches.
pub fn from_slice(bytes: &[u8]) -> Result<ScenarioSpec, SpecError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| SpecError::Parse(format!("spec is not valid utf-8: {e}")))?;
    match SpecFormat::sniff(bytes) {
        SpecFormat::Yaml => from_yaml_str(text),
        SpecFormat::Json => from_json_str(text),
    }
}

/// Serializes a spec in the given format.
pub fn to_string(spec: &ScenarioSpec, format: SpecFormat) -> String {
    match format {
        SpecFormat::Yaml => serde_yaml::to_string(spec).expect("YAML emit is infallible"),
        SpecFormat::Json => {
            let mut s = serde_json::to_string_pretty(spec).expect("JSON emit is infallible");
            s.push('\n');
            s
        }
    }
}

/// Serializes any serde value in the given format (used by the CLI for
/// reports).
pub fn value_to_string<T: Serialize>(value: &T, format: SpecFormat) -> String {
    match format {
        SpecFormat::Yaml => serde_yaml::to_string(value).expect("YAML emit is infallible"),
        SpecFormat::Json => {
            let mut s = serde_json::to_string_pretty(value).expect("JSON emit is infallible");
            s.push('\n');
            s
        }
    }
}

/// Loads a spec from a file, picking the format from the extension.
///
/// # Errors
///
/// Returns [`SpecError::Io`] when the file cannot be read and
/// [`SpecError::Parse`] when its content is malformed.
pub fn load(path: impl AsRef<Path>) -> Result<ScenarioSpec, SpecError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| SpecError::Io(format!("{}: {e}", path.display())))?;
    match SpecFormat::for_path(path) {
        SpecFormat::Yaml => from_yaml_str(&text),
        SpecFormat::Json => from_json_str(&text),
    }
    .map_err(|e| match e {
        SpecError::Parse(msg) => SpecError::Parse(format!("{}: {msg}", path.display())),
        other => other,
    })
}

/// Writes a spec to a file in the format implied by the extension.
///
/// # Errors
///
/// Returns [`SpecError::Io`] when the file cannot be written.
pub fn save(spec: &ScenarioSpec, path: impl AsRef<Path>) -> Result<(), SpecError> {
    let path = path.as_ref();
    let text = to_string(spec, SpecFormat::for_path(path));
    atomic_write(path, text.as_bytes())
        .map_err(|e| SpecError::Io(format!("{}: {e}", path.display())))
}

/// Writes `bytes` to `path` atomically: the content goes to a hidden
/// sibling temp file first, is fsynced, and is then renamed over `path`
/// (with a best-effort directory fsync so the rename itself is durable).
/// Readers either see the old content or the complete new content, never
/// a torn file — the write discipline every durable output of the
/// workspace (spec exporters, bench reports, daemon WAL snapshots and
/// session checkpoints) goes through.
///
/// # Errors
///
/// Returns the underlying I/O error; on failure the temp file is removed
/// and `path` is left untouched.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;

    let path = path.as_ref();
    let dir = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent,
        _ => Path::new("."),
    };
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| std::io::Error::other(format!("{}: no file name", path.display())))?;
    // The process id keeps concurrent writers (two daemons pointed at
    // the same directory by mistake) from clobbering each other's temp
    // file; the rename still serializes the final content.
    let tmp = dir.join(format!(".{name}.{}.tmp", std::process::id()));
    let write = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        Ok(())
    })();
    if let Err(e) = write {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    // Directory fsync makes the rename durable across power loss; not
    // every platform supports opening a directory, so this stays
    // best-effort.
    if let Ok(dir_file) = std::fs::File::open(dir) {
        let _ = dir_file.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::builtin_specs;

    #[test]
    fn yaml_and_json_round_trip_builtin_specs() {
        for (name, spec) in builtin_specs() {
            let yaml = to_string(&spec, SpecFormat::Yaml);
            let from_yaml = from_yaml_str(&yaml).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(from_yaml, spec, "{name} YAML round trip");
            let json = to_string(&spec, SpecFormat::Json);
            let from_json = from_json_str(&json).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(from_json, spec, "{name} JSON round trip");
        }
    }

    #[test]
    fn from_slice_sniffs_yaml_and_json() {
        for (name, spec) in builtin_specs() {
            let yaml = to_string(&spec, SpecFormat::Yaml);
            assert_eq!(SpecFormat::sniff(yaml.as_bytes()), SpecFormat::Yaml);
            assert_eq!(
                from_slice(yaml.as_bytes()).unwrap_or_else(|e| panic!("{name}: {e}")),
                spec,
                "{name} YAML from_slice"
            );
            let json = to_string(&spec, SpecFormat::Json);
            assert_eq!(SpecFormat::sniff(json.as_bytes()), SpecFormat::Json);
            // Leading whitespace must not defeat the sniffer.
            let padded = format!("\n  \t{json}");
            assert_eq!(SpecFormat::sniff(padded.as_bytes()), SpecFormat::Json);
            assert_eq!(
                from_slice(padded.as_bytes()).unwrap_or_else(|e| panic!("{name}: {e}")),
                spec,
                "{name} JSON from_slice"
            );
            // The inherent method is the same entry point.
            assert_eq!(ScenarioSpec::from_slice(json.as_bytes()).unwrap(), spec);
        }
    }

    #[test]
    fn from_slice_rejects_bad_input_without_touching_disk() {
        assert!(from_slice(&[0xff, 0xfe, 0x00]).is_err(), "non-utf8");
        let err = from_slice(b"{ not json").unwrap_err();
        assert!(err.to_string().contains("parse"), "{err}");
        assert!(
            from_slice(b"version: 1\nname: t\n").is_err(),
            "missing fields"
        );
    }

    #[test]
    fn format_detection_follows_extension() {
        assert_eq!(SpecFormat::for_path(Path::new("x.yaml")), SpecFormat::Yaml);
        assert_eq!(SpecFormat::for_path(Path::new("x.yml")), SpecFormat::Yaml);
        assert_eq!(SpecFormat::for_path(Path::new("x.json")), SpecFormat::Json);
        assert_eq!(SpecFormat::for_path(Path::new("noext")), SpecFormat::Yaml);
    }

    #[test]
    fn unknown_fields_are_rejected_with_context() {
        let err = from_yaml_str(
            "version: 1\nname: t\nslo_ms: 1.0\nfunctions: []\nedges: []\ntypo_field: 3\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("typo_field"), "{err}");
    }

    #[test]
    fn missing_fields_are_reported() {
        let err = from_yaml_str("version: 1\nname: t\n").unwrap_err();
        assert!(err.to_string().contains("slo_ms"), "{err}");
    }

    #[test]
    fn atomic_write_replaces_content_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join("aarc-spec-atomic-write-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.txt");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer content").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer content");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_into_missing_directory_fails_cleanly() {
        let path = std::env::temp_dir()
            .join("aarc-spec-atomic-write-missing")
            .join("nested")
            .join("out.txt");
        assert!(atomic_write(&path, b"x").is_err());
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("aarc-spec-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, spec) in builtin_specs() {
            for format in [SpecFormat::Yaml, SpecFormat::Json] {
                let path = dir.join(format!("{name}.{}", format.extension()));
                save(&spec, &path).unwrap();
                assert_eq!(load(&path).unwrap(), spec);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
