//! Compiler from a validated [`ScenarioSpec`] into the engine's executable
//! types: `aarc_workflow::Workflow`, `aarc_simulator::WorkflowEnvironment`
//! and the `aarc_workloads::Workload` bundle.

use aarc_simulator::{
    ClusterSpec, FunctionProfile, InputSpec, PricingModel, ProfileSet, ResourceConfig,
    ResourceSpace, WorkflowEnvironment,
};
use aarc_workflow::{NodeId, Workflow, WorkflowBuilder};
use aarc_workloads::Workload;

use crate::error::SpecError;
use crate::schema::{ProfileDecl, ScenarioSpec, DEFAULT_PAYLOAD_MB};
use crate::validate::validate;

pub use aarc_simulator::InputClass as EngineInputClass;

/// A compiled scenario: the executable workload plus the request-mix
/// weights of its input-size distribution (which the engine types do not
/// carry, but the exporter must preserve).
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    workload: Workload,
    input_mix: Vec<(EngineInputClass, f64)>,
}

impl CompiledScenario {
    /// The executable workload (environment + SLO + input classes).
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Consumes the scenario, returning the workload.
    pub fn into_workload(self) -> Workload {
        self.workload
    }

    /// Request-mix weights per declared input class, in declaration order.
    pub fn input_mix(&self) -> &[(EngineInputClass, f64)] {
        &self.input_mix
    }

    /// Wraps an engine workload (e.g. a built-in one) so it can be
    /// exported; every declared input class gets weight 1.
    pub fn from_workload(workload: Workload) -> Self {
        let input_mix = workload
            .input_classes()
            .keys()
            .map(|&class| (class, 1.0))
            .collect();
        CompiledScenario {
            workload,
            input_mix,
        }
    }
}

fn build_profile(name: &str, p: &ProfileDecl) -> FunctionProfile {
    let mut b = FunctionProfile::builder(name)
        .serial_ms(p.serial_ms)
        .parallel_ms(p.parallel_ms)
        .io_ms(p.io_ms)
        .mem_input_sensitivity(p.mem_input_sensitivity);
    if let Some(v) = p.max_parallelism {
        b = b.max_parallelism(v);
    }
    if let Some(v) = p.working_set_mb {
        b = b.working_set_mb(v);
    }
    if let Some(v) = p.mem_floor_mb {
        b = b.mem_floor_mb(v);
    }
    if let Some(v) = p.mem_penalty_factor {
        b = b.mem_penalty_factor(v);
    }
    if let Some(v) = p.input_sensitivity {
        b = b.input_sensitivity(v);
    }
    b.build()
}

/// Compiles a spec into an executable scenario, validating it first.
///
/// # Errors
///
/// Returns [`SpecError::Invalid`] for semantic problems and
/// [`SpecError::Compile`] if the engine rejects the (validated) spec — the
/// latter indicates a validator gap.
pub fn compile(spec: &ScenarioSpec) -> Result<CompiledScenario, SpecError> {
    validate(spec)?;

    // Workflow topology.
    let mut builder = WorkflowBuilder::new(&spec.name);
    let ids: Vec<NodeId> = spec
        .functions
        .iter()
        .map(|f| builder.add_function_with_affinity(&f.name, f.affinity.into()))
        .collect();
    let index = |name: &str| -> NodeId {
        let pos = spec
            .functions
            .iter()
            .position(|f| f.name == name)
            .expect("validated edge endpoints exist");
        ids[pos]
    };
    for e in &spec.edges {
        builder
            .add_edge_with(
                index(&e.from),
                index(&e.to),
                e.payload_mb.unwrap_or(DEFAULT_PAYLOAD_MB),
                e.kind.into(),
            )
            .map_err(|err| SpecError::Compile(err.to_string()))?;
    }
    let workflow: Workflow = builder
        .build()
        .map_err(|err| SpecError::Compile(err.to_string()))?;

    // Profiles.
    let mut profiles = ProfileSet::new();
    for (id, f) in ids.iter().zip(&spec.functions) {
        profiles.insert(*id, build_profile(&f.name, &f.profile));
    }

    // Environment.
    let space = spec
        .resource_space
        .as_ref()
        .map(|s| s.to_engine())
        .unwrap_or_else(ResourceSpace::paper);
    let mut env_builder = WorkflowEnvironment::builder(workflow, profiles)
        .cluster(
            spec.cluster
                .as_ref()
                .map(|c| c.to_engine())
                .unwrap_or_else(ClusterSpec::paper_testbed),
        )
        .pricing(
            spec.pricing
                .as_ref()
                .map(|p| p.to_engine())
                .unwrap_or_else(PricingModel::paper),
        )
        .space(space)
        .base_config(
            spec.base_config
                .as_ref()
                .map(|b| ResourceConfig::new(b.vcpu, b.memory_mb))
                .unwrap_or_else(|| space.max_config()),
        )
        .seed(spec.seed);
    if let Some(input) = &spec.input {
        env_builder = env_builder.input(InputSpec::new(input.scale, input.payload_mb));
    }
    let env: WorkflowEnvironment = env_builder
        .build()
        .map_err(|err| SpecError::Compile(err.to_string()))?;

    // Workload with the declared input-size distribution.
    let mut workload = Workload::new(&spec.name, env, spec.slo_ms);
    let mut input_mix = Vec::with_capacity(spec.input_classes.len());
    for entry in &spec.input_classes {
        let class: EngineInputClass = entry.class.into();
        workload = workload.with_input_class(
            class,
            InputSpec::new(entry.input.scale, entry.input.payload_mb),
        );
        input_mix.push((class, entry.weight.unwrap_or(1.0)));
    }

    Ok(CompiledScenario {
        workload,
        input_mix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::from_yaml_str;

    const CHAIN: &str = "\
version: 1
name: chain
slo_ms: 60000.0
seed: 5
functions:
  - name: crunch
    affinity: cpu-bound
    profile:
      parallel_ms: 30000.0
      max_parallelism: 4.0
  - name: store
    affinity: io-bound
    profile:
      serial_ms: 2000.0
      io_ms: 500.0
edges:
  - from: crunch
    to: store
    payload_mb: 16.0
    kind: direct
input_classes:
  - class: light
    input:
      scale: 0.5
      payload_mb: 2.0
    weight: 3.0
  - class: heavy
    input:
      scale: 2.0
      payload_mb: 64.0
";

    #[test]
    fn compiles_and_executes() {
        let spec = from_yaml_str(CHAIN).unwrap();
        let scenario = compile(&spec).unwrap();
        let wl = scenario.workload();
        assert_eq!(wl.name(), "chain");
        assert_eq!(wl.len(), 2);
        assert_eq!(wl.slo_ms(), 60_000.0);
        assert_eq!(wl.env().seed(), 5);
        let report = wl.env().execute(&wl.env().base_configs()).unwrap();
        assert!(report.makespan_ms() > 0.0);
        assert!(wl.is_input_sensitive());
        assert_eq!(scenario.input_mix().len(), 2);
        assert_eq!(scenario.input_mix()[0].1, 3.0);
        assert_eq!(scenario.input_mix()[1].1, 1.0);
    }

    #[test]
    fn affinity_and_edges_survive_compilation() {
        let spec = from_yaml_str(CHAIN).unwrap();
        let scenario = compile(&spec).unwrap();
        let wf = scenario.workload().env().workflow();
        let crunch = wf.find("crunch").unwrap();
        assert_eq!(
            wf.function(crunch).affinity(),
            aarc_workflow::ResourceAffinity::CpuBound
        );
        let store = wf.find("store").unwrap();
        let edge = wf.edge(crunch, store).unwrap();
        assert_eq!(edge.payload_mb, 16.0);
    }

    #[test]
    fn invalid_specs_do_not_compile() {
        let mut spec = from_yaml_str(CHAIN).unwrap();
        spec.slo_ms = -1.0;
        assert!(matches!(compile(&spec), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn profile_defaults_match_the_builder() {
        let spec = from_yaml_str(
            "version: 1\nname: one\nslo_ms: 1000.0\nfunctions:\n  - name: f\n    profile:\n      serial_ms: 100.0\nedges: []\n",
        )
        .unwrap();
        let scenario = compile(&spec).unwrap();
        let env = scenario.workload().env();
        let id = env.workflow().find("f").unwrap();
        let profile = env.profiles().get(id).unwrap();
        let reference = FunctionProfile::builder("f").serial_ms(100.0).build();
        assert_eq!(profile, &reference);
    }
}
