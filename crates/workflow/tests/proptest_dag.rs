//! Property-based tests for the DAG, critical-path and decomposition
//! invariants.

use aarc_workflow::critical_path::critical_path;
use aarc_workflow::subpath::decompose;
use aarc_workflow::{Dag, NodeId};
use proptest::prelude::*;

/// Strategy: a random DAG built by only ever adding edges from lower to
/// higher node indices (guaranteeing acyclicity by construction) plus random
/// positive node weights.
fn arb_dag() -> impl Strategy<Value = (Dag<()>, Vec<f64>)> {
    (2usize..20).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(n * 3));
        let weights = proptest::collection::vec(0.1f64..500.0, n);
        (Just(n), edges, weights).prop_map(|(n, edges, weights)| {
            let mut dag = Dag::new();
            for _ in 0..n {
                dag.add_node(());
            }
            for (a, b) in edges {
                if a < b {
                    // Ignore duplicates; Dag rejects them.
                    let _ = dag.add_edge(NodeId::new(a), NodeId::new(b));
                }
            }
            (dag, weights)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The topological order contains every node exactly once and respects
    /// every edge.
    #[test]
    fn topological_order_is_a_valid_permutation((dag, _w) in arb_dag()) {
        let order = dag.topological_order();
        prop_assert_eq!(order.len(), dag.len());
        let mut pos = vec![usize::MAX; dag.len()];
        for (i, id) in order.iter().enumerate() {
            pos[id.index()] = i;
        }
        prop_assert!(pos.iter().all(|&p| p != usize::MAX));
        for (from, to) in dag.edges() {
            prop_assert!(pos[from.index()] < pos[to.index()]);
        }
    }

    /// The critical path is a real path (consecutive nodes are connected by
    /// edges) and its length equals the sum of its member weights.
    #[test]
    fn critical_path_is_a_connected_path((dag, w) in arb_dag()) {
        let cp = critical_path(&dag, |id| w[id.index()]);
        prop_assert!(!cp.is_empty());
        for pair in cp.nodes().windows(2) {
            prop_assert!(dag.successors(pair[0]).contains(&pair[1]));
        }
        let sum: f64 = cp.nodes().iter().map(|n| w[n.index()]).sum();
        prop_assert!((cp.length() - sum).abs() < 1e-6);
    }

    /// No other source-to-sink chain is heavier than the critical path.
    /// (Verified against a brute-force DP over the DAG.)
    #[test]
    fn critical_path_is_the_longest((dag, w) in arb_dag()) {
        let cp = critical_path(&dag, |id| w[id.index()]);
        // Brute-force longest path by DP over topological order.
        let order = dag.topological_order();
        let mut dist = vec![0.0f64; dag.len()];
        let mut best = 0.0f64;
        for &v in &order {
            let incoming = dag
                .predecessors(v)
                .iter()
                .map(|p| dist[p.index()])
                .fold(0.0f64, f64::max);
            dist[v.index()] = incoming + w[v.index()];
            best = best.max(dist[v.index()]);
        }
        prop_assert!((cp.length() - best).abs() < 1e-6);
    }

    /// The decomposition covers every node exactly once and detour interiors
    /// never overlap the critical path.
    #[test]
    fn decomposition_partitions_the_dag((dag, w) in arb_dag()) {
        let d = decompose(&dag, |id| w[id.index()]);
        let mut seen = vec![0usize; dag.len()];
        for &n in d.critical.nodes() {
            seen[n.index()] += 1;
        }
        for sp in &d.subpaths {
            for &n in &sp.interior {
                seen[n.index()] += 1;
            }
        }
        // Every node covered exactly once.
        prop_assert!(seen.iter().all(|&c| c == 1), "coverage counts: {:?}", seen);
        // Interiors are connected chains.
        for sp in &d.subpaths {
            for pair in sp.interior.windows(2) {
                prop_assert!(dag.successors(pair[0]).contains(&pair[1]));
            }
        }
    }

    /// Anchors of every detour are covered before the detour is extracted,
    /// i.e. they are on the critical path or in an earlier sub-path.
    #[test]
    fn detour_anchors_are_previously_covered((dag, w) in arb_dag()) {
        let d = decompose(&dag, |id| w[id.index()]);
        let mut covered: Vec<bool> = vec![false; dag.len()];
        for &n in d.critical.nodes() {
            covered[n.index()] = true;
        }
        for sp in &d.subpaths {
            if let Some(s) = sp.start_anchor {
                prop_assert!(covered[s.index()]);
            }
            if let Some(e) = sp.end_anchor {
                prop_assert!(covered[e.index()]);
            }
            for &n in &sp.interior {
                covered[n.index()] = true;
            }
        }
    }
}
