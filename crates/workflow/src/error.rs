//! Error types for workflow construction and analysis.

use std::error::Error;
use std::fmt;

use crate::dag::NodeId;

/// Errors produced while building or analysing a workflow DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkflowError {
    /// An edge refers to a node index that does not exist.
    UnknownNode(NodeId),
    /// Adding the edge would introduce a cycle.
    CycleDetected {
        /// Source node of the offending edge.
        from: NodeId,
        /// Destination node of the offending edge.
        to: NodeId,
    },
    /// The same edge was added twice.
    DuplicateEdge {
        /// Source node of the duplicated edge.
        from: NodeId,
        /// Destination node of the duplicated edge.
        to: NodeId,
    },
    /// A self-loop (`v -> v`) was requested.
    SelfLoop(NodeId),
    /// The workflow contains no functions.
    Empty,
    /// Two functions share the same name, which would make configuration
    /// reports ambiguous.
    DuplicateFunctionName(String),
    /// The graph has no entry node (every node has a predecessor), which can
    /// only happen for cyclic graphs and is reported defensively.
    NoEntryNode,
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::UnknownNode(id) => write!(f, "unknown node id {}", id.index()),
            WorkflowError::CycleDetected { from, to } => write!(
                f,
                "adding edge {} -> {} would create a cycle",
                from.index(),
                to.index()
            ),
            WorkflowError::DuplicateEdge { from, to } => {
                write!(f, "edge {} -> {} already exists", from.index(), to.index())
            }
            WorkflowError::SelfLoop(id) => {
                write!(f, "self-loop on node {} is not allowed", id.index())
            }
            WorkflowError::Empty => write!(f, "workflow contains no functions"),
            WorkflowError::DuplicateFunctionName(name) => {
                write!(f, "duplicate function name `{name}`")
            }
            WorkflowError::NoEntryNode => write!(f, "workflow has no entry node"),
        }
    }
}

impl Error for WorkflowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(WorkflowError, &str)> = vec![
            (
                WorkflowError::UnknownNode(NodeId::new(3)),
                "unknown node id 3",
            ),
            (
                WorkflowError::CycleDetected {
                    from: NodeId::new(1),
                    to: NodeId::new(0),
                },
                "adding edge 1 -> 0 would create a cycle",
            ),
            (
                WorkflowError::DuplicateEdge {
                    from: NodeId::new(0),
                    to: NodeId::new(1),
                },
                "edge 0 -> 1 already exists",
            ),
            (
                WorkflowError::SelfLoop(NodeId::new(2)),
                "self-loop on node 2 is not allowed",
            ),
            (WorkflowError::Empty, "workflow contains no functions"),
            (
                WorkflowError::DuplicateFunctionName("f".into()),
                "duplicate function name `f`",
            ),
            (WorkflowError::NoEntryNode, "workflow has no entry node"),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WorkflowError>();
    }
}
