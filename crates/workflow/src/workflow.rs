//! The [`Workflow`] type: a named DAG of serverless functions with edge
//! transfer metadata.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::dag::{Dag, NodeId};
use crate::edge::{CommunicationKind, Edge};
use crate::node::FunctionSpec;

/// A serverless workflow: a DAG of [`FunctionSpec`] nodes plus per-edge
/// communication metadata.
///
/// Workflows are constructed with [`WorkflowBuilder`](crate::WorkflowBuilder)
/// which validates acyclicity and name uniqueness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    name: String,
    dag: Dag<FunctionSpec>,
    edges: Vec<Edge>,
}

impl Workflow {
    pub(crate) fn from_parts(name: String, dag: Dag<FunctionSpec>, edges: Vec<Edge>) -> Self {
        Workflow { name, dag, edges }
    }

    /// Workflow name, e.g. `"chatbot"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying DAG.
    pub fn dag(&self) -> &Dag<FunctionSpec> {
        &self.dag
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.dag.len()
    }

    /// Returns `true` if the workflow has no functions (never true for built
    /// workflows).
    pub fn is_empty(&self) -> bool {
        self.dag.is_empty()
    }

    /// The function specification of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this workflow.
    pub fn function(&self, id: NodeId) -> &FunctionSpec {
        self.dag.node(id)
    }

    /// Looks a function up by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.dag
            .iter()
            .find(|(_, spec)| spec.name() == name)
            .map(|(id, _)| id)
    }

    /// Iterates over `(NodeId, &FunctionSpec)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &FunctionSpec)> {
        self.dag.iter()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.dag.node_ids()
    }

    /// Edge metadata, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Returns the edge metadata for `from -> to` if that edge exists.
    pub fn edge(&self, from: NodeId, to: NodeId) -> Option<&Edge> {
        self.edges.iter().find(|e| e.from == from && e.to == to)
    }

    /// Entry functions (no predecessors).
    pub fn entries(&self) -> Vec<NodeId> {
        self.dag.sources()
    }

    /// Exit functions (no successors).
    pub fn exits(&self) -> Vec<NodeId> {
        self.dag.sinks()
    }

    /// Topological order of the functions.
    pub fn topological_order(&self) -> Vec<NodeId> {
        self.dag.topological_order()
    }

    /// Map from function name to node id (names are unique by construction).
    pub fn name_index(&self) -> HashMap<String, NodeId> {
        self.dag
            .iter()
            .map(|(id, spec)| (spec.name().to_owned(), id))
            .collect()
    }

    /// Summary of the communication patterns present in the workflow,
    /// e.g. "scatter" if any scatter edge exists.
    pub fn communication_kinds(&self) -> Vec<CommunicationKind> {
        let mut kinds: Vec<CommunicationKind> = self.edges.iter().map(|e| e.kind).collect();
        kinds.sort_by_key(|k| format!("{k}"));
        kinds.dedup();
        kinds
    }
}

impl std::fmt::Display for Workflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "workflow `{}` ({} functions, {} edges)",
            self.name,
            self.len(),
            self.edges.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::WorkflowBuilder;
    use crate::edge::CommunicationKind;

    #[test]
    fn lookup_and_iteration() {
        let mut b = WorkflowBuilder::new("wf");
        let a = b.add_function("start");
        let c = b.add_function("classify");
        b.add_edge(a, c).unwrap();
        let wf = b.build().unwrap();

        assert_eq!(wf.name(), "wf");
        assert_eq!(wf.len(), 2);
        assert_eq!(wf.find("classify"), Some(c));
        assert_eq!(wf.find("missing"), None);
        assert_eq!(wf.entries(), vec![a]);
        assert_eq!(wf.exits(), vec![c]);
        assert_eq!(wf.name_index().len(), 2);
        assert_eq!(wf.to_string(), "workflow `wf` (2 functions, 1 edges)");
    }

    #[test]
    fn edge_metadata_lookup() {
        let mut b = WorkflowBuilder::new("wf");
        let a = b.add_function("split");
        let c = b.add_function("extract");
        b.add_edge_with(a, c, 16.0, CommunicationKind::Scatter)
            .unwrap();
        let wf = b.build().unwrap();
        let e = wf.edge(a, c).unwrap();
        assert_eq!(e.kind, CommunicationKind::Scatter);
        assert_eq!(e.payload_mb, 16.0);
        assert!(wf.edge(c, a).is_none());
        assert_eq!(wf.communication_kinds(), vec![CommunicationKind::Scatter]);
    }
}
