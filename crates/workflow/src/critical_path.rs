//! Weighted critical-path extraction (the paper's `find_critical_path`).

use serde::{Deserialize, Serialize};

use crate::dag::{Dag, NodeId};

/// The critical (longest weighted) path of a workflow DAG.
///
/// Node weights are the profiled runtimes of the functions; the critical path
/// is the chain of dependent functions whose total runtime determines the
/// end-to-end latency of the workflow and therefore receives the end-to-end
/// SLO during configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPath {
    nodes: Vec<NodeId>,
    length: f64,
}

impl CriticalPath {
    /// The nodes on the path, ordered from entry to exit.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Total weight (sum of node weights) along the path.
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Returns `true` if `id` lies on the critical path.
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.contains(&id)
    }

    /// Position of `id` on the path, if present.
    pub fn position(&self, id: NodeId) -> Option<usize> {
        self.nodes.iter().position(|&n| n == id)
    }

    /// Number of nodes on the path.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the path is empty (only possible for empty DAGs).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Computes the critical path of `dag` under the node-weight function
/// `weight`.
///
/// Weights are interpreted as function runtimes (any non-negative unit). The
/// returned path maximises the sum of node weights among all source-to-sink
/// paths. Ties are broken deterministically towards lower node indices so
/// repeated invocations return the same path.
///
/// # Example
///
/// ```
/// use aarc_workflow::{Dag, critical_path::critical_path};
///
/// let mut g = Dag::new();
/// let a = g.add_node("a");
/// let b = g.add_node("b");
/// let c = g.add_node("c");
/// let d = g.add_node("d");
/// g.add_edge(a, b).unwrap();
/// g.add_edge(a, c).unwrap();
/// g.add_edge(b, d).unwrap();
/// g.add_edge(c, d).unwrap();
///
/// // b (40) is heavier than c (10), so the critical path goes through b.
/// let weights = [5.0, 40.0, 10.0, 5.0];
/// let cp = critical_path(&g, |id| weights[id.index()]);
/// assert_eq!(cp.nodes(), &[a, b, d]);
/// assert!((cp.length() - 50.0).abs() < 1e-9);
/// ```
pub fn critical_path<N>(dag: &Dag<N>, weight: impl Fn(NodeId) -> f64) -> CriticalPath {
    if dag.is_empty() {
        return CriticalPath {
            nodes: Vec::new(),
            length: 0.0,
        };
    }
    let order = dag.topological_order();
    let n = dag.len();
    // dist[v] = weight of the heaviest path ending at v (inclusive);
    // hops[v] = its node count, used to break weight ties towards longer
    // paths so zero-weight prefixes/suffixes are still included.
    let mut dist = vec![0.0_f64; n];
    let mut hops = vec![1_usize; n];
    let mut best_pred: Vec<Option<NodeId>> = vec![None; n];
    // Lexicographic "is (da, ha) better than (db, hb)" with an absolute
    // tolerance on the weight comparison and node-index tie-break for
    // determinism.
    let better = |da: f64, ha: usize, ia: usize, db: f64, hb: usize, ib: usize| {
        if da > db + 1e-12 {
            return true;
        }
        if (da - db).abs() <= 1e-12 {
            if ha > hb {
                return true;
            }
            if ha == hb {
                return ia < ib;
            }
        }
        false
    };
    for &v in &order {
        let w = weight(v);
        debug_assert!(w.is_finite(), "node weight must be finite");
        let mut pred: Option<NodeId> = None;
        for &p in dag.predecessors(v) {
            let take = match pred {
                None => true,
                Some(q) => better(
                    dist[p.index()],
                    hops[p.index()],
                    p.index(),
                    dist[q.index()],
                    hops[q.index()],
                    q.index(),
                ),
            };
            if take {
                pred = Some(p);
            }
        }
        let (base_dist, base_hops) = match pred {
            Some(p) => (dist[p.index()], hops[p.index()]),
            None => (0.0, 0),
        };
        dist[v.index()] = base_dist + w;
        hops[v.index()] = base_hops + 1;
        best_pred[v.index()] = pred;
    }
    // The critical path ends at the node with the largest distance (ties
    // broken towards more hops, then lower index).
    let mut end = order[0];
    for &v in &order {
        if better(
            dist[v.index()],
            hops[v.index()],
            v.index(),
            dist[end.index()],
            hops[end.index()],
            end.index(),
        ) {
            end = v;
        }
    }
    // Backtrack.
    let mut nodes = vec![end];
    let mut cur = end;
    while let Some(p) = best_pred[cur.index()] {
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    CriticalPath {
        length: dist[end.index()],
        nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights_fn(weights: &[f64]) -> impl Fn(NodeId) -> f64 + '_ {
        move |id| weights[id.index()]
    }

    #[test]
    fn single_node() {
        let mut g = Dag::new();
        let a = g.add_node(());
        let cp = critical_path(&g, |_| 7.0);
        assert_eq!(cp.nodes(), &[a]);
        assert_eq!(cp.length(), 7.0);
        assert!(cp.contains(a));
        assert_eq!(cp.position(a), Some(0));
    }

    #[test]
    fn empty_dag_gives_empty_path() {
        let g: Dag<()> = Dag::new();
        let cp = critical_path(&g, |_| 1.0);
        assert!(cp.is_empty());
        assert_eq!(cp.length(), 0.0);
    }

    #[test]
    fn chain_takes_all_nodes() {
        let mut g = Dag::new();
        let ids: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        let cp = critical_path(&g, |_| 2.0);
        assert_eq!(cp.nodes(), ids.as_slice());
        assert!((cp.length() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn diamond_prefers_heavier_branch() {
        let mut g = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        let weights = [1.0, 10.0, 50.0, 1.0];
        let cp = critical_path(&g, weights_fn(&weights));
        assert_eq!(cp.nodes(), &[a, c, d]);
        assert!((cp.length() - 52.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_sources_and_sinks() {
        // Two independent chains; the longer one wins.
        let mut g = Dag::new();
        let a0 = g.add_node(());
        let a1 = g.add_node(());
        let b0 = g.add_node(());
        let b1 = g.add_node(());
        g.add_edge(a0, a1).unwrap();
        g.add_edge(b0, b1).unwrap();
        let weights = [1.0, 1.0, 5.0, 6.0];
        let cp = critical_path(&g, weights_fn(&weights));
        assert_eq!(cp.nodes(), &[b0, b1]);
        assert!((cp.length() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn critical_path_length_equals_sum_of_member_weights() {
        let mut g = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        let weights = [3.0, 4.0, 2.5];
        let cp = critical_path(&g, weights_fn(&weights));
        let sum: f64 = cp.nodes().iter().map(|n| weights[n.index()]).sum();
        assert!((cp.length() - sum).abs() < 1e-12);
    }

    #[test]
    fn ties_are_deterministic() {
        let mut g = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        let cp1 = critical_path(&g, |_| 1.0);
        let cp2 = critical_path(&g, |_| 1.0);
        assert_eq!(cp1, cp2);
        assert_eq!(cp1.len(), 3);
    }

    #[test]
    fn zero_weights_are_allowed() {
        let mut g = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b).unwrap();
        let cp = critical_path(&g, |_| 0.0);
        assert_eq!(cp.length(), 0.0);
        assert_eq!(cp.len(), 2);
    }
}
