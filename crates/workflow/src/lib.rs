//! Workflow DAG substrate for the AARC resource-configuration framework.
//!
//! A serverless *workflow* is a directed acyclic graph (DAG) whose nodes are
//! serverless functions and whose edges are invocation/data dependencies.
//! This crate provides:
//!
//! * [`Dag`] — a small, index-based DAG container generic over the node
//!   payload, with cycle detection, topological ordering and reachability
//!   helpers.
//! * [`Workflow`] — a `Dag<FunctionSpec>` describing a serverless workflow,
//!   built through [`WorkflowBuilder`].
//! * [`critical_path`](critical_path::critical_path) — weighted longest-path
//!   extraction (the paper's `find_critical_path`).
//! * [`subpath`] — detour sub-path extraction and full path decomposition
//!   (the paper's `find_detour_subpath`), which the Graph-Centric Scheduler
//!   consumes.
//! * [`patterns`] — constructors for the communication patterns the paper
//!   discusses (chains, scatter, broadcast, diamonds and layered random
//!   DAGs).
//!
//! # Example
//!
//! ```
//! use aarc_workflow::{WorkflowBuilder, critical_path::critical_path};
//!
//! # fn main() -> Result<(), aarc_workflow::WorkflowError> {
//! let mut b = WorkflowBuilder::new("demo");
//! let split = b.add_function("split");
//! let work = b.add_function("work");
//! let merge = b.add_function("merge");
//! b.add_edge(split, work)?;
//! b.add_edge(work, merge)?;
//! let wf = b.build()?;
//!
//! // Weights (per-function runtimes in milliseconds) are supplied externally.
//! let cp = critical_path(wf.dag(), |id| 10.0 + id.index() as f64);
//! assert_eq!(cp.nodes().len(), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod critical_path;
pub mod dag;
pub mod edge;
pub mod error;
pub mod node;
pub mod patterns;
pub mod subpath;
pub mod workflow;

pub use builder::WorkflowBuilder;
pub use critical_path::{critical_path, CriticalPath};
pub use dag::{Dag, NodeId};
pub use edge::{CommunicationKind, Edge};
pub use error::WorkflowError;
pub use node::{FunctionSpec, ResourceAffinity};
pub use subpath::{decompose, DetourSubpath, PathDecomposition};
pub use workflow::Workflow;
