//! Edge metadata: communication patterns between workflow functions.

use serde::{Deserialize, Serialize};

use crate::dag::NodeId;

/// How data flows along a dependency edge.
///
/// The paper distinguishes *scatter* (a payload is partitioned across the
/// downstream fan-out, as in Video Analysis and Chatbot) from *broadcast*
/// (the full payload is replicated to every successor, as in ML Pipeline).
/// The simulator uses the kind to scale data-transfer latency with fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CommunicationKind {
    /// Point-to-point transfer of the full payload.
    #[default]
    Direct,
    /// The payload is split evenly across all successors.
    Scatter,
    /// The full payload is replicated to all successors.
    Broadcast,
    /// Successor gathers partial payloads from all predecessors.
    Gather,
}

impl std::fmt::Display for CommunicationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CommunicationKind::Direct => "direct",
            CommunicationKind::Scatter => "scatter",
            CommunicationKind::Broadcast => "broadcast",
            CommunicationKind::Gather => "gather",
        };
        f.write_str(s)
    }
}

/// A directed dependency between two workflow functions with transfer
/// metadata.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Upstream function.
    pub from: NodeId,
    /// Downstream function.
    pub to: NodeId,
    /// Communication pattern of the transfer.
    pub kind: CommunicationKind,
    /// Payload size transferred along this edge, in megabytes.
    pub payload_mb: f64,
}

impl Edge {
    /// Creates a direct edge with the given payload size.
    pub fn new(from: NodeId, to: NodeId, payload_mb: f64) -> Self {
        Edge {
            from,
            to,
            kind: CommunicationKind::Direct,
            payload_mb,
        }
    }

    /// Creates an edge with an explicit communication kind.
    pub fn with_kind(from: NodeId, to: NodeId, payload_mb: f64, kind: CommunicationKind) -> Self {
        Edge {
            from,
            to,
            kind,
            payload_mb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_constructors() {
        let e = Edge::new(NodeId::new(0), NodeId::new(1), 4.0);
        assert_eq!(e.kind, CommunicationKind::Direct);
        assert_eq!(e.payload_mb, 4.0);
        let e2 = Edge::with_kind(
            NodeId::new(0),
            NodeId::new(1),
            2.0,
            CommunicationKind::Scatter,
        );
        assert_eq!(e2.kind, CommunicationKind::Scatter);
    }

    #[test]
    fn communication_kind_display() {
        assert_eq!(CommunicationKind::Direct.to_string(), "direct");
        assert_eq!(CommunicationKind::Scatter.to_string(), "scatter");
        assert_eq!(CommunicationKind::Broadcast.to_string(), "broadcast");
        assert_eq!(CommunicationKind::Gather.to_string(), "gather");
    }

    #[test]
    fn default_kind_is_direct() {
        assert_eq!(CommunicationKind::default(), CommunicationKind::Direct);
    }
}
