//! Builder for [`Workflow`] values.

use std::collections::HashSet;

use crate::dag::{Dag, NodeId};
use crate::edge::{CommunicationKind, Edge};
use crate::error::WorkflowError;
use crate::node::{FunctionSpec, ResourceAffinity};
use crate::workflow::Workflow;

/// Incremental builder for [`Workflow`]s.
///
/// # Example
///
/// ```
/// use aarc_workflow::{WorkflowBuilder, ResourceAffinity, CommunicationKind};
///
/// # fn main() -> Result<(), aarc_workflow::WorkflowError> {
/// let mut b = WorkflowBuilder::new("video-analysis");
/// let split = b.add_function("split");
/// let extract = b.add_function_with_affinity("extract", ResourceAffinity::MemoryBound);
/// let classify = b.add_function("classify");
/// b.add_edge_with(split, extract, 64.0, CommunicationKind::Scatter)?;
/// b.add_edge(extract, classify)?;
/// let wf = b.build()?;
/// assert_eq!(wf.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct WorkflowBuilder {
    name: String,
    dag: Dag<FunctionSpec>,
    edges: Vec<Edge>,
}

impl WorkflowBuilder {
    /// Creates a builder for a workflow called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        WorkflowBuilder {
            name: name.into(),
            dag: Dag::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a function with the default (balanced) affinity annotation.
    pub fn add_function(&mut self, name: impl Into<String>) -> NodeId {
        self.dag.add_node(FunctionSpec::new(name))
    }

    /// Adds a function with an explicit affinity annotation.
    pub fn add_function_with_affinity(
        &mut self,
        name: impl Into<String>,
        affinity: ResourceAffinity,
    ) -> NodeId {
        self.dag
            .add_node(FunctionSpec::with_affinity(name, affinity))
    }

    /// Adds a plain dependency edge with a 1 MB direct payload.
    ///
    /// # Errors
    ///
    /// See [`Dag::add_edge`](crate::Dag::add_edge).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), WorkflowError> {
        self.add_edge_with(from, to, 1.0, CommunicationKind::Direct)
    }

    /// Adds a dependency edge with explicit payload size and communication
    /// kind.
    ///
    /// # Errors
    ///
    /// See [`Dag::add_edge`](crate::Dag::add_edge).
    pub fn add_edge_with(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload_mb: f64,
        kind: CommunicationKind,
    ) -> Result<(), WorkflowError> {
        self.dag.add_edge(from, to)?;
        self.edges.push(Edge::with_kind(from, to, payload_mb, kind));
        Ok(())
    }

    /// Adds a linear chain of edges through `nodes`.
    ///
    /// # Errors
    ///
    /// See [`Dag::add_edge`](crate::Dag::add_edge).
    pub fn chain(&mut self, nodes: &[NodeId]) -> Result<(), WorkflowError> {
        for pair in nodes.windows(2) {
            self.add_edge(pair[0], pair[1])?;
        }
        Ok(())
    }

    /// Finalises the workflow.
    ///
    /// # Errors
    ///
    /// Returns [`WorkflowError::Empty`] if no function was added,
    /// [`WorkflowError::DuplicateFunctionName`] if two functions share a
    /// name, and [`WorkflowError::NoEntryNode`] if no entry node exists.
    pub fn build(self) -> Result<Workflow, WorkflowError> {
        if self.dag.is_empty() {
            return Err(WorkflowError::Empty);
        }
        let mut seen = HashSet::new();
        for (_, spec) in self.dag.iter() {
            if !seen.insert(spec.name().to_owned()) {
                return Err(WorkflowError::DuplicateFunctionName(spec.name().to_owned()));
            }
        }
        if self.dag.sources().is_empty() {
            return Err(WorkflowError::NoEntryNode);
        }
        Ok(Workflow::from_parts(self.name, self.dag, self.edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_rejects_empty() {
        let b = WorkflowBuilder::new("empty");
        assert_eq!(b.build().unwrap_err(), WorkflowError::Empty);
    }

    #[test]
    fn build_rejects_duplicate_names() {
        let mut b = WorkflowBuilder::new("dup");
        b.add_function("f");
        b.add_function("f");
        assert_eq!(
            b.build().unwrap_err(),
            WorkflowError::DuplicateFunctionName("f".into())
        );
    }

    #[test]
    fn chain_builds_linear_workflow() {
        let mut b = WorkflowBuilder::new("chain");
        let ids: Vec<_> = (0..5).map(|i| b.add_function(format!("f{i}"))).collect();
        b.chain(&ids).unwrap();
        let wf = b.build().unwrap();
        assert_eq!(wf.edges().len(), 4);
        assert_eq!(wf.entries(), vec![ids[0]]);
        assert_eq!(wf.exits(), vec![ids[4]]);
    }

    #[test]
    fn single_function_workflow_is_valid() {
        let mut b = WorkflowBuilder::new("single");
        b.add_function("only");
        let wf = b.build().unwrap();
        assert_eq!(wf.len(), 1);
        assert_eq!(wf.entries(), wf.exits());
    }

    #[test]
    fn builder_propagates_cycle_errors() {
        let mut b = WorkflowBuilder::new("cyclic");
        let a = b.add_function("a");
        let c = b.add_function("b");
        b.add_edge(a, c).unwrap();
        assert!(matches!(
            b.add_edge(c, a),
            Err(WorkflowError::CycleDetected { .. })
        ));
    }
}
