//! Detour sub-path extraction (the paper's `find_detour_subpath`) and full
//! path decomposition of a workflow DAG.
//!
//! After the critical path of a workflow has been configured, every remaining
//! function lies on a *detour sub-path*: a chain of off-critical functions
//! that branches off an already-covered node (its *start anchor*) and rejoins
//! another covered node (its *end anchor*). The Graph-Centric Scheduler
//! assigns each detour a sub-SLO equal to the time window between its anchors
//! on the configured critical path, so shrinking resources on the detour can
//! never delay the critical path.

use serde::{Deserialize, Serialize};

use crate::critical_path::{critical_path, CriticalPath};
use crate::dag::{Dag, NodeId};

/// A detour sub-path of a workflow relative to a set of already-covered
/// nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetourSubpath {
    /// Covered node the detour branches off from, if the detour does not
    /// start at a workflow entry.
    pub start_anchor: Option<NodeId>,
    /// Covered node the detour rejoins, if the detour does not end at a
    /// workflow exit.
    pub end_anchor: Option<NodeId>,
    /// The not-yet-covered functions on the detour, in dependency order.
    pub interior: Vec<NodeId>,
    /// Total weight of the interior under the weights used for extraction.
    pub interior_weight: f64,
}

impl DetourSubpath {
    /// All nodes of the sub-path including anchors, in dependency order.
    ///
    /// This matches the paper's `sp`, which contains the (already scheduled)
    /// anchor functions so that Algorithm 1 can pop them and shrink the
    /// sub-SLO accordingly.
    pub fn nodes_with_anchors(&self) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(self.interior.len() + 2);
        if let Some(s) = self.start_anchor {
            v.push(s);
        }
        v.extend(self.interior.iter().copied());
        if let Some(e) = self.end_anchor {
            v.push(e);
        }
        v
    }

    /// Number of interior (not yet configured) functions.
    pub fn len(&self) -> usize {
        self.interior.len()
    }

    /// Returns `true` if the detour has no interior functions.
    pub fn is_empty(&self) -> bool {
        self.interior.is_empty()
    }
}

/// Complete decomposition of a workflow DAG into its critical path and a
/// sequence of detour sub-paths covering every remaining function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathDecomposition {
    /// The weighted critical path.
    pub critical: CriticalPath,
    /// Detour sub-paths in extraction order (heaviest first at each level).
    pub subpaths: Vec<DetourSubpath>,
}

impl PathDecomposition {
    /// Total number of functions covered (critical + all interiors).
    pub fn covered(&self) -> usize {
        self.critical.len() + self.subpaths.iter().map(DetourSubpath::len).sum::<usize>()
    }
}

/// Finds the detour sub-paths of `dag` relative to `covered`, considering
/// only nodes not in `covered` as interior candidates.
///
/// Each returned sub-path is a maximal chain of uncovered nodes whose head is
/// either a workflow entry or has a covered predecessor, and whose tail is
/// either a workflow exit or has a covered successor. Among the possible
/// chains the heaviest (by `weight`) is extracted first; extraction repeats
/// until no uncovered node can be anchored at the current level.
pub fn find_detour_subpaths<N>(
    dag: &Dag<N>,
    covered: &[NodeId],
    weight: impl Fn(NodeId) -> f64 + Copy,
) -> Vec<DetourSubpath> {
    let mut is_covered = vec![false; dag.len()];
    for &c in covered {
        is_covered[c.index()] = true;
    }
    let mut out = Vec::new();
    while let Some(sp) = heaviest_anchored_chain(dag, &is_covered, weight) {
        for &n in &sp.interior {
            is_covered[n.index()] = true;
        }
        out.push(sp);
    }
    out
}

/// Decomposes the DAG into its critical path plus detour sub-paths covering
/// every node.
///
/// This is the structural half of the paper's Algorithm 1: the scheduler in
/// `aarc-core` walks the returned decomposition, configures the critical path
/// against the end-to-end SLO and each detour against its derived sub-SLO.
///
/// # Example
///
/// ```
/// use aarc_workflow::{Dag, subpath::decompose};
///
/// let mut g = Dag::new();
/// let a = g.add_node("start");
/// let b = g.add_node("heavy");
/// let c = g.add_node("light");
/// let d = g.add_node("end");
/// g.add_edge(a, b).unwrap();
/// g.add_edge(a, c).unwrap();
/// g.add_edge(b, d).unwrap();
/// g.add_edge(c, d).unwrap();
///
/// let weights = [1.0, 10.0, 2.0, 1.0];
/// let decomp = decompose(&g, |id| weights[id.index()]);
/// assert_eq!(decomp.critical.nodes(), &[a, b, d]);
/// assert_eq!(decomp.subpaths.len(), 1);
/// assert_eq!(decomp.subpaths[0].interior, vec![c]);
/// assert_eq!(decomp.covered(), 4);
/// ```
pub fn decompose<N>(dag: &Dag<N>, weight: impl Fn(NodeId) -> f64 + Copy) -> PathDecomposition {
    let critical = critical_path(dag, weight);
    let subpaths = find_detour_subpaths(dag, critical.nodes(), weight);
    PathDecomposition { critical, subpaths }
}

/// Finds the heaviest chain of uncovered nodes that can be anchored on the
/// covered set (or on workflow entries/exits).
fn heaviest_anchored_chain<N>(
    dag: &Dag<N>,
    is_covered: &[bool],
    weight: impl Fn(NodeId) -> f64,
) -> Option<DetourSubpath> {
    let order = dag.topological_order();
    let n = dag.len();

    // A node is a valid chain head if it is uncovered and either has no
    // predecessors at all (workflow entry) or at least one covered
    // predecessor.
    let head_ok = |v: NodeId| {
        !is_covered[v.index()]
            && (dag.predecessors(v).is_empty()
                || dag.predecessors(v).iter().any(|p| is_covered[p.index()]))
    };
    // Symmetrically for tails.
    let tail_ok = |v: NodeId| {
        !is_covered[v.index()]
            && (dag.successors(v).is_empty()
                || dag.successors(v).iter().any(|s| is_covered[s.index()]))
    };

    // Longest-path DP restricted to uncovered nodes, where chains must start
    // at a valid head.
    let mut dist = vec![f64::NEG_INFINITY; n];
    let mut pred: Vec<Option<NodeId>> = vec![None; n];
    for &v in &order {
        if is_covered[v.index()] {
            continue;
        }
        let w = weight(v);
        let mut best = if head_ok(v) { 0.0 } else { f64::NEG_INFINITY };
        let mut best_pred = None;
        for &p in dag.predecessors(v) {
            if is_covered[p.index()] {
                continue;
            }
            let cand = dist[p.index()];
            if cand > best {
                best = cand;
                best_pred = Some(p);
            }
        }
        if best.is_finite() {
            dist[v.index()] = best + w;
            pred[v.index()] = best_pred;
        }
    }

    // Choose the heaviest valid tail.
    let mut end: Option<NodeId> = None;
    for &v in &order {
        if !tail_ok(v) || !dist[v.index()].is_finite() {
            continue;
        }
        if end.is_none_or(|e| dist[v.index()] > dist[e.index()]) {
            end = Some(v);
        }
    }
    let end = end?;

    // Backtrack the interior chain.
    let mut interior = vec![end];
    let mut cur = end;
    while let Some(p) = pred[cur.index()] {
        interior.push(p);
        cur = p;
    }
    interior.reverse();

    let head = interior[0];
    let start_anchor = dag
        .predecessors(head)
        .iter()
        .copied()
        .find(|p| is_covered[p.index()]);
    let end_anchor = dag
        .successors(end)
        .iter()
        .copied()
        .find(|s| is_covered[s.index()]);
    let interior_weight = interior.iter().map(|&v| weight(v)).sum();
    Some(DetourSubpath {
        start_anchor,
        end_anchor,
        interior,
        interior_weight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ML Pipeline-like broadcast DAG from the paper's Fig. 1b:
    /// start fans out to two branches which rejoin at a combine node.
    fn broadcast_dag() -> (Dag<&'static str>, Vec<NodeId>) {
        let mut g = Dag::new();
        let start = g.add_node("start");
        let train_pca = g.add_node("train_pca");
        let tune = g.add_node("param_tune");
        let test_pca = g.add_node("test_pca");
        let combine = g.add_node("combine");
        let end = g.add_node("end");
        g.add_edge(start, train_pca).unwrap();
        g.add_edge(train_pca, tune).unwrap();
        g.add_edge(start, test_pca).unwrap();
        g.add_edge(tune, combine).unwrap();
        g.add_edge(test_pca, combine).unwrap();
        g.add_edge(combine, end).unwrap();
        (g, vec![start, train_pca, tune, test_pca, combine, end])
    }

    #[test]
    fn decompose_covers_all_nodes_broadcast() {
        let (g, ids) = broadcast_dag();
        let weights = [5.0, 60.0, 40.0, 20.0, 30.0, 5.0];
        let d = decompose(&g, |id| weights[id.index()]);
        assert_eq!(
            d.critical.nodes(),
            &[ids[0], ids[1], ids[2], ids[4], ids[5]]
        );
        assert_eq!(d.subpaths.len(), 1);
        assert_eq!(d.subpaths[0].interior, vec![ids[3]]);
        assert_eq!(d.subpaths[0].start_anchor, Some(ids[0]));
        assert_eq!(d.subpaths[0].end_anchor, Some(ids[4]));
        assert_eq!(d.covered(), g.len());
    }

    #[test]
    fn multi_node_detour_is_extracted_as_one_chain() {
        // a -> b -> e (critical), a -> c -> d -> e (detour with two nodes)
        let mut g = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        let e = g.add_node(());
        g.add_edge(a, b).unwrap();
        g.add_edge(b, e).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(c, d).unwrap();
        g.add_edge(d, e).unwrap();
        let weights = [1.0, 100.0, 10.0, 10.0, 1.0];
        let decomp = decompose(&g, |id| weights[id.index()]);
        assert_eq!(decomp.critical.nodes(), &[a, b, e]);
        assert_eq!(decomp.subpaths.len(), 1);
        assert_eq!(decomp.subpaths[0].interior, vec![c, d]);
        assert_eq!(decomp.subpaths[0].interior_weight, 20.0);
    }

    #[test]
    fn nested_detours_are_extracted_level_by_level() {
        // critical: a -> b -> c; detour1: a -> d -> c; detour2: a -> e -> d
        // (e anchors on d, which only becomes covered after detour1).
        let mut g = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        let e = g.add_node(());
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(a, d).unwrap();
        g.add_edge(d, c).unwrap();
        g.add_edge(a, e).unwrap();
        g.add_edge(e, d).unwrap();
        let weights = [1.0, 100.0, 1.0, 50.0, 10.0];
        let decomp = decompose(&g, |id| weights[id.index()]);
        assert_eq!(decomp.critical.nodes(), &[a, b, c]);
        assert_eq!(decomp.covered(), 5);
        // d + e are both detours; the decomposition must cover both, either
        // as one chain (e -> d) or two chained extractions.
        let interiors: Vec<NodeId> = decomp
            .subpaths
            .iter()
            .flat_map(|sp| sp.interior.iter().copied())
            .collect();
        assert!(interiors.contains(&d));
        assert!(interiors.contains(&e));
    }

    #[test]
    fn detour_starting_at_entry_has_no_start_anchor() {
        // Two entries; the lighter entry chain becomes a detour anchored only
        // at its end.
        let mut g = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let m = g.add_node(());
        g.add_edge(a, m).unwrap();
        g.add_edge(b, m).unwrap();
        let weights = [50.0, 5.0, 1.0];
        let decomp = decompose(&g, |id| weights[id.index()]);
        assert_eq!(decomp.critical.nodes(), &[a, m]);
        assert_eq!(decomp.subpaths.len(), 1);
        assert_eq!(decomp.subpaths[0].start_anchor, None);
        assert_eq!(decomp.subpaths[0].end_anchor, Some(m));
        assert_eq!(decomp.subpaths[0].interior, vec![b]);
    }

    #[test]
    fn detour_ending_at_exit_has_no_end_anchor() {
        let mut g = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        let weights = [1.0, 50.0, 5.0];
        let decomp = decompose(&g, |id| weights[id.index()]);
        assert_eq!(decomp.critical.nodes(), &[a, b]);
        assert_eq!(decomp.subpaths[0].interior, vec![c]);
        assert_eq!(decomp.subpaths[0].start_anchor, Some(a));
        assert_eq!(decomp.subpaths[0].end_anchor, None);
    }

    #[test]
    fn chain_has_no_subpaths() {
        let mut g = Dag::new();
        let ids: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        let decomp = decompose(&g, |_| 1.0);
        assert!(decomp.subpaths.is_empty());
        assert_eq!(decomp.critical.len(), 5);
    }

    #[test]
    fn nodes_with_anchors_includes_anchors_in_order() {
        let (g, ids) = broadcast_dag();
        let weights = [5.0, 60.0, 40.0, 20.0, 30.0, 5.0];
        let decomp = decompose(&g, |id| weights[id.index()]);
        let sp = &decomp.subpaths[0];
        assert_eq!(sp.nodes_with_anchors(), vec![ids[0], ids[3], ids[4]]);
        assert_eq!(sp.len(), 1);
        assert!(!sp.is_empty());
    }

    #[test]
    fn wide_scatter_extracts_each_branch() {
        // One splitter fanning out to 4 parallel workers joined by a merger,
        // like the Video Analysis / Chatbot scatter pattern.
        let mut g = Dag::new();
        let split = g.add_node(());
        let workers: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        let merge = g.add_node(());
        for &w in &workers {
            g.add_edge(split, w).unwrap();
            g.add_edge(w, merge).unwrap();
        }
        let weight = |id: NodeId| match id.index() {
            0 => 2.0,
            5 => 3.0,
            i => 10.0 + i as f64, // workers get distinct weights
        };
        let decomp = decompose(&g, weight);
        // Critical path goes through the heaviest worker (index 4).
        assert_eq!(decomp.critical.nodes()[1], workers[3]);
        // The other three workers each form their own single-node detour.
        assert_eq!(decomp.subpaths.len(), 3);
        for sp in &decomp.subpaths {
            assert_eq!(sp.len(), 1);
            assert_eq!(sp.start_anchor, Some(split));
            assert_eq!(sp.end_anchor, Some(merge));
        }
        assert_eq!(decomp.covered(), g.len());
    }
}
