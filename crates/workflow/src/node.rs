//! Function node payloads.

use serde::{Deserialize, Serialize};

/// Dominant resource affinity of a serverless function.
///
/// The paper's key observation (§II-A) is that different workflows — and
/// different functions inside one workflow — have different *resource
/// affinities*: some are CPU-bound and insensitive to memory, others need a
/// large working set but little compute. AARC exploits this by decoupling the
/// two dimensions. The affinity label is advisory metadata: the configurator
/// discovers the real affinity empirically, but workload authors may annotate
/// it and the [`affinity` analysis](https://docs.rs) recomputes it from
/// profiling samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ResourceAffinity {
    /// Runtime dominated by compute; scales with vCPU, flat in memory.
    CpuBound,
    /// Runtime dominated by the working set; needs memory, little compute.
    MemoryBound,
    /// Runtime dominated by I/O or orchestration; mostly insensitive to both.
    IoBound,
    /// Sensitive to both resources.
    #[default]
    Balanced,
}

impl std::fmt::Display for ResourceAffinity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ResourceAffinity::CpuBound => "cpu-bound",
            ResourceAffinity::MemoryBound => "memory-bound",
            ResourceAffinity::IoBound => "io-bound",
            ResourceAffinity::Balanced => "balanced",
        };
        f.write_str(s)
    }
}

/// Static description of a serverless function inside a workflow.
///
/// The specification carries only identity and advisory metadata; the
/// performance behaviour of the function under a given CPU/memory allocation
/// is modelled by the simulator crate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSpec {
    name: String,
    affinity: ResourceAffinity,
}

impl FunctionSpec {
    /// Creates a function specification with [`ResourceAffinity::Balanced`].
    pub fn new(name: impl Into<String>) -> Self {
        FunctionSpec {
            name: name.into(),
            affinity: ResourceAffinity::Balanced,
        }
    }

    /// Creates a function specification with an explicit affinity annotation.
    pub fn with_affinity(name: impl Into<String>, affinity: ResourceAffinity) -> Self {
        FunctionSpec {
            name: name.into(),
            affinity,
        }
    }

    /// The unique function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The advisory resource affinity annotation.
    pub fn affinity(&self) -> ResourceAffinity {
        self.affinity
    }

    /// Replaces the affinity annotation.
    pub fn set_affinity(&mut self, affinity: ResourceAffinity) {
        self.affinity = affinity;
    }
}

impl std::fmt::Display for FunctionSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.name, self.affinity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_defaults_to_balanced() {
        let spec = FunctionSpec::new("classify");
        assert_eq!(spec.name(), "classify");
        assert_eq!(spec.affinity(), ResourceAffinity::Balanced);
    }

    #[test]
    fn with_affinity_and_set_affinity() {
        let mut spec = FunctionSpec::with_affinity("train", ResourceAffinity::CpuBound);
        assert_eq!(spec.affinity(), ResourceAffinity::CpuBound);
        spec.set_affinity(ResourceAffinity::MemoryBound);
        assert_eq!(spec.affinity(), ResourceAffinity::MemoryBound);
    }

    #[test]
    fn display_formats() {
        let spec = FunctionSpec::with_affinity("extract", ResourceAffinity::IoBound);
        assert_eq!(spec.to_string(), "extract (io-bound)");
        assert_eq!(ResourceAffinity::Balanced.to_string(), "balanced");
    }
}
