//! Index-based directed acyclic graph container.

use serde::{Deserialize, Serialize};

use crate::error::WorkflowError;

/// Identifier of a node inside a [`Dag`].
///
/// `NodeId`s are dense indices assigned in insertion order; they are only
/// meaningful relative to the DAG that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id from a raw index.
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the raw index of this node id.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A small adjacency-list DAG generic over the node payload `N`.
///
/// The container enforces acyclicity on every edge insertion, so a `Dag`
/// value is a DAG by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dag<N> {
    nodes: Vec<N>,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
}

impl<N> Default for Dag<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N> Dag<N> {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        Dag {
            nodes: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
        }
    }

    /// Adds a node carrying `payload` and returns its id.
    pub fn add_node(&mut self, payload: N) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(payload);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    /// Adds a directed edge `from -> to`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkflowError::UnknownNode`] if either endpoint does not
    /// exist, [`WorkflowError::SelfLoop`] for `from == to`,
    /// [`WorkflowError::DuplicateEdge`] if the edge already exists and
    /// [`WorkflowError::CycleDetected`] if the edge would close a cycle.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), WorkflowError> {
        if from.index() >= self.nodes.len() {
            return Err(WorkflowError::UnknownNode(from));
        }
        if to.index() >= self.nodes.len() {
            return Err(WorkflowError::UnknownNode(to));
        }
        if from == to {
            return Err(WorkflowError::SelfLoop(from));
        }
        if self.succs[from.index()].contains(&to) {
            return Err(WorkflowError::DuplicateEdge { from, to });
        }
        if self.is_reachable(to, from) {
            return Err(WorkflowError::CycleDetected { from, to });
        }
        self.succs[from.index()].push(to);
        self.preds[to.index()].push(from);
        Ok(())
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Returns the payload of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this DAG.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Returns a mutable reference to the payload of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this DAG.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// Returns the payload of `id`, or `None` if out of range.
    pub fn get(&self, id: NodeId) -> Option<&N> {
        self.nodes.get(id.index())
    }

    /// Iterates over `(NodeId, &N)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Iterates over all node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Successors (direct downstream dependencies) of `id`.
    pub fn successors(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id.index()]
    }

    /// Predecessors (direct upstream dependencies) of `id`.
    pub fn predecessors(&self, id: NodeId) -> &[NodeId] {
        &self.preds[id.index()]
    }

    /// Nodes with no predecessors (workflow entry functions).
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|id| self.preds[id.index()].is_empty())
            .collect()
    }

    /// Nodes with no successors (workflow exit functions).
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|id| self.succs[id.index()].is_empty())
            .collect()
    }

    /// Returns `true` if `to` is reachable from `from` following edges.
    pub fn is_reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![from];
        while let Some(v) = stack.pop() {
            if v == to {
                return true;
            }
            if std::mem::replace(&mut visited[v.index()], true) {
                continue;
            }
            stack.extend(self.succs[v.index()].iter().copied());
        }
        false
    }

    /// Returns the nodes in a topological order (Kahn's algorithm).
    ///
    /// The order is deterministic: among ready nodes, lower indices come
    /// first.
    pub fn topological_order(&self) -> Vec<NodeId> {
        let mut indegree: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = self
            .node_ids()
            .filter(|id| indegree[id.index()] == 0)
            .map(|id| std::cmp::Reverse(id.index()))
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(std::cmp::Reverse(idx)) = ready.pop() {
            let id = NodeId(idx);
            order.push(id);
            for &s in &self.succs[idx] {
                indegree[s.index()] -= 1;
                if indegree[s.index()] == 0 {
                    ready.push(std::cmp::Reverse(s.index()));
                }
            }
        }
        debug_assert_eq!(order.len(), self.nodes.len(), "dag invariant violated");
        order
    }

    /// Maps node payloads, preserving the graph structure and ids.
    pub fn map<M>(&self, mut f: impl FnMut(NodeId, &N) -> M) -> Dag<M> {
        Dag {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| f(NodeId(i), n))
                .collect(),
            succs: self.succs.clone(),
            preds: self.preds.clone(),
        }
    }

    /// All edges as `(from, to)` pairs, ordered by source then insertion.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for (i, succs) in self.succs.iter().enumerate() {
            for &t in succs {
                out.push((NodeId(i), t));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag<&'static str> {
        // a -> b, a -> c, b -> d, c -> d
        let mut g = Dag::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        g
    }

    #[test]
    fn add_nodes_and_edges() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.sources(), vec![NodeId::new(0)]);
        assert_eq!(g.sinks(), vec![NodeId::new(3)]);
        assert_eq!(
            g.successors(NodeId::new(0)),
            &[NodeId::new(1), NodeId::new(2)]
        );
        assert_eq!(
            g.predecessors(NodeId::new(3)),
            &[NodeId::new(1), NodeId::new(2)]
        );
    }

    #[test]
    fn rejects_cycles() {
        let mut g = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        let err = g.add_edge(c, a).unwrap_err();
        assert_eq!(err, WorkflowError::CycleDetected { from: c, to: a });
        // graph unchanged by the failed insertion
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn rejects_self_loop_duplicate_and_unknown() {
        let mut g = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        assert_eq!(g.add_edge(a, a).unwrap_err(), WorkflowError::SelfLoop(a));
        g.add_edge(a, b).unwrap();
        assert_eq!(
            g.add_edge(a, b).unwrap_err(),
            WorkflowError::DuplicateEdge { from: a, to: b }
        );
        let ghost = NodeId::new(99);
        assert_eq!(
            g.add_edge(a, ghost).unwrap_err(),
            WorkflowError::UnknownNode(ghost)
        );
        assert_eq!(
            g.add_edge(ghost, a).unwrap_err(),
            WorkflowError::UnknownNode(ghost)
        );
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = diamond();
        let order = g.topological_order();
        assert_eq!(order.len(), 4);
        let pos: Vec<usize> = (0..4)
            .map(|i| order.iter().position(|n| n.index() == i).unwrap())
            .collect();
        for (from, to) in g.edges() {
            assert!(pos[from.index()] < pos[to.index()]);
        }
    }

    #[test]
    fn reachability() {
        let g = diamond();
        assert!(g.is_reachable(NodeId::new(0), NodeId::new(3)));
        assert!(!g.is_reachable(NodeId::new(3), NodeId::new(0)));
        assert!(!g.is_reachable(NodeId::new(1), NodeId::new(2)));
        assert!(g.is_reachable(NodeId::new(2), NodeId::new(2)));
    }

    #[test]
    fn map_preserves_structure() {
        let g = diamond();
        let mapped = g.map(|id, name| format!("{}-{}", id.index(), name));
        assert_eq!(mapped.len(), g.len());
        assert_eq!(mapped.edges(), g.edges());
        assert_eq!(mapped.node(NodeId::new(2)), "2-c");
    }

    #[test]
    fn empty_dag_behaviour() {
        let g: Dag<()> = Dag::new();
        assert!(g.is_empty());
        assert!(g.topological_order().is_empty());
        assert!(g.sources().is_empty());
        assert!(g.sinks().is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let g = diamond();
        // serde support is exercised via the Serialize/Deserialize derives by
        // converting through the `serde_test`-free path of a manual clone.
        let cloned = g.clone();
        assert_eq!(g, cloned);
    }
}
