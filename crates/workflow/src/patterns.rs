//! Constructors for common serverless workflow topologies.
//!
//! The paper characterises its workloads by their communication pattern:
//! Chatbot and Video Analysis are *scatter* workflows (a splitter fans work
//! out to parallel functions that rejoin), while ML Pipeline is a *broadcast*
//! workflow (the input is replicated to parallel branches of different
//! depth). These helpers build such shapes programmatically, both for tests
//! and for the random workload generator.

use crate::builder::WorkflowBuilder;
use crate::dag::NodeId;
use crate::edge::CommunicationKind;
use crate::error::WorkflowError;
use crate::workflow::Workflow;

/// Builds a linear chain `f0 -> f1 -> … -> f(n-1)`.
///
/// # Errors
///
/// Returns an error if `n == 0`.
pub fn chain(name: &str, n: usize) -> Result<Workflow, WorkflowError> {
    let mut b = WorkflowBuilder::new(name);
    let ids: Vec<NodeId> = (0..n)
        .map(|i| b.add_function(format!("{name}_f{i}")))
        .collect();
    b.chain(&ids)?;
    b.build()
}

/// Builds a scatter/gather workflow: `split -> {worker_0 … worker_{w-1}} ->
/// merge`, the shape of the paper's Chatbot and Video Analysis applications.
///
/// # Errors
///
/// Returns an error if `workers == 0`.
pub fn scatter_gather(name: &str, workers: usize) -> Result<Workflow, WorkflowError> {
    if workers == 0 {
        return Err(WorkflowError::Empty);
    }
    let mut b = WorkflowBuilder::new(name);
    let split = b.add_function(format!("{name}_split"));
    let merge = b.add_function(format!("{name}_merge"));
    for i in 0..workers {
        let w = b.add_function(format!("{name}_worker{i}"));
        b.add_edge_with(split, w, 8.0, CommunicationKind::Scatter)?;
        b.add_edge_with(w, merge, 8.0, CommunicationKind::Gather)?;
    }
    b.build()
}

/// Builds a broadcast workflow with branches of the given lengths joining at
/// a final combine node, the shape of the paper's ML Pipeline application.
///
/// # Errors
///
/// Returns an error if `branch_lengths` is empty or contains a zero.
pub fn broadcast(name: &str, branch_lengths: &[usize]) -> Result<Workflow, WorkflowError> {
    if branch_lengths.is_empty() || branch_lengths.contains(&0) {
        return Err(WorkflowError::Empty);
    }
    let mut b = WorkflowBuilder::new(name);
    let start = b.add_function(format!("{name}_start"));
    let combine = b.add_function(format!("{name}_combine"));
    for (bi, &len) in branch_lengths.iter().enumerate() {
        let mut prev = start;
        for si in 0..len {
            let f = b.add_function(format!("{name}_b{bi}_s{si}"));
            let kind = if prev == start {
                CommunicationKind::Broadcast
            } else {
                CommunicationKind::Direct
            };
            b.add_edge_with(prev, f, 16.0, kind)?;
            prev = f;
        }
        b.add_edge_with(prev, combine, 16.0, CommunicationKind::Gather)?;
    }
    b.build()
}

/// Builds a diamond workflow `start -> {left, right} -> end`.
///
/// # Errors
///
/// Propagates builder errors (none are expected for this fixed shape).
pub fn diamond(name: &str) -> Result<Workflow, WorkflowError> {
    let mut b = WorkflowBuilder::new(name);
    let start = b.add_function(format!("{name}_start"));
    let left = b.add_function(format!("{name}_left"));
    let right = b.add_function(format!("{name}_right"));
    let end = b.add_function(format!("{name}_end"));
    b.add_edge(start, left)?;
    b.add_edge(start, right)?;
    b.add_edge(left, end)?;
    b.add_edge(right, end)?;
    b.build()
}

/// Builds a layered DAG with `layers` layers of `width` functions each.
/// Every function in layer `i` depends on every function in layer `i-1`,
/// which is the densest DAG shape the scheduler has to handle.
///
/// # Errors
///
/// Returns an error if `layers == 0` or `width == 0`.
pub fn layered(name: &str, layers: usize, width: usize) -> Result<Workflow, WorkflowError> {
    if layers == 0 || width == 0 {
        return Err(WorkflowError::Empty);
    }
    let mut b = WorkflowBuilder::new(name);
    let mut prev_layer: Vec<NodeId> = Vec::new();
    for l in 0..layers {
        let layer: Vec<NodeId> = (0..width)
            .map(|w| b.add_function(format!("{name}_l{l}_w{w}")))
            .collect();
        for &p in &prev_layer {
            for &c in &layer {
                b.add_edge(p, c)?;
            }
        }
        prev_layer = layer;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical_path::critical_path;
    use crate::subpath::decompose;

    #[test]
    fn chain_shape() {
        let wf = chain("c", 4).unwrap();
        assert_eq!(wf.len(), 4);
        assert_eq!(wf.edges().len(), 3);
        assert_eq!(wf.entries().len(), 1);
        assert_eq!(wf.exits().len(), 1);
    }

    #[test]
    fn chain_of_zero_is_an_error() {
        assert!(chain("c", 0).is_err());
    }

    #[test]
    fn scatter_gather_shape() {
        let wf = scatter_gather("sg", 3).unwrap();
        assert_eq!(wf.len(), 5);
        assert_eq!(wf.edges().len(), 6);
        let split = wf.find("sg_split").unwrap();
        assert_eq!(wf.dag().successors(split).len(), 3);
        assert!(scatter_gather("sg", 0).is_err());
    }

    #[test]
    fn broadcast_shape_matches_branch_spec() {
        let wf = broadcast("ml", &[2, 1]).unwrap();
        // start + combine + 3 branch functions
        assert_eq!(wf.len(), 5);
        let start = wf.find("ml_start").unwrap();
        assert_eq!(wf.dag().successors(start).len(), 2);
        assert!(broadcast("ml", &[]).is_err());
        assert!(broadcast("ml", &[1, 0]).is_err());
    }

    #[test]
    fn diamond_decomposition() {
        let wf = diamond("d").unwrap();
        let d = decompose(wf.dag(), |_| 1.0);
        assert_eq!(d.critical.len(), 3);
        assert_eq!(d.subpaths.len(), 1);
        assert_eq!(d.covered(), 4);
    }

    #[test]
    fn layered_is_dense_and_acyclic() {
        let wf = layered("lay", 3, 3).unwrap();
        assert_eq!(wf.len(), 9);
        assert_eq!(wf.dag().edge_count(), 2 * 9);
        let cp = critical_path(wf.dag(), |_| 1.0);
        assert_eq!(cp.len(), 3);
        assert!(layered("lay", 0, 3).is_err());
    }
}
