//! Captures build provenance (rustc version, cargo profile) into
//! compile-time environment variables, so `aarc_telemetry::build_info()`
//! can expose them without any runtime probing.

use std::process::Command;

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_owned());
    let version = Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned());
    println!("cargo:rustc-env=AARC_RUSTC_VERSION={version}");
    let profile = std::env::var("PROFILE").unwrap_or_else(|_| "unknown".to_owned());
    println!("cargo:rustc-env=AARC_BUILD_PROFILE={profile}");
    println!("cargo:rerun-if-changed=build.rs");
}
