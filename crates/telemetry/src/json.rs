//! Minimal JSON string escaping shared by the flight recorder and the
//! structured logger. The telemetry crate is dependency-free, so it
//! cannot use the workspace's vendored `serde_json`.

/// Appends `s` to `out` as a JSON string literal (including the
/// surrounding quotes), escaping per RFC 8259.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` as a JSON value; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub(crate) fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn escaped(s: &str) -> String {
        let mut out = String::new();
        push_json_string(&mut out, s);
        out
    }

    #[test]
    fn escapes_specials_and_control_chars() {
        assert_eq!(escaped("plain"), "\"plain\"");
        assert_eq!(escaped("a\"b"), "\"a\\\"b\"");
        assert_eq!(escaped("a\\b"), "\"a\\\\b\"");
        assert_eq!(escaped("line1\nline2"), "\"line1\\nline2\"");
        assert_eq!(escaped("tab\there"), "\"tab\\there\"");
        assert_eq!(escaped("bell\u{7}"), "\"bell\\u0007\"");
        assert_eq!(escaped("unicode ✓"), "\"unicode ✓\"");
    }

    #[test]
    fn f64_non_finite_becomes_null() {
        let mut out = String::new();
        push_json_f64(&mut out, 1.5);
        assert_eq!(out, "1.5");
        out.clear();
        push_json_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        out.clear();
        push_json_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null");
    }
}
