//! Prometheus text-exposition rendering.
//!
//! Emits the [text-based exposition format]: a `# HELP` and `# TYPE`
//! header per metric family, all samples of a family consecutive, label
//! values escaped, and histograms rendered as cumulative `_bucket{le=...}`
//! series (in **seconds**, the Prometheus convention for durations) plus
//! `_sum` and `_count`.
//!
//! [text-based exposition format]:
//! https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::metrics::{HistogramSnapshot, RecorderSnapshot, BUCKET_BOUNDS_NS};

/// Escapes a label value: backslash, double-quote and newline.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes HELP text: backslash and newline (quotes are legal there).
pub fn escape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for ch in help.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn write_header(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(&escape_help(help));
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Writes a counter family with its headers.
pub fn write_counter(out: &mut String, name: &str, help: &str, value: u64) {
    write_header(out, name, help, "counter");
    out.push_str(name);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Writes a gauge family with its headers.
pub fn write_gauge(out: &mut String, name: &str, help: &str, value: f64) {
    write_header(out, name, help, "gauge");
    out.push_str(name);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Writes a histogram family with its headers: cumulative buckets with
/// `le` bounds in seconds, a `+Inf` bucket, `_sum` (seconds) and `_count`.
pub fn write_histogram(out: &mut String, name: &str, help: &str, snapshot: &HistogramSnapshot) {
    write_header(out, name, help, "histogram");
    let mut cumulative = 0u64;
    for (idx, &count) in snapshot.counts.iter().enumerate() {
        cumulative += count;
        out.push_str(name);
        out.push_str("_bucket{le=\"");
        if idx < BUCKET_BOUNDS_NS.len() {
            out.push_str(&format!("{}", BUCKET_BOUNDS_NS[idx] as f64 / 1e9));
        } else {
            out.push_str("+Inf");
        }
        out.push_str("\"} ");
        out.push_str(&cumulative.to_string());
        out.push('\n');
    }
    out.push_str(name);
    out.push_str("_sum ");
    out.push_str(&format!("{}", snapshot.sum_ns as f64 / 1e9));
    out.push('\n');
    out.push_str(name);
    out.push_str("_count ");
    out.push_str(&cumulative.to_string());
    out.push('\n');
}

/// Renders a label set as `name="value",...` with values escaped.
pub fn render_labels(labels: &[(String, String)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect::<Vec<_>>()
        .join(",")
}

/// Writes every metric in a [`RecorderSnapshot`]: plain counters, then
/// labelled counter families, then gauges, then histograms, each group in
/// name order. Labelled samples arrive pre-grouped by family (the
/// recorder's map order), so each family gets exactly one header.
pub fn write_snapshot(out: &mut String, snapshot: &RecorderSnapshot) {
    for (name, help, value) in &snapshot.counters {
        write_counter(out, name, help, *value);
    }
    let mut current_family: Option<&str> = None;
    for (name, help, labels, value) in &snapshot.labeled_counters {
        if current_family != Some(name.as_str()) {
            write_header(out, name, help, "counter");
            current_family = Some(name.as_str());
        }
        out.push_str(name);
        out.push('{');
        out.push_str(&render_labels(labels));
        out.push_str("} ");
        out.push_str(&value.to_string());
        out.push('\n');
    }
    for (name, help, value) in &snapshot.gauges {
        write_gauge(out, name, help, *value);
    }
    for (name, help, hist) in &snapshot.histograms {
        write_histogram(out, name, help, hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, Recorder};

    #[test]
    fn escapes() {
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(
            escape_help("multi\nline \\ with \"quotes\""),
            "multi\\nline \\\\ with \"quotes\""
        );
    }

    #[test]
    fn counter_and_gauge_families() {
        let mut out = String::new();
        write_counter(&mut out, "aarc_things_total", "Things seen.", 7);
        write_gauge(&mut out, "aarc_rate", "Current rate.", 2.5);
        assert_eq!(
            out,
            "# HELP aarc_things_total Things seen.\n\
             # TYPE aarc_things_total counter\n\
             aarc_things_total 7\n\
             # HELP aarc_rate Current rate.\n\
             # TYPE aarc_rate gauge\n\
             aarc_rate 2.5\n"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let h = Histogram::new();
        h.record_ns(1_500); // (1µs, 2µs]
        h.record_ns(1_500);
        h.record_ns(3_000_000); // (2ms, 5ms]
        h.record_ns(u64::MAX); // overflow
        let mut out = String::new();
        write_histogram(&mut out, "aarc_test_seconds", "Test.", &h.snapshot());

        assert!(
            out.starts_with("# HELP aarc_test_seconds Test.\n# TYPE aarc_test_seconds histogram\n")
        );
        // First bound 1µs = 0.000001s with zero observations.
        assert!(out.contains("aarc_test_seconds_bucket{le=\"0.000001\"} 0\n"));
        // 2µs bucket holds the two 1.5µs records.
        assert!(out.contains("aarc_test_seconds_bucket{le=\"0.000002\"} 2\n"));
        // By 5ms all but the overflow record are included.
        assert!(out.contains("aarc_test_seconds_bucket{le=\"0.005\"} 3\n"));
        assert!(out.contains("aarc_test_seconds_bucket{le=\"+Inf\"} 4\n"));
        assert!(out.contains("aarc_test_seconds_count 4\n"));

        // Bucket values never decrease and +Inf equals _count.
        let mut last = 0u64;
        let mut inf = None;
        for line in out.lines() {
            if let Some(rest) = line.strip_prefix("aarc_test_seconds_bucket{le=\"") {
                let (bound, count) = rest.split_once("\"} ").unwrap();
                let count: u64 = count.parse().unwrap();
                assert!(count >= last, "bucket counts must be monotonic");
                last = count;
                if bound == "+Inf" {
                    inf = Some(count);
                }
            }
        }
        assert_eq!(inf, Some(4));
    }

    #[test]
    fn labeled_counter_families_share_one_header() {
        let recorder = Recorder::new();
        recorder
            .labeled_counter("reqs_total", "Requests.", &[("tenant", "b")])
            .add(2);
        recorder
            .labeled_counter("reqs_total", "Requests.", &[("tenant", "a")])
            .add(1);
        recorder
            .labeled_counter(
                "rejected_total",
                "Rejections.",
                &[("tenant", "a"), ("reason", "rate")],
            )
            .inc();
        let mut out = String::new();
        write_snapshot(&mut out, &recorder.snapshot());
        // One header per family, samples consecutive and label-sorted.
        assert_eq!(out.matches("# TYPE reqs_total counter").count(), 1);
        assert!(out.contains("reqs_total{tenant=\"a\"} 1\n"));
        assert!(out.contains("reqs_total{tenant=\"b\"} 2\n"));
        let a = out.find("reqs_total{tenant=\"a\"}").unwrap();
        let b = out.find("reqs_total{tenant=\"b\"}").unwrap();
        assert!(a < b);
        assert!(out.contains("rejected_total{tenant=\"a\",reason=\"rate\"} 1\n"));
        // The same (name, labels) pair resolves to the same counter.
        recorder
            .labeled_counter("reqs_total", "Requests.", &[("tenant", "a")])
            .inc();
        let snap = recorder.snapshot();
        let sample = snap
            .labeled_counters
            .iter()
            .find(|(n, _, l, _)| n == "reqs_total" && l[0].1 == "a")
            .unwrap();
        assert_eq!(sample.3, 2);
    }

    #[test]
    fn snapshot_rendering_is_deterministic() {
        let recorder = Recorder::new();
        recorder.counter("b_total", "B.").add(1);
        recorder.counter("a_total", "A.").add(2);
        recorder.gauge("g", "G.").set(1.0);
        recorder.histogram("h_seconds", "H.").record_ns(10);
        let mut first = String::new();
        write_snapshot(&mut first, &recorder.snapshot());
        let mut second = String::new();
        write_snapshot(&mut second, &recorder.snapshot());
        assert_eq!(first, second);
        // Counters render in name order.
        let a = first.find("a_total 2").unwrap();
        let b = first.find("b_total 1").unwrap();
        assert!(a < b);
    }
}
