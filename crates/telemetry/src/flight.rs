//! The flight recorder: a bounded ring buffer of recent structured events.
//!
//! Every layer of the stack appends small, typed events here — eval batch
//! completions, cache evictions, HTTP requests, session state changes —
//! and the daemon serves the tail from `GET /debug/events`. Like an
//! aircraft black box it answers "what happened in the last N operations"
//! without unbounded memory: old events are overwritten once the ring is
//! full, and a monotone sequence number records how many were ever seen.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::{push_json_f64, push_json_string};

/// A typed field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point value (serialised as `null` when non-finite).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
}

impl FieldValue {
    fn push_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) => push_json_f64(out, *v),
            FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            FieldValue::Str(v) => push_json_string(out, v),
        }
    }
}

/// One recorded event: a kind tag, a wall-clock timestamp, a monotone
/// sequence number, and a small set of structured fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Position in the recorder's lifetime stream (0-based, monotone).
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch when recorded.
    pub ts_ms: u64,
    /// Event kind tag, e.g. `"eval_batch"` or `"http_request"`.
    pub kind: &'static str,
    /// Ordered `(key, value)` fields.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Renders the event as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"ts_ms\":");
        out.push_str(&self.ts_ms.to_string());
        out.push_str(",\"kind\":");
        push_json_string(&mut out, self.kind);
        for (key, value) in &self.fields {
            out.push(',');
            push_json_string(&mut out, key);
            out.push(':');
            value.push_json(&mut out);
        }
        out.push('}');
        out
    }
}

/// Renders a slice of events as a JSON array.
pub fn events_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push('[');
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&event.to_json());
    }
    out.push(']');
    out
}

struct Inner {
    events: VecDeque<Event>,
    recorded: u64,
}

/// A bounded ring buffer of recent [`Event`]s, safe to record into from
/// any thread.
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("len", &inner.events.len())
            .field("recorded", &inner.recorded)
            .finish()
    }
}

impl FlightRecorder {
    /// Creates a recorder retaining at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                events: VecDeque::new(),
                recorded: 0,
            }),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of events ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().unwrap().recorded
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn record(&self, kind: &'static str, fields: Vec<(&'static str, FieldValue)>) {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.recorded;
        inner.recorded += 1;
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
        }
        inner.events.push_back(Event {
            seq,
            ts_ms,
            kind,
            fields,
        });
    }

    /// Returns up to `limit` of the most recent events, oldest first.
    pub fn tail(&self, limit: usize) -> Vec<Event> {
        let inner = self.inner.lock().unwrap();
        let skip = inner.events.len().saturating_sub(limit);
        inner.events.iter().skip(skip).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_keeps_the_most_recent_events() {
        let recorder = FlightRecorder::new(4);
        assert_eq!(recorder.capacity(), 4);
        for i in 0..10u64 {
            recorder.record("tick", vec![("i", FieldValue::U64(i))]);
        }
        assert_eq!(recorder.total_recorded(), 10);
        let tail = recorder.tail(100);
        assert_eq!(tail.len(), 4);
        // Oldest-first of the most recent four: seq 6..=9.
        let seqs: Vec<u64> = tail.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(tail[3].fields, vec![("i", FieldValue::U64(9))]);

        // A smaller limit trims from the old end.
        let last_two: Vec<u64> = recorder.tail(2).iter().map(|e| e.seq).collect();
        assert_eq!(last_two, vec![8, 9]);
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let recorder = FlightRecorder::new(0);
        recorder.record("a", vec![]);
        recorder.record("b", vec![]);
        let tail = recorder.tail(10);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].kind, "b");
    }

    #[test]
    fn event_json_rendering() {
        let event = Event {
            seq: 7,
            ts_ms: 1700000000123,
            kind: "http_request",
            fields: vec![
                ("method", FieldValue::Str("GET".to_owned())),
                ("path", FieldValue::Str("/metrics?x=\"1\"".to_owned())),
                ("status", FieldValue::U64(200)),
                ("duration_us", FieldValue::U64(350)),
                ("ok", FieldValue::Bool(true)),
                ("delta", FieldValue::I64(-3)),
                ("ratio", FieldValue::F64(0.5)),
                ("bad", FieldValue::F64(f64::NAN)),
            ],
        };
        assert_eq!(
            event.to_json(),
            "{\"seq\":7,\"ts_ms\":1700000000123,\"kind\":\"http_request\",\
             \"method\":\"GET\",\"path\":\"/metrics?x=\\\"1\\\"\",\"status\":200,\
             \"duration_us\":350,\"ok\":true,\"delta\":-3,\"ratio\":0.5,\"bad\":null}"
        );
        assert_eq!(events_json(&[]), "[]");
        let two = events_json(&[event.clone(), event]);
        assert!(two.starts_with("[{\"seq\":7"));
        assert!(two.contains("},{"));
        assert!(two.ends_with("}]"));
    }

    #[test]
    fn concurrent_recording_is_lossless_up_to_capacity() {
        let recorder = FlightRecorder::new(1024);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let recorder = &recorder;
                scope.spawn(move || {
                    for i in 0..100u64 {
                        recorder.record("w", vec![("v", FieldValue::U64(t * 1000 + i))]);
                    }
                });
            }
        });
        assert_eq!(recorder.total_recorded(), 800);
        let tail = recorder.tail(usize::MAX);
        assert_eq!(tail.len(), 800);
        // Sequence numbers are a contiguous 0..800 despite interleaving.
        for (i, event) in tail.iter().enumerate() {
            assert_eq!(event.seq, i as u64);
        }
    }
}
