//! Leveled structured logging to stderr, in `text` or JSON-lines format.
//!
//! The daemon logs one line per HTTP request and per session state
//! transition — never per search step, which could fill a consumer's pipe
//! buffer and stall the scheduler. Lines are written with a single
//! `write_all` per record so concurrent handlers do not interleave bytes.

use std::io::Write;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::flight::FieldValue;
use crate::json::push_json_string;

/// Log severity, ordered `Error < Warn < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Unrecoverable or unexpected failures.
    Error,
    /// Recoverable anomalies.
    Warn,
    /// Normal operational events (default).
    Info,
    /// Verbose diagnostics.
    Debug,
}

impl LogLevel {
    /// Parses a level name (case-insensitive).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Self::Error),
            "warn" | "warning" => Ok(Self::Warn),
            "info" => Ok(Self::Info),
            "debug" => Ok(Self::Debug),
            other => Err(format!(
                "unknown log level '{other}' (expected error|warn|info|debug)"
            )),
        }
    }

    /// Lower-case name, as written in log lines.
    pub fn name(self) -> &'static str {
        match self {
            Self::Error => "error",
            Self::Warn => "warn",
            Self::Info => "info",
            Self::Debug => "debug",
        }
    }
}

/// Output encoding for log lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// Human-oriented `key=value` lines.
    Text,
    /// One JSON object per line.
    Json,
}

impl LogFormat {
    /// Parses a format name (case-insensitive).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "text" => Ok(Self::Text),
            "json" => Ok(Self::Json),
            other => Err(format!("unknown log format '{other}' (expected text|json)")),
        }
    }
}

/// A leveled structured logger writing to stderr.
#[derive(Debug, Clone, Copy)]
pub struct Logger {
    level: LogLevel,
    format: LogFormat,
}

impl Logger {
    /// Creates a logger emitting records at or above `level`.
    pub fn new(level: LogLevel, format: LogFormat) -> Self {
        Self { level, format }
    }

    /// Whether a record at `level` would be emitted.
    pub fn enabled(&self, level: LogLevel) -> bool {
        level <= self.level
    }

    /// The configured maximum level.
    pub fn level(&self) -> LogLevel {
        self.level
    }

    /// The configured output format.
    pub fn format(&self) -> LogFormat {
        self.format
    }

    /// Emits one record with the given event name and fields, if `level`
    /// is enabled.
    pub fn log(&self, level: LogLevel, event: &str, fields: &[(&str, FieldValue)]) {
        if !self.enabled(level) {
            return;
        }
        let line = self.render(level, event, fields);
        let mut stderr = std::io::stderr().lock();
        let _ = stderr.write_all(line.as_bytes());
    }

    /// Shorthand for [`Self::log`] at [`LogLevel::Info`].
    pub fn info(&self, event: &str, fields: &[(&str, FieldValue)]) {
        self.log(LogLevel::Info, event, fields);
    }

    /// Shorthand for [`Self::log`] at [`LogLevel::Warn`].
    pub fn warn(&self, event: &str, fields: &[(&str, FieldValue)]) {
        self.log(LogLevel::Warn, event, fields);
    }

    /// Shorthand for [`Self::log`] at [`LogLevel::Error`].
    pub fn error(&self, event: &str, fields: &[(&str, FieldValue)]) {
        self.log(LogLevel::Error, event, fields);
    }

    /// Renders a record (including the trailing newline) without writing
    /// it; exposed for tests.
    pub fn render(&self, level: LogLevel, event: &str, fields: &[(&str, FieldValue)]) -> String {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let mut out = String::with_capacity(96);
        match self.format {
            LogFormat::Json => {
                out.push_str("{\"ts\":");
                out.push_str(&ts_ms.to_string());
                out.push_str(",\"level\":");
                push_json_string(&mut out, level.name());
                out.push_str(",\"event\":");
                push_json_string(&mut out, event);
                for (key, value) in fields {
                    out.push(',');
                    push_json_string(&mut out, key);
                    out.push(':');
                    match value {
                        FieldValue::U64(v) => out.push_str(&v.to_string()),
                        FieldValue::I64(v) => out.push_str(&v.to_string()),
                        FieldValue::F64(v) => crate::json::push_json_f64(&mut out, *v),
                        FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                        FieldValue::Str(v) => push_json_string(&mut out, v),
                    }
                }
                out.push('}');
            }
            LogFormat::Text => {
                out.push_str("ts=");
                out.push_str(&ts_ms.to_string());
                out.push_str(" level=");
                out.push_str(level.name());
                out.push_str(" event=");
                out.push_str(event);
                for (key, value) in fields {
                    out.push(' ');
                    out.push_str(key);
                    out.push('=');
                    match value {
                        FieldValue::U64(v) => out.push_str(&v.to_string()),
                        FieldValue::I64(v) => out.push_str(&v.to_string()),
                        FieldValue::F64(v) => out.push_str(&v.to_string()),
                        FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                        FieldValue::Str(v) => {
                            // Quote strings containing whitespace or '='
                            // so lines stay splittable.
                            if v.contains([' ', '=', '"']) {
                                push_json_string(&mut out, v);
                            } else {
                                out.push_str(v);
                            }
                        }
                    }
                }
            }
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_and_ordering() {
        assert_eq!(LogLevel::parse("INFO").unwrap(), LogLevel::Info);
        assert_eq!(LogLevel::parse("warning").unwrap(), LogLevel::Warn);
        assert!(LogLevel::parse("loud").is_err());
        assert!(LogLevel::Error < LogLevel::Warn);
        assert!(LogLevel::Warn < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
    }

    #[test]
    fn format_parse() {
        assert_eq!(LogFormat::parse("json").unwrap(), LogFormat::Json);
        assert_eq!(LogFormat::parse("TEXT").unwrap(), LogFormat::Text);
        assert!(LogFormat::parse("xml").is_err());
    }

    #[test]
    fn enabled_respects_threshold() {
        let logger = Logger::new(LogLevel::Warn, LogFormat::Text);
        assert!(logger.enabled(LogLevel::Error));
        assert!(logger.enabled(LogLevel::Warn));
        assert!(!logger.enabled(LogLevel::Info));
        assert!(!logger.enabled(LogLevel::Debug));
    }

    #[test]
    fn json_render_is_one_valid_object_per_line() {
        let logger = Logger::new(LogLevel::Debug, LogFormat::Json);
        let line = logger.render(
            LogLevel::Info,
            "http_request",
            &[
                ("method", FieldValue::Str("GET".to_owned())),
                ("path", FieldValue::Str("/metrics".to_owned())),
                ("status", FieldValue::U64(200)),
            ],
        );
        assert!(line.ends_with("}\n"));
        assert!(line.starts_with("{\"ts\":"));
        assert!(line.contains("\"level\":\"info\""));
        assert!(line.contains("\"event\":\"http_request\""));
        assert!(line.contains("\"method\":\"GET\",\"path\":\"/metrics\",\"status\":200"));
        assert_eq!(line.matches('\n').count(), 1);
    }

    #[test]
    fn text_render_quotes_awkward_strings() {
        let logger = Logger::new(LogLevel::Debug, LogFormat::Text);
        let line = logger.render(
            LogLevel::Warn,
            "scenario_registered",
            &[
                ("name", FieldValue::Str("plain-name".to_owned())),
                ("detail", FieldValue::Str("has space".to_owned())),
            ],
        );
        assert!(line.contains("level=warn"));
        assert!(line.contains("event=scenario_registered"));
        assert!(line.contains("name=plain-name"));
        assert!(line.contains("detail=\"has space\""));
    }
}
