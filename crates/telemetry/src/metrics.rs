//! Atomic metric primitives: counters, gauges, log-linear histograms and
//! the [`Recorder`] registry that snapshots them deterministically.
//!
//! Every recording operation is a commutative integer add on a relaxed
//! atomic. Commutativity is the load-bearing property: two threads
//! recording into the same histogram in any interleaving produce the same
//! final bucket counts, so a snapshot taken after a batch of work is a
//! pure function of the work, not of the scheduler.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding a single `f64` (stored as its bit pattern).
///
/// Last-writer-wins: unlike counters and histograms, a gauge's final value
/// under concurrent writers depends on ordering, so gauges are only used
/// for values where that is acceptable (e.g. "most recent sims/sec").
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Finite histogram bucket upper bounds, in nanoseconds.
///
/// A 1-2-5 log-linear series spanning 1µs to 100s — wide enough for both
/// sub-millisecond cache probes and multi-second evaluation batches while
/// keeping relative quantile error bounded by the 1-2-5 spacing (≤ 2.5×,
/// tightened by in-bucket interpolation). Values above the last bound land
/// in an overflow bucket.
pub const BUCKET_BOUNDS_NS: [u64; 25] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
    20_000_000_000,
    50_000_000_000,
    100_000_000_000,
];

/// Total bucket count: the finite bounds plus one overflow bucket.
pub(crate) const BUCKET_COUNT: usize = BUCKET_BOUNDS_NS.len() + 1;

/// A fixed-bucket latency histogram with atomic, mergeable recording.
pub struct Histogram {
    counts: [AtomicU64; BUCKET_COUNT],
    sum_ns: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count())
            .field("sum_ns", &snap.sum_ns)
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `ns` nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let idx = BUCKET_BOUNDS_NS.partition_point(|&bound| ns > bound);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records an observation from a [`std::time::Duration`].
    pub fn record(&self, elapsed: std::time::Duration) {
        self.record_ns(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Captures the current bucket counts and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a histogram's state, supporting merge and
/// quantile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; index `i` covers
    /// `(BUCKET_BOUNDS_NS[i-1], BUCKET_BOUNDS_NS[i]]`, with a final
    /// overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all recorded values in nanoseconds.
    pub sum_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            counts: vec![0; BUCKET_COUNT],
            sum_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Folds `other` into `self` bucket-by-bucket.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum_ns += other.sum_ns;
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) in nanoseconds using a
    /// cumulative walk with linear interpolation inside the target bucket.
    /// Returns `None` for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * total as f64;
        let mut cumulative = 0u64;
        for (idx, &bucket_count) in self.counts.iter().enumerate() {
            if bucket_count == 0 {
                continue;
            }
            let next = cumulative + bucket_count;
            if (next as f64) >= rank {
                let lower = if idx == 0 {
                    0
                } else {
                    BUCKET_BOUNDS_NS[idx - 1]
                };
                let upper = if idx < BUCKET_BOUNDS_NS.len() {
                    BUCKET_BOUNDS_NS[idx]
                } else {
                    // Overflow bucket has no upper bound; report its lower
                    // edge rather than inventing one.
                    return Some(*BUCKET_BOUNDS_NS.last().unwrap() as f64);
                };
                let within = (rank - cumulative as f64) / bucket_count as f64;
                return Some(lower as f64 + within.clamp(0.0, 1.0) * (upper - lower) as f64);
            }
            cumulative = next;
        }
        Some(*BUCKET_BOUNDS_NS.last().unwrap() as f64)
    }

    /// [`Self::quantile_ns`] converted to milliseconds.
    pub fn quantile_ms(&self, q: f64) -> Option<f64> {
        self.quantile_ns(q).map(|ns| ns / 1e6)
    }
}

/// A named-metric registry handing out shared handles and producing
/// deterministic snapshots.
///
/// Metrics are created lazily via [`Recorder::counter`] /
/// [`Recorder::gauge`] / [`Recorder::histogram`]; requesting the same name
/// twice returns the same underlying instrument. Snapshot order is the
/// `BTreeMap` (lexicographic) order of metric names, so rendered output is
/// reproducible run to run.
#[derive(Debug, Default)]
pub struct Recorder {
    counters: Mutex<BTreeMap<String, (String, Arc<Counter>)>>,
    gauges: Mutex<BTreeMap<String, (String, Arc<Gauge>)>>,
    histograms: Mutex<BTreeMap<String, (String, Arc<Histogram>)>>,
    /// Labelled counter families, keyed by `(family name, label set)`.
    /// The `BTreeMap` groups every family's samples together, which the
    /// exposition renderer relies on (one header per family).
    labeled_counters: LabeledCounters,
}

type LabeledCounters = Mutex<BTreeMap<(String, Vec<(String, String)>), (String, Arc<Counter>)>>;

impl Recorder {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it with the
    /// given help text if absent.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_owned())
            .or_insert_with(|| (help.to_owned(), Arc::new(Counter::new())))
            .1
            .clone()
    }

    /// Returns the gauge registered under `name`, creating it with the
    /// given help text if absent.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name.to_owned())
            .or_insert_with(|| (help.to_owned(), Arc::new(Gauge::new())))
            .1
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it with the
    /// given help text if absent.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name.to_owned())
            .or_insert_with(|| (help.to_owned(), Arc::new(Histogram::new())))
            .1
            .clone()
    }

    /// Returns the counter registered under `name` with the given label
    /// set (e.g. `[("tenant", "acme")]`), creating it if absent. Samples
    /// of one family snapshot consecutively, sorted by label values, so
    /// rendered output stays deterministic. A family name used here must
    /// not also be used as a plain [`Recorder::counter`] (the exposition
    /// would emit two headers).
    pub fn labeled_counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = (
            name.to_owned(),
            labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
        );
        let mut map = self.labeled_counters.lock().unwrap();
        map.entry(key)
            .or_insert_with(|| (help.to_owned(), Arc::new(Counter::new())))
            .1
            .clone()
    }

    /// Captures every registered metric, in name order.
    pub fn snapshot(&self) -> RecorderSnapshot {
        RecorderSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(name, (help, c))| (name.clone(), help.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(name, (help, g))| (name.clone(), help.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(name, (help, h))| (name.clone(), help.clone(), h.snapshot()))
                .collect(),
            labeled_counters: self
                .labeled_counters
                .lock()
                .unwrap()
                .iter()
                .map(|((name, labels), (help, c))| {
                    (name.clone(), help.clone(), labels.clone(), c.get())
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of every metric in a [`Recorder`], in
/// deterministic (name-sorted) order.
#[derive(Debug, Clone, Default)]
pub struct RecorderSnapshot {
    /// `(name, help, value)` for every counter.
    pub counters: Vec<(String, String, u64)>,
    /// `(name, help, value)` for every gauge.
    pub gauges: Vec<(String, String, f64)>,
    /// `(name, help, snapshot)` for every histogram.
    pub histograms: Vec<(String, String, HistogramSnapshot)>,
    /// `(name, help, labels, value)` for every labelled counter, sorted
    /// by `(name, labels)` so each family's samples are consecutive.
    pub labeled_counters: Vec<LabeledCounterSample>,
}

/// One labelled-counter sample: `(name, help, labels, value)`.
pub type LabeledCounterSample = (String, String, Vec<(String, String)>, u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(1234.5);
        assert_eq!(g.get(), 1234.5);
    }

    #[test]
    fn bucket_bounds_are_strictly_increasing() {
        for pair in BUCKET_BOUNDS_NS.windows(2) {
            assert!(pair[0] < pair[1], "bounds must be strictly increasing");
        }
    }

    #[test]
    fn records_land_in_the_expected_bucket() {
        let h = Histogram::new();
        h.record_ns(0); // first bucket (<= 1µs)
        h.record_ns(1_000); // still first bucket (bounds are inclusive)
        h.record_ns(1_001); // second bucket
        h.record_ns(100_000_000_000); // last finite bucket
        h.record_ns(100_000_000_001); // overflow
        let snap = h.snapshot();
        assert_eq!(snap.counts[0], 2);
        assert_eq!(snap.counts[1], 1);
        assert_eq!(snap.counts[BUCKET_BOUNDS_NS.len() - 1], 1);
        assert_eq!(snap.counts[BUCKET_BOUNDS_NS.len()], 1);
        assert_eq!(snap.count(), 5);
        assert_eq!(
            snap.sum_ns,
            1_000 + 1_001 + 100_000_000_000 + 100_000_000_001
        );
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new();
        // 100 observations all in the (1ms, 2ms] bucket.
        for _ in 0..100 {
            h.record_ns(1_500_000);
        }
        let snap = h.snapshot();
        let p50 = snap.quantile_ns(0.5).unwrap();
        // Interpolated through the bucket: between its bounds, around the middle.
        assert!(p50 > 1_000_000.0 && p50 <= 2_000_000.0, "p50={p50}");
        // p0 pins to the lower edge, p100 to the upper.
        assert_eq!(snap.quantile_ns(0.0).unwrap(), 1_000_000.0);
        assert_eq!(snap.quantile_ns(1.0).unwrap(), 2_000_000.0);
        assert_eq!(snap.quantile_ms(1.0).unwrap(), 2.0);
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        assert_eq!(HistogramSnapshot::new().quantile_ns(0.5), None);
    }

    #[test]
    fn overflow_quantile_reports_last_finite_bound() {
        let h = Histogram::new();
        h.record_ns(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.quantile_ns(0.5).unwrap(), 100_000_000_000.0);
    }

    #[test]
    fn merged_snapshots_are_independent_of_thread_interleaving() {
        // Two schedules of the same logical work: (a) all on one thread,
        // (b) split across 8 threads with deliberate contention. The merged
        // snapshot must be identical — recording is commutative.
        let values: Vec<u64> = (0..4_000)
            .map(|i| (i * 2_654_435_761u64) % 5_000_000_000)
            .collect();

        let reference = Histogram::new();
        for &v in &values {
            reference.record_ns(v);
        }
        let reference = reference.snapshot();

        for _ in 0..4 {
            let shared = Histogram::new();
            std::thread::scope(|scope| {
                let shared = &shared;
                for chunk in values.chunks(values.len() / 8) {
                    scope.spawn(move || {
                        for &v in chunk {
                            shared.record_ns(v);
                        }
                    });
                }
            });
            assert_eq!(shared.snapshot(), reference);
        }

        // Per-thread histograms merged after the fact agree too.
        let mut merged = HistogramSnapshot::new();
        let partials: Vec<HistogramSnapshot> = std::thread::scope(|scope| {
            values
                .chunks(values.len() / 8)
                .map(|chunk| {
                    scope.spawn(move || {
                        let local = Histogram::new();
                        for &v in chunk {
                            local.record_ns(v);
                        }
                        local.snapshot()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|handle| handle.join().unwrap())
                .collect()
        });
        for partial in &partials {
            merged.merge(partial);
        }
        assert_eq!(merged, reference);
    }

    #[test]
    fn recorder_reuses_instruments_and_snapshots_in_name_order() {
        let recorder = Recorder::new();
        let a = recorder.counter("b_counter", "second");
        let b = recorder.counter("a_counter", "first");
        let again = recorder.counter("b_counter", "ignored duplicate help");
        a.inc();
        again.add(2);
        b.add(10);
        recorder.gauge("z_gauge", "a gauge").set(2.5);
        recorder.histogram("m_hist", "a histogram").record_ns(5_000);

        let snap = recorder.snapshot();
        assert_eq!(
            snap.counters,
            vec![
                ("a_counter".to_owned(), "first".to_owned(), 10),
                ("b_counter".to_owned(), "second".to_owned(), 3),
            ]
        );
        assert_eq!(
            snap.gauges,
            vec![("z_gauge".to_owned(), "a gauge".to_owned(), 2.5)]
        );
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].0, "m_hist");
        assert_eq!(snap.histograms[0].2.count(), 1);
    }
}
