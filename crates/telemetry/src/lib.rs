//! Dependency-free telemetry for the AARC stack.
//!
//! The rest of the workspace measures *workflows*; this crate measures the
//! *stack itself*: how long evaluation batches take, where a request spent
//! its time, what the daemon did in the seconds before something went
//! wrong. Like `vendor/` and the CLI's hand-rolled HTTP layer, it is built
//! entirely on `std` — the offline build environment has no metrics or
//! logging crates — and it is deliberately tiny:
//!
//! * [`metrics`] — atomic [`Counter`]s, [`Gauge`]s and fixed-bucket
//!   log-linear [`Histogram`]s (p50/p90/p99 + sum/count). All recording is
//!   commutative integer arithmetic, so merged snapshots are independent
//!   of thread interleaving, and the [`Recorder`] registry snapshots in
//!   deterministic (name-sorted) order.
//! * [`span`] — [`Span`], a monotonic-clock stopwatch that records its
//!   elapsed time into a histogram when finished.
//! * [`flight`] — [`FlightRecorder`], a bounded ring buffer of recent
//!   structured [`Event`]s (the daemon's black box, served from
//!   `GET /debug/events`).
//! * [`log`] — [`Logger`], leveled structured logging to stderr in
//!   `text` or JSON-lines format.
//! * [`build_info`](mod@crate::build) — compile-time provenance (crate
//!   version, rustc version, cargo profile) for `GET /version`, the
//!   `aarc_build_info` metric and `BENCH_*.json`.
//! * [`prom`] — Prometheus text-exposition rendering helpers that emit
//!   `# HELP`/`# TYPE` headers for every series.
//!
//! Instrumentation built on this crate must be zero-cost when nothing is
//! attached: every clock read lives behind an `Option` check at the call
//! site, never inside the hot path itself.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod build;
pub mod flight;
mod json;
pub mod log;
pub mod metrics;
pub mod prom;
pub mod span;

pub use build::{build_info, BuildInfo};
pub use flight::{events_json, Event, FieldValue, FlightRecorder};
pub use log::{LogFormat, LogLevel, Logger};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Recorder, RecorderSnapshot, BUCKET_BOUNDS_NS,
};
pub use span::Span;
