//! Monotonic-clock spans: a stopwatch that deposits its elapsed time into
//! a histogram when finished.
//!
//! Spans are created explicitly by the caller — there is no thread-local
//! ambient context — which keeps them zero-cost at sites where telemetry
//! is not attached: no `Span::start` call, no clock read.

use std::time::Instant;

use crate::metrics::Histogram;

/// A named, in-progress timing measurement.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    started: Instant,
}

impl Span {
    /// Starts a span now (one monotonic clock read).
    pub fn start(name: &'static str) -> Self {
        Self {
            name,
            started: Instant::now(),
        }
    }

    /// The name this span was started with.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Nanoseconds elapsed since the span started, without ending it.
    pub fn elapsed_ns(&self) -> u64 {
        self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Ends the span, records its duration into `histogram`, and returns
    /// the elapsed nanoseconds.
    pub fn finish(self, histogram: &Histogram) -> u64 {
        let ns = self.elapsed_ns();
        histogram.record_ns(ns);
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_records_into_histogram() {
        let h = Histogram::new();
        let span = Span::start("unit");
        assert_eq!(span.name(), "unit");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let ns = span.finish(&h);
        assert!(ns >= 2_000_000, "span measured {ns}ns");
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.sum_ns, ns);
    }
}
