//! Compile-time build provenance, captured by the crate's build script.

/// Build provenance: crate version plus toolchain metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildInfo {
    /// Workspace crate version (`CARGO_PKG_VERSION`).
    pub crate_version: &'static str,
    /// `rustc --version` output captured at build time.
    pub rustc: &'static str,
    /// Cargo build profile (`debug` or `release`).
    pub profile: &'static str,
}

/// Returns the provenance baked into this build.
pub fn build_info() -> BuildInfo {
    BuildInfo {
        crate_version: env!("CARGO_PKG_VERSION"),
        rustc: env!("AARC_RUSTC_VERSION"),
        profile: env!("AARC_BUILD_PROFILE"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_info_is_populated() {
        let info = build_info();
        assert!(!info.crate_version.is_empty());
        assert!(!info.rustc.is_empty());
        assert!(matches!(info.profile, "debug" | "release" | "unknown"));
    }
}
