//! RFC-7807 `application/problem+json` error documents.
//!
//! Every non-2xx response on the serve API is built here: one shared
//! builder, a closed set of typed error kinds, and a stable `type` URI per
//! kind (`/api/v1/problems/<slug>`, documented in the README). The shape
//! is always `{type, title, status, detail, instance}`; 429/503 documents
//! additionally carry a `Retry-After` header.

use crate::http::Response;
use serde::Value;

/// The media type of every error document.
pub const PROBLEM_CONTENT_TYPE: &str = "application/problem+json";

/// The closed set of error kinds the API emits. Each kind fixes the
/// `type` URI, the `title` and the default status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Malformed request: unparseable body, bad query parameter, missing
    /// field (400).
    BadRequest,
    /// Missing or unknown API key when anonymous access is disabled (401).
    Unauthorized,
    /// No such route or resource — also used for resources owned by a
    /// different tenant, so existence never leaks across tenants (404).
    NotFound,
    /// The route exists but not for this method (405).
    MethodNotAllowed,
    /// The resource exists and the request conflicts with its state (409).
    Conflict,
    /// The payload parsed but failed semantic validation: invalid spec,
    /// unknown method or input class (422).
    ValidationFailed,
    /// A per-tenant quota (scenarios or live sessions) is exhausted (429).
    QuotaExceeded,
    /// The tenant's token-bucket rate limit is exhausted (429).
    RateLimited,
    /// The shared evaluation service is saturated; the global live-session
    /// watermark rejected the start (503).
    Saturated,
    /// The daemon is draining after `POST /shutdown` (503).
    ShuttingDown,
    /// The daemon is replaying its durable state after a restart; tenant
    /// routes are unavailable until recovery completes (503).
    Recovering,
    /// A durable-state write (WAL append, checkpoint) failed, so the
    /// mutation was not applied — durability is promised before any 2xx
    /// (500).
    StorageFailed,
}

impl Kind {
    /// The `type` URI slug (`/api/v1/problems/<slug>`).
    pub fn slug(self) -> &'static str {
        match self {
            Kind::BadRequest => "bad-request",
            Kind::Unauthorized => "unauthorized",
            Kind::NotFound => "not-found",
            Kind::MethodNotAllowed => "method-not-allowed",
            Kind::Conflict => "conflict",
            Kind::ValidationFailed => "validation-failed",
            Kind::QuotaExceeded => "quota-exceeded",
            Kind::RateLimited => "rate-limited",
            Kind::Saturated => "saturated",
            Kind::ShuttingDown => "shutting-down",
            Kind::Recovering => "recovering",
            Kind::StorageFailed => "storage-failed",
        }
    }

    /// The human-readable `title`, constant per kind.
    pub fn title(self) -> &'static str {
        match self {
            Kind::BadRequest => "Bad request",
            Kind::Unauthorized => "Unauthorized",
            Kind::NotFound => "Not found",
            Kind::MethodNotAllowed => "Method not allowed",
            Kind::Conflict => "Conflict",
            Kind::ValidationFailed => "Validation failed",
            Kind::QuotaExceeded => "Quota exceeded",
            Kind::RateLimited => "Rate limited",
            Kind::Saturated => "Service saturated",
            Kind::ShuttingDown => "Shutting down",
            Kind::Recovering => "Recovering",
            Kind::StorageFailed => "Storage failed",
        }
    }

    /// The HTTP status code the kind maps to.
    pub fn status(self) -> u16 {
        match self {
            Kind::BadRequest => 400,
            Kind::Unauthorized => 401,
            Kind::NotFound => 404,
            Kind::MethodNotAllowed => 405,
            Kind::Conflict => 409,
            Kind::ValidationFailed => 422,
            Kind::QuotaExceeded | Kind::RateLimited => 429,
            Kind::Saturated | Kind::ShuttingDown | Kind::Recovering => 503,
            Kind::StorageFailed => 500,
        }
    }
}

/// Builder for one problem document.
#[derive(Debug, Clone)]
pub struct Problem {
    kind: Kind,
    detail: String,
    retry_after: Option<u64>,
}

impl Problem {
    /// A problem of `kind` with a request-specific `detail` sentence.
    pub fn new(kind: Kind, detail: impl Into<String>) -> Self {
        Problem {
            kind,
            detail: detail.into(),
            retry_after: None,
        }
    }

    /// Attaches a `Retry-After` header (seconds) to the response.
    #[must_use]
    pub fn retry_after(mut self, seconds: u64) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// Renders the document as an HTTP response; `instance` is the
    /// request path the problem occurred on.
    ///
    /// `type` is a Rust keyword, so the document is assembled as a raw
    /// `Value` map rather than a derived struct.
    pub fn response(self, instance: &str) -> Response {
        let doc = Value::Map(vec![
            (
                "type".to_owned(),
                Value::Str(format!("/api/v1/problems/{}", self.kind.slug())),
            ),
            ("title".to_owned(), Value::Str(self.kind.title().to_owned())),
            (
                "status".to_owned(),
                Value::Int(i64::from(self.kind.status())),
            ),
            ("detail".to_owned(), Value::Str(self.detail)),
            ("instance".to_owned(), Value::Str(instance.to_owned())),
        ]);
        let mut body = serde_json::to_string_pretty(&doc).expect("problem document serializes");
        body.push('\n');
        let mut response = Response {
            status: self.kind.status(),
            content_type: PROBLEM_CONTENT_TYPE,
            headers: Vec::new(),
            body,
        };
        if let Some(seconds) = self.retry_after {
            response = response.with_header("Retry-After", seconds.to_string());
        }
        response
    }
}

/// Shorthand: build and render in one call.
pub fn problem(kind: Kind, detail: impl Into<String>, instance: &str) -> Response {
    Problem::new(kind, detail).response(instance)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_KINDS: [Kind; 12] = [
        Kind::BadRequest,
        Kind::Unauthorized,
        Kind::NotFound,
        Kind::MethodNotAllowed,
        Kind::Conflict,
        Kind::ValidationFailed,
        Kind::QuotaExceeded,
        Kind::RateLimited,
        Kind::Saturated,
        Kind::ShuttingDown,
        Kind::Recovering,
        Kind::StorageFailed,
    ];

    #[test]
    fn every_kind_renders_a_complete_document() {
        for kind in ALL_KINDS {
            let response = problem(kind, "something specific", "/api/v1/sessions");
            assert_eq!(response.status, kind.status(), "{:?}", kind);
            assert_eq!(response.content_type, PROBLEM_CONTENT_TYPE);
            let doc: Value = serde_json::from_str(&response.body).unwrap();
            let obj = match &doc {
                Value::Map(map) => map,
                other => panic!("problem body is not an object: {other:?}"),
            };
            for key in ["type", "title", "status", "detail", "instance"] {
                assert!(
                    obj.iter().any(|(k, _)| k == key),
                    "{:?} document missing `{key}`",
                    kind
                );
            }
            assert!(response.body.contains(kind.slug()));
            assert!(response.body.contains("something specific"));
            assert!(response.body.contains("/api/v1/sessions"));
        }
    }

    #[test]
    fn retry_after_becomes_a_header() {
        let response = Problem::new(Kind::RateLimited, "bucket empty")
            .retry_after(3)
            .response("/api/v1/sessions");
        assert_eq!(response.status, 429);
        assert_eq!(response.header("Retry-After"), Some("3"));
    }

    #[test]
    fn statuses_match_rfc_semantics() {
        assert_eq!(Kind::QuotaExceeded.status(), 429);
        assert_eq!(Kind::RateLimited.status(), 429);
        assert_eq!(Kind::Saturated.status(), 503);
        assert_eq!(Kind::ShuttingDown.status(), 503);
        assert_eq!(Kind::ValidationFailed.status(), 422);
        assert_eq!(Kind::Unauthorized.status(), 401);
        assert_eq!(Kind::Recovering.status(), 503);
        assert_eq!(Kind::StorageFailed.status(), 500);
    }
}
