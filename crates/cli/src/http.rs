//! A deliberately minimal HTTP/1.1 layer for `aarc serve`, hand-rolled
//! over `std::net` — the offline build environment has no HTTP crates, and
//! the daemon's JSON API needs nothing beyond request lines, a
//! `Content-Length` body and `Connection: close` responses.
//!
//! Supported subset:
//!
//! * request line `METHOD SP PATH SP HTTP/1.x`, headers terminated by an
//!   empty line, optional body sized by `Content-Length` (chunked bodies
//!   are rejected with `411 Length Required` semantics at the call site);
//! * request headers are captured (lower-cased names) so the router can
//!   read `X-Api-Key` for tenant resolution;
//! * responses are always `Connection: close`: one request per
//!   connection, which every HTTP client (curl included) handles and
//!   which keeps the daemon free of keep-alive bookkeeping; responses may
//!   carry extra headers (`Retry-After`, `Deprecation`, ...);
//! * hard caps on header block (16 KiB) and body (8 MiB) so a misbehaving
//!   client cannot balloon daemon memory.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Largest accepted header block, bytes.
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Largest accepted request body, bytes (scenario specs are a few KiB).
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Request path with the query string stripped.
    pub path: String,
    /// Raw query string (without the `?`); empty when the target has none.
    pub query: String,
    /// Request headers as `(lowercase-name, trimmed-value)` pairs, in
    /// arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw request body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// Looks up a query parameter by name in `key=value&...` form.
    /// Returns the raw value (no percent-decoding — the API's parameters
    /// are plain integers); a bare `key` without `=` yields `""`.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            (key == name).then_some(value)
        })
    }

    /// Looks up a request header by name (case-insensitive). Returns the
    /// first occurrence's trimmed value.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A malformed or oversized request, reported to the client as 400.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRequest(pub String);

impl std::fmt::Display for BadRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Reads one request from `stream`. Returns `Ok(None)` when the peer
/// closed the connection before sending anything (a clean disconnect, not
/// an error).
///
/// # Errors
///
/// Returns [`BadRequest`] for malformed request lines, truncated bodies
/// and requests exceeding the header/body caps; I/O errors surface as
/// `BadRequest` too (the connection is torn down either way).
pub fn read_request(stream: &mut TcpStream) -> Result<Option<Request>, BadRequest> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // Read until the blank line terminating the header block.
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(BadRequest("header block exceeds 16 KiB".into()));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| BadRequest(format!("read failed: {e}")))?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(BadRequest("connection closed mid-header".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let header_text = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| BadRequest("header block is not valid utf-8".into()))?;
    let mut lines = header_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| BadRequest("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| BadRequest("request line has no path".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| BadRequest("request line has no version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(BadRequest(format!("unsupported protocol `{version}`")));
    }
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_owned(), query.to_owned()),
        None => (target.to_owned(), String::new()),
    };

    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length: usize = 0;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| BadRequest(format!("bad content-length `{value}`")))?;
        } else if name == "transfer-encoding" {
            return Err(BadRequest(
                "chunked transfer encoding is not supported; send Content-Length".into(),
            ));
        }
        headers.push((name, value));
    }
    if content_length > MAX_BODY_BYTES {
        return Err(BadRequest("body exceeds 8 MiB".into()));
    }

    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| BadRequest(format!("read failed: {e}")))?;
        if n == 0 {
            return Err(BadRequest("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One HTTP response, written with `Connection: close`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (`Retry-After`, `Deprecation`, ...) as
    /// `(name, value)` pairs, emitted after `Content-Type`.
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body,
        }
    }

    /// Adds an extra response header (builder-style).
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.headers.push((name, value));
        self
    }

    /// The first value of an extra header, if present (case-insensitive).
    /// Test-only: production code writes headers out, it never reads them
    /// back.
    #[cfg(test)]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Serializes the response (status line, headers, body) onto `stream`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (the peer may already be gone; callers
    /// typically ignore the failure and drop the connection).
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("Connection: close\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

/// The reason phrase of the status codes the API uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A connected local socket pair for driving the parser.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn roundtrip(raw: &[u8]) -> Result<Option<Request>, BadRequest> {
        let (mut client, mut server) = pair();
        client.write_all(raw).unwrap();
        drop(client); // EOF so truncated bodies are detectable
        read_request(&mut server)
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let req = roundtrip(
            b"POST /scenarios HTTP/1.1\r\nContent-Type: text/yaml\r\nContent-Length: 11\r\n\r\nname: hello",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/scenarios");
        assert_eq!(req.body, b"name: hello");
    }

    #[test]
    fn strips_query_and_uppercases_method() {
        let req = roundtrip(b"get /sessions/3?verbose=1 HTTP/1.0\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/sessions/3");
        assert_eq!(req.query, "verbose=1");
    }

    #[test]
    fn headers_are_captured_case_insensitively() {
        let req = roundtrip(b"GET /metrics HTTP/1.1\r\nX-Api-Key:  tenant-key \r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.header("x-api-key"), Some("tenant-key"));
        assert_eq!(req.header("X-Api-Key"), Some("tenant-key"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("absent"), None);
    }

    #[test]
    fn query_params_are_retrievable() {
        let req = roundtrip(b"GET /debug/events?limit=16&flag&x=a=b HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.query_param("limit"), Some("16"));
        assert_eq!(req.query_param("flag"), Some(""));
        assert_eq!(req.query_param("x"), Some("a=b"));
        assert_eq!(req.query_param("absent"), None);

        let bare = roundtrip(b"GET /metrics HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(bare.query, "");
        assert_eq!(bare.query_param("limit"), None);
    }

    #[test]
    fn clean_disconnect_is_none() {
        assert_eq!(roundtrip(b"").unwrap(), None);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(roundtrip(b"NOT-HTTP\r\n\r\n").is_err());
        assert!(roundtrip(b"GET / HTTP/2\r\n\r\n").is_err());
        assert!(
            roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort").is_err(),
            "body shorter than content-length"
        );
        assert!(roundtrip(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").is_err());
        assert!(
            roundtrip(b"GET / HTTP/1.1\r\nne").is_err(),
            "mid-header EOF"
        );
    }

    #[test]
    fn response_serializes_with_connection_close() {
        let (mut client, mut server) = pair();
        Response::json(201, "{\"ok\":true}".into())
            .write_to(&mut server)
            .unwrap();
        drop(server);
        let mut raw = String::new();
        client.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 201 Created\r\n"), "{raw}");
        assert!(raw.contains("Content-Length: 11\r\n"));
        assert!(raw.contains("Connection: close\r\n"));
        assert!(raw.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn extra_headers_are_emitted_before_connection_close() {
        let (mut client, mut server) = pair();
        Response::json(429, "{}".into())
            .with_header("Retry-After", "2".into())
            .with_header("Deprecation", "true".into())
            .write_to(&mut server)
            .unwrap();
        drop(server);
        let mut raw = String::new();
        client.read_to_string(&mut raw).unwrap();
        assert!(
            raw.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{raw}"
        );
        assert!(raw.contains("Retry-After: 2\r\n"));
        assert!(raw.contains("Deprecation: true\r\n"));
        let headers_end = raw.find("\r\n\r\n").unwrap();
        assert!(raw[..headers_end].ends_with("Connection: close"));
    }
}
