//! The search methods the CLI can drive, behind the engine's common
//! [`ConfigurationSearch`] trait.

use aarc_baselines::{
    BayesianOptimization, BoParams, MaffGradientDescent, MaffParams, RandomSearch,
    RandomSearchParams,
};
use aarc_core::{AarcParams, ConfigurationSearch, GraphCentricScheduler};

/// The method names accepted by `--method`, in display order.
pub const METHOD_NAMES: [&str; 4] = ["aarc", "bo", "maff", "random"];

/// Builds a boxed search method from its CLI name.
pub fn build(name: &str) -> Result<Box<dyn ConfigurationSearch>, String> {
    match name {
        "aarc" => Ok(Box::new(GraphCentricScheduler::new(AarcParams::paper()))),
        "bo" => Ok(Box::new(BayesianOptimization::new(BoParams::default()))),
        "maff" => Ok(Box::new(MaffGradientDescent::new(MaffParams::default()))),
        "random" => Ok(Box::new(RandomSearch::new(RandomSearchParams::default()))),
        other => Err(format!(
            "unknown method `{other}` (accepted: {})",
            METHOD_NAMES.join(", ")
        )),
    }
}

/// All comparable methods, as `(cli_name, method)` pairs.
pub fn all() -> Vec<(&'static str, Box<dyn ConfigurationSearch>)> {
    METHOD_NAMES
        .iter()
        .map(|&name| (name, build(name).expect("static names build")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_builds_and_unknown_fails() {
        for name in METHOD_NAMES {
            assert!(build(name).is_ok(), "{name}");
        }
        assert!(build("simulated-annealing").is_err());
        assert_eq!(all().len(), 4);
    }
}
