//! `aarc loadtest` — a self-contained serving load harness.
//!
//! Spawns a real daemon in-process (`run_serve` on an ephemeral port),
//! partitions a target concurrency across N synthetic tenants, and drives
//! session starts through real sockets with a pool of client threads until
//! every tenant sits at its live-session quota. With `--hold` sessions are
//! admitted directly into the paused phase (`"paused": true` in the start
//! body), pinning peak concurrency at the target so the run measures
//! *admission* behaviour (thousands of concurrently-live sessions, `429`
//! once a tenant is full) rather than search throughput.
//!
//! The harness records every request into a latency histogram and counts
//! outcomes by class: a passing run has only 2xx and 429 responses — any
//! 5xx (including 503: quotas are sized so the global watermark is never
//! the binding constraint) fails the run, as does a peak below
//! `--min-concurrent`. Results are printed as JSON, optionally written to
//! `--out`, and `--bench FILE` merges them into an existing `aarc bench`
//! report as its `serve` phase (schema v4).

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use aarc_telemetry::{Histogram, LogFormat, LogLevel, Logger};

use crate::bench::{BenchReport, ServePhase, BENCH_VERSION};
use crate::client::{http_request_retrying, HttpReply, RetryPolicy};
use crate::problem::PROBLEM_CONTENT_TYPE;
use crate::serve::{run_serve, ServeConfig};
use crate::tenant::{TenantRegistry, TenantSpec};

/// Per-request client timeout (generous: the daemon is local, but a busy
/// scheduler can delay accepts under thousands of sessions).
const REQUEST_TIMEOUT: Duration = Duration::from_secs(30);

/// The harness's retry policy: honor `Retry-After` on 429/503 but cap it
/// hard — the daemon suggests whole seconds, and a loadtest that sleeps a
/// second per rejection measures the sleep, not the daemon.
const RETRY_POLICY: RetryPolicy = RetryPolicy {
    max_retries: 2,
    base: Duration::from_millis(2),
    cap: Duration::from_millis(20),
    seed: 0x10ad_7e57,
};

/// Parsed `aarc loadtest` flags.
pub struct LoadtestOptions {
    /// Target concurrently-live sessions across all tenants.
    pub concurrent: usize,
    /// Number of synthetic tenants the target is partitioned across.
    pub tenants: usize,
    /// Client worker threads issuing requests.
    pub clients: usize,
    /// Daemon evaluation-pool threads.
    pub threads: usize,
    /// Optional per-tenant request rate limit, to exercise the 429 rate
    /// path under load.
    pub rps: Option<f64>,
    /// Pause each admitted session, pinning peak concurrency.
    pub hold: bool,
    /// Fail the run if peak concurrency stays below this.
    pub min_concurrent: usize,
    /// Search method of the started sessions.
    pub method: String,
    /// Write the serve-phase JSON here instead of stdout.
    pub out: Option<String>,
    /// Merge the serve phase into this existing `aarc bench` report.
    pub bench: Option<String>,
}

/// Shared outcome counters, updated lock-free by every client thread.
struct Stats {
    latency: Histogram,
    requests: AtomicU64,
    accepted_2xx: AtomicU64,
    rejected_429: AtomicU64,
    rejected_503: AtomicU64,
    server_errors_5xx: AtomicU64,
    retries: AtomicU64,
    sessions_started: AtomicU64,
    concurrent_peak: AtomicU64,
}

impl Stats {
    fn new() -> Self {
        Stats {
            latency: Histogram::new(),
            requests: AtomicU64::new(0),
            accepted_2xx: AtomicU64::new(0),
            rejected_429: AtomicU64::new(0),
            rejected_503: AtomicU64::new(0),
            server_errors_5xx: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            sessions_started: AtomicU64::new(0),
            concurrent_peak: AtomicU64::new(0),
        }
    }

    /// One timed request against the daemon, classified by status class.
    /// Retryable rejections (429/503) are retried per [`RETRY_POLICY`];
    /// the latency histogram times the whole exchange, backoff included,
    /// and only the final reply is classified.
    fn call(
        &self,
        addr: SocketAddr,
        method: &str,
        path: &str,
        api_key: &str,
        body: &[u8],
    ) -> Result<HttpReply, String> {
        let started = Instant::now();
        let retried = http_request_retrying(
            addr,
            method,
            path,
            Some(api_key),
            body,
            REQUEST_TIMEOUT,
            &RETRY_POLICY,
        )?;
        self.latency.record(started.elapsed());
        let reply = retried.reply;
        self.requests
            .fetch_add(1 + u64::from(retried.retries), Ordering::Relaxed);
        self.retries
            .fetch_add(u64::from(retried.retries), Ordering::Relaxed);
        match reply.status {
            200..=299 => self.accepted_2xx.fetch_add(1, Ordering::Relaxed),
            429 => self.rejected_429.fetch_add(1, Ordering::Relaxed),
            503 => self.rejected_503.fetch_add(1, Ordering::Relaxed),
            500.. => self.server_errors_5xx.fetch_add(1, Ordering::Relaxed),
            _ => 0, // 4xx other than 429: client bugs, surfaced via counts below
        };
        // Every non-2xx the daemon emits must be an RFC-7807 problem
        // document; a bare error means the API contract broke under load.
        if reply.status >= 400 && reply.header("content-type") != Some(PROBLEM_CONTENT_TYPE) {
            return Err(format!(
                "{method} {path} answered {} without problem+json (content-type {:?})",
                reply.status,
                reply.header("content-type")
            ));
        }
        Ok(reply)
    }

    /// Folds a freshly-polled live-session sum into the peak.
    fn observe_concurrency(&self, live: u64) {
        self.concurrent_peak.fetch_max(live, Ordering::Relaxed);
    }
}

fn key_of(tenant: usize) -> String {
    format!("load-key-{tenant}")
}

/// Reads a non-negative integer out of a JSON value (the vendored data
/// model normalises small integers to `Int`).
fn value_u64(value: &serde::Value) -> Option<u64> {
    match value {
        serde::Value::Int(i) if *i >= 0 => Some(*i as u64),
        serde::Value::UInt(u) => Some(*u),
        _ => None,
    }
}

/// The tiny scenario every tenant uploads: small enough that a session
/// step is cheap, real enough that sessions live through the scheduler.
fn loadtest_spec_yaml() -> Vec<u8> {
    let mut spec = aarc_spec::synthetic_spec(aarc_spec::SynthParams {
        seed: 11,
        layers: 3,
        max_width: 3,
        ..aarc_spec::SynthParams::default()
    });
    spec.name = "loadtest".to_owned();
    aarc_spec::to_string(&spec, aarc_spec::SpecFormat::Yaml).into_bytes()
}

/// Reads the tenant's live-session count (running + paused) from the
/// pagination envelope's `total` field — two cheap `limit=1` listings.
fn poll_live(stats: &Stats, addr: SocketAddr, key: &str) -> Result<u64, String> {
    let mut live = 0;
    for status in ["running", "paused"] {
        let reply = stats.call(
            addr,
            "GET",
            &format!("/api/v1/sessions?status={status}&limit=1"),
            key,
            b"",
        )?;
        if reply.status == 200 {
            let doc = serde_json::parse(&reply.body)
                .map_err(|e| format!("unparseable session listing: {e}"))?;
            live += doc
                .get("total")
                .and_then(value_u64)
                .ok_or("session listing envelope has no total")?;
        }
    }
    Ok(live)
}

/// Runs the whole harness: spawn daemon, upload, drive, measure, drain.
///
/// # Errors
///
/// Returns a message when the daemon cannot start, any request hits a
/// transport error, any response is 5xx, the run fails to converge, or
/// peak concurrency stays under `--min-concurrent`.
pub fn run_loadtest(options: &LoadtestOptions) -> Result<(), String> {
    if options.concurrent == 0 || options.tenants == 0 || options.clients == 0 {
        return Err("--concurrent, --tenants and --clients must all be at least 1".to_owned());
    }
    let per_tenant = options.concurrent.div_ceil(options.tenants);
    let specs: Vec<TenantSpec> = (0..options.tenants)
        .map(|i| TenantSpec {
            name: format!("load-{i}"),
            api_key: Some(key_of(i)),
            max_scenarios: Some(4),
            max_live_sessions: Some(per_tenant as u64),
            requests_per_sec: options.rps,
            burst: None,
        })
        .collect();
    let registry = TenantRegistry::from_specs(&specs)?;
    // The per-tenant quotas sum to at least the target, and the global
    // watermark sits strictly above that sum: tenant quotas (429) are
    // always the binding constraint, so a correct daemon never answers
    // 503 during the run.
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: options.threads,
        tenants: registry,
        max_live_sessions: per_tenant * options.tenants + 1,
        logger: Logger::new(LogLevel::Error, LogFormat::Text),
        state_dir: None,
        checkpoint_every: crate::state::DEFAULT_CHECKPOINT_EVERY,
        tenants_config: None,
    };
    let (ready_tx, ready_rx) = mpsc::channel();
    let daemon = std::thread::spawn(move || run_serve(config, Some(ready_tx)));
    let addr = ready_rx
        .recv_timeout(Duration::from_secs(10))
        .map_err(|_| "daemon did not become ready within 10s".to_owned())?;

    let run_started = Instant::now();
    let stats = Stats::new();
    let spec_body = loadtest_spec_yaml();
    for tenant in 0..options.tenants {
        let reply = stats.call(
            addr,
            "POST",
            "/api/v1/scenarios",
            &key_of(tenant),
            &spec_body,
        )?;
        if reply.status != 201 {
            let _ = stats.call(addr, "POST", "/api/v1/shutdown", &key_of(0), b"");
            let _ = daemon.join();
            return Err(format!(
                "scenario upload for tenant {tenant} failed with {}: {}",
                reply.status, reply.body
            ));
        }
    }

    // Drive the target: each worker claims the next tenant round-robin and
    // performs one iteration against it — poll its live count, then (if
    // under quota) start a session, pausing it in hold mode. A tenant is
    // done once its live count reaches its quota (hold mode) or the global
    // start target is met. The attempt budget bounds the run when rate
    // limits slow admission to a crawl.
    // In hold mode sessions are admitted directly into the paused phase
    // (`"paused": true`): a held session can never finish on its own, so
    // live counts only grow and the peak deterministically reaches the
    // target.
    let start_body = format!(
        "{{\"scenario\": \"loadtest\", \"method\": \"{}\", \"paused\": {}}}",
        options.method, options.hold
    );
    let tenant_done: Vec<AtomicBool> = (0..options.tenants)
        .map(|_| AtomicBool::new(false))
        .collect();
    let tenant_live: Vec<AtomicU64> = (0..options.tenants).map(|_| AtomicU64::new(0)).collect();
    let next_tenant = AtomicUsize::new(0);
    let attempts = AtomicU64::new(0);
    let attempt_budget = (options.concurrent as u64) * 50 + 1000;
    let failure: std::sync::Mutex<Option<String>> = std::sync::Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..options.clients {
            scope.spawn(|| loop {
                if failure.lock().expect("failure slot").is_some() {
                    return;
                }
                if tenant_done.iter().all(|d| d.load(Ordering::Relaxed)) {
                    return;
                }
                if attempts.fetch_add(1, Ordering::Relaxed) >= attempt_budget {
                    return;
                }
                let tenant = next_tenant.fetch_add(1, Ordering::Relaxed) % options.tenants;
                if tenant_done[tenant].load(Ordering::Relaxed) {
                    continue;
                }
                let key = key_of(tenant);
                let iteration = || -> Result<(), String> {
                    let live = poll_live(&stats, addr, &key)?;
                    tenant_live[tenant].store(live, Ordering::Relaxed);
                    stats.observe_concurrency(
                        tenant_live.iter().map(|l| l.load(Ordering::Relaxed)).sum(),
                    );
                    if live >= per_tenant as u64 {
                        tenant_done[tenant].store(true, Ordering::Relaxed);
                        return Ok(());
                    }
                    if !options.hold
                        && stats.sessions_started.load(Ordering::Relaxed)
                            >= options.concurrent as u64
                    {
                        tenant_done[tenant].store(true, Ordering::Relaxed);
                        return Ok(());
                    }
                    let reply = stats.call(
                        addr,
                        "POST",
                        "/api/v1/sessions",
                        &key,
                        start_body.as_bytes(),
                    )?;
                    if reply.status == 201 {
                        stats.sessions_started.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(())
                };
                if let Err(e) = iteration() {
                    failure.lock().expect("failure slot").get_or_insert(e);
                    return;
                }
            });
        }
    });

    // Always drain the daemon, even on a failed run: shutdown cancels the
    // held (paused) sessions and the accept loop exits once drained.
    let shutdown = stats.call(addr, "POST", "/api/v1/shutdown", &key_of(0), b"");
    let joined = daemon
        .join()
        .map_err(|_| "daemon thread panicked".to_owned())?;
    shutdown?;
    joined?;

    if let Some(e) = failure.into_inner().expect("failure slot") {
        return Err(format!("loadtest client failed: {e}"));
    }

    let wall_ms = run_started.elapsed().as_secs_f64() * 1e3;
    let latency = stats.latency.snapshot();
    let phase = ServePhase {
        requests: stats.requests.load(Ordering::Relaxed),
        p50_ms: latency.quantile_ms(0.50).unwrap_or(0.0),
        p99_ms: latency.quantile_ms(0.99).unwrap_or(0.0),
        sessions_started: stats.sessions_started.load(Ordering::Relaxed),
        concurrent_peak: stats.concurrent_peak.load(Ordering::Relaxed),
        accepted_2xx: stats.accepted_2xx.load(Ordering::Relaxed),
        rejected_429: stats.rejected_429.load(Ordering::Relaxed),
        rejected_503: stats.rejected_503.load(Ordering::Relaxed),
        server_errors_5xx: stats.server_errors_5xx.load(Ordering::Relaxed),
        retries: stats.retries.load(Ordering::Relaxed),
        wall_ms,
        requests_per_sec: if wall_ms > 0.0 {
            stats.requests.load(Ordering::Relaxed) as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
    };

    let mut report =
        serde_json::to_string_pretty(&phase).expect("serve phase serialization is infallible");
    report.push('\n');
    match options.out.as_deref() {
        Some(path) => {
            aarc_spec::atomic_write(path, report.as_bytes()).map_err(|e| format!("{path}: {e}"))?
        }
        None => print!("{report}"),
    }
    if let Some(path) = options.bench.as_deref() {
        let contents = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let mut bench: BenchReport = serde_json::from_str(&contents)
            .map_err(|e| format!("{path} is not a bench report: {e}"))?;
        bench.serve = Some(phase);
        bench.version = BENCH_VERSION;
        let mut merged =
            serde_json::to_string_pretty(&bench).expect("bench report serialization is infallible");
        merged.push('\n');
        aarc_spec::atomic_write(path, merged.as_bytes()).map_err(|e| format!("{path}: {e}"))?;
    }
    eprintln!(
        "aarc loadtest: {} requests, peak {} concurrent, p50 {:.2}ms p99 {:.2}ms, \
         {} started / {} x429 / {} x503 / {} x5xx / {} retried in {:.0}ms",
        phase.requests,
        phase.concurrent_peak,
        phase.p50_ms,
        phase.p99_ms,
        phase.sessions_started,
        phase.rejected_429,
        phase.rejected_503,
        phase.server_errors_5xx,
        phase.retries,
        phase.wall_ms
    );

    if phase.server_errors_5xx > 0 {
        return Err(format!(
            "{} requests answered 5xx — the daemon must reject with 429/503 problem \
             documents, never fail",
            phase.server_errors_5xx
        ));
    }
    if phase.rejected_503 > 0 {
        return Err(format!(
            "{} requests answered 503 although tenant quotas were sized below the \
             global watermark",
            phase.rejected_503
        ));
    }
    if (phase.concurrent_peak as usize) < options.min_concurrent {
        return Err(format!(
            "peak concurrency {} stayed under --min-concurrent {}",
            phase.concurrent_peak, options.min_concurrent
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_loadtest_spec_parses_validates_and_is_named_loadtest() {
        let body = loadtest_spec_yaml();
        let spec = aarc_spec::from_slice(&body).unwrap();
        assert_eq!(spec.name, "loadtest");
        aarc_spec::validate(&spec).unwrap();
        aarc_spec::compile(&spec).unwrap();
    }

    #[test]
    fn a_small_held_loadtest_pins_its_target_concurrency() {
        let options = LoadtestOptions {
            concurrent: 12,
            tenants: 3,
            clients: 4,
            threads: 2,
            rps: None,
            hold: true,
            min_concurrent: 12,
            method: "aarc".to_owned(),
            out: None,
            bench: None,
        };
        run_loadtest(&options).unwrap();
    }
}
