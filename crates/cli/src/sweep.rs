//! `aarc sweep` — spec glob × methods × input classes on one shared
//! evaluation pool.
//!
//! Where `aarc compare` evaluates the four methods on *one* scenario,
//! `sweep` fans any number of scenarios (spec files or whole directories),
//! any subset of methods and optionally per-input-class variants out as
//! independent ask/tell searches, round-robin interleaved by the
//! [`SearchDriver`] over a single process-wide
//! [`EvalService`](aarc_simulator::EvalService) — one worker pool, one
//! fingerprint-keyed memo-cache, one scratch-arena pool.
//!
//! The report is deterministic by construction: scenarios are sorted by
//! name (so the output is independent of argument order), every per-search
//! result is bit-identical to a sequential run on a private engine (see the
//! driver's determinism contract), and cache statistics are accounted on
//! the submitting thread (so the bytes are identical for any `--threads`).
//! Wall-clock never appears in the report.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use serde::Serialize;

use aarc_core::{SearchDriver, SearchOutcome, SearchSession};
use aarc_simulator::{EvalService, EvalStats, InputClass, ScenarioEvalStats, WorkflowEnvironment};
use aarc_workloads::Workload;

use crate::methods;

/// Version stamp of the sweep report schema.
pub const SWEEP_VERSION: u32 = 1;

/// The input-class axis of a sweep: the scenario's own (nominal) input, or
/// a class representative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SweepClass {
    /// The scenario's default input, unchanged.
    Nominal,
    /// The representative input of one [`InputClass`].
    Class(InputClass),
}

impl SweepClass {
    /// The label used in reports and `--classes`.
    pub fn label(self) -> String {
        match self {
            SweepClass::Nominal => "nominal".to_string(),
            SweepClass::Class(c) => c.to_string(),
        }
    }

    /// Parses one `--classes` entry.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "nominal" => Ok(SweepClass::Nominal),
            "light" => Ok(SweepClass::Class(InputClass::Light)),
            "middle" => Ok(SweepClass::Class(InputClass::Middle)),
            "heavy" => Ok(SweepClass::Class(InputClass::Heavy)),
            other => Err(format!(
                "unknown input class `{other}` (accepted: nominal, light, middle, heavy)"
            )),
        }
    }

    /// The environment this class variant searches over (also used by the
    /// serve daemon to build per-class session environments).
    pub(crate) fn env(self, base: &WorkflowEnvironment) -> WorkflowEnvironment {
        match self {
            SweepClass::Nominal => base.clone(),
            SweepClass::Class(c) => base.with_input(c.representative()),
        }
    }
}

/// Evaluation counters as they appear in sweep reports (thread count
/// deliberately excluded: the numbers are invariant under it).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SweepEval {
    /// Simulations actually executed (cache misses).
    pub simulations: u64,
    /// Candidate evaluations answered from the shared memo-cache.
    pub cache_hits: u64,
    /// Candidate evaluations that required a simulation.
    pub cache_misses: u64,
    /// Reports dropped by FIFO eviction.
    pub evictions: u64,
    /// Fraction of evaluations served from the cache.
    pub cache_hit_rate: f64,
}

impl From<EvalStats> for SweepEval {
    fn from(stats: EvalStats) -> Self {
        SweepEval {
            simulations: stats.simulations(),
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            evictions: stats.evictions,
            cache_hit_rate: stats.hit_rate(),
        }
    }
}

impl From<ScenarioEvalStats> for SweepEval {
    fn from(stats: ScenarioEvalStats) -> Self {
        SweepEval {
            simulations: stats.simulations(),
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            evictions: stats.evictions,
            cache_hit_rate: stats.hit_rate(),
        }
    }
}

/// One scenario-variant's slice of the shared cache statistics.
#[derive(Debug, Clone, Serialize)]
pub struct SweepScenarioEval {
    /// Scenario name.
    pub scenario: String,
    /// Input-class label (`nominal`, `light`, `middle`, `heavy`).
    pub class: String,
    /// The variant's environment fingerprint, in hex (the cache-key
    /// component that isolates it in the shared cache).
    pub fingerprint: String,
    /// The variant's counters.
    pub eval: SweepEval,
}

/// One `(method, class)` search result on one scenario.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRun {
    /// CLI method name (`aarc`, `bo`, `maff`, `random`).
    pub method: String,
    /// The method's display name ("AARC", "BO", ...).
    pub display_name: String,
    /// Input-class label this run searched under.
    pub class: String,
    /// Cost of the best configuration found.
    pub final_cost: f64,
    /// End-to-end runtime of the best configuration, ms.
    pub final_makespan_ms: f64,
    /// Whether the best configuration meets the SLO.
    pub meets_slo: bool,
    /// Number of sampled workflow executions the search spent.
    pub samples: usize,
    /// Total billed cost of all sampled executions.
    pub search_cost: f64,
    /// Total (simulated) runtime of all sampled executions, ms.
    pub search_runtime_ms: f64,
}

/// All runs of one scenario, plus its summed cache statistics.
#[derive(Debug, Clone, Serialize)]
pub struct SweepScenario {
    /// Scenario name.
    pub scenario: String,
    /// The SLO every run of this scenario searched under, ms.
    pub slo_ms: f64,
    /// Number of workflow functions.
    pub functions: usize,
    /// Cache statistics summed over this scenario's class variants.
    pub eval: SweepEval,
    /// One entry per `(class, method)`, classes in `--classes` order,
    /// methods in `--methods` order.
    pub runs: Vec<SweepRun>,
}

/// The complete sweep report.
#[derive(Debug, Clone, Serialize)]
pub struct SweepReport {
    /// Schema version ([`SWEEP_VERSION`]).
    pub version: u32,
    /// One entry per scenario, sorted by name (argument-order independent).
    pub scenarios: Vec<SweepScenario>,
    /// Aggregate statistics of the shared pool over the whole sweep.
    pub eval: SweepEval,
    /// Per-fingerprint breakdown of the shared cache (one entry per
    /// scenario × class variant, in scenario order).
    pub eval_breakdown: Vec<SweepScenarioEval>,
}

impl SweepReport {
    /// Renders the runs as CSV (header + one row per run).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "scenario,class,method,final_cost,final_makespan_ms,meets_slo,samples,search_cost,search_runtime_ms\n",
        );
        for s in &self.scenarios {
            for r in &s.runs {
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{},{}\n",
                    crate::report::csv_field(&s.scenario),
                    r.class,
                    r.method,
                    r.final_cost,
                    r.final_makespan_ms,
                    r.meets_slo,
                    r.samples,
                    r.search_cost,
                    r.search_runtime_ms
                ));
            }
        }
        out
    }
}

/// Expands sweep positionals: a file names itself; a directory expands to
/// its `*.yaml` / `*.yml` / `*.json` entries in name order.
///
/// # Errors
///
/// Returns a user-facing message for unreadable paths, directories
/// containing no spec files, arguments naming nothing on disk (e.g. an
/// unexpanded glob) and an empty argument list — a sweep must never
/// silently emit an empty report.
pub fn expand_spec_args(args: &[String]) -> Result<Vec<PathBuf>, String> {
    let mut paths = Vec::new();
    for arg in args {
        let path = Path::new(arg);
        if path.is_dir() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
                .map_err(|e| format!("{arg}: {e}"))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| {
                    matches!(
                        p.extension().and_then(|e| e.to_str()),
                        Some("yaml" | "yml" | "json")
                    )
                })
                .collect();
            entries.sort();
            if entries.is_empty() {
                return Err(format!("no scenario specs found under {arg}"));
            }
            paths.extend(entries);
        } else if path.is_file() {
            paths.push(path.to_path_buf());
        } else {
            // A non-existent path — typically a shell glob that matched
            // nothing and arrived as the literal pattern.
            return Err(format!("no scenario specs found under {arg}"));
        }
    }
    if paths.is_empty() {
        return Err("sweep needs at least one spec file or directory".to_string());
    }
    Ok(paths)
}

/// One loaded scenario of the sweep.
struct SweepScenarioInput {
    workload: Workload,
    slo_ms: f64,
}

/// Runs the sweep: loads every spec, builds one search unit per
/// `(scenario, class, method)` on a shared [`EvalService`], interleaves
/// them on its pool, and assembles the report.
///
/// # Errors
///
/// Returns a user-facing message for load/compile failures or the first
/// search failure (in sorted scenario order).
pub fn run_sweep(
    spec_paths: &[PathBuf],
    method_names: &[&'static str],
    classes: &[SweepClass],
    threads: usize,
    slo_override_ms: Option<f64>,
) -> Result<SweepReport, String> {
    // Load and sort scenarios by name so the report (and the shared-pool
    // submission order) is independent of how the paths were given.
    let mut scenarios: Vec<SweepScenarioInput> = Vec::with_capacity(spec_paths.len());
    for path in spec_paths {
        let display = path.display();
        let spec = aarc_spec::load(path).map_err(|e| format!("{display}: {e}"))?;
        let workload = aarc_spec::compile(&spec)
            .map_err(|e| format!("{display}: {e}"))?
            .into_workload();
        let slo_ms = slo_override_ms.unwrap_or_else(|| workload.slo_ms());
        scenarios.push(SweepScenarioInput { workload, slo_ms });
    }
    scenarios.sort_by(|a, b| a.workload.name().cmp(b.workload.name()));
    // Duplicate names would make the name-sorted report ambiguous (and its
    // order silently argument-dependent); refuse them up front.
    for pair in scenarios.windows(2) {
        if pair[0].workload.name() == pair[1].workload.name() {
            return Err(format!(
                "two specs share the scenario name `{}` — sweep reports are keyed by name",
                pair[0].workload.name()
            ));
        }
    }

    let service = EvalService::with_threads(threads);

    // One unit per (scenario, class, method); the scenario is compiled once
    // per class variant and the cheap handle cloned across methods, so all
    // of a variant's units share one fingerprint (and stats slice).
    struct UnitMeta {
        scenario: usize,
        class: SweepClass,
        method: &'static str,
        display_name: String,
    }
    let mut metas: Vec<UnitMeta> = Vec::new();
    let mut units: Vec<SearchSession<'_>> = Vec::new();
    let mut variant_fingerprints: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    for (si, scenario) in scenarios.iter().enumerate() {
        for (ci, &class) in classes.iter().enumerate() {
            let env = class.env(scenario.workload.env());
            let handle = service.register(env);
            variant_fingerprints.insert((si, ci), handle.fingerprint());
            for &name in method_names {
                let method = methods::build(name)?;
                let strategy = method
                    .strategy(handle.env(), scenario.slo_ms)
                    .map_err(|e| sweep_error(&scenarios[si], class, name, &e))?;
                metas.push(UnitMeta {
                    scenario: si,
                    class,
                    method: name,
                    display_name: method.name().to_owned(),
                });
                units.push(SearchSession::new(strategy, handle.clone()));
            }
        }
    }

    // Interleave every search on the shared pool.
    let outcomes = SearchDriver::run_interleaved(units);

    // Assemble rows in (scenario, class, method) order; fail on the first
    // error in that order.
    let mut runs_by_scenario: Vec<Vec<SweepRun>> = scenarios.iter().map(|_| Vec::new()).collect();
    for (meta, outcome) in metas.iter().zip(outcomes) {
        let outcome: SearchOutcome = outcome
            .map_err(|e| sweep_error(&scenarios[meta.scenario], meta.class, meta.method, &e))?;
        let slo_ms = scenarios[meta.scenario].slo_ms;
        runs_by_scenario[meta.scenario].push(SweepRun {
            method: meta.method.to_owned(),
            display_name: meta.display_name.clone(),
            class: meta.class.label(),
            final_cost: outcome.best_cost(),
            final_makespan_ms: outcome.best_runtime_ms(),
            meets_slo: outcome.final_report.meets_slo(slo_ms),
            samples: outcome.trace.sample_count(),
            search_cost: outcome.trace.total_cost(),
            search_runtime_ms: outcome.trace.total_runtime_ms(),
        });
    }

    // Per-fingerprint statistics, attributed back to (scenario, class).
    let by_fingerprint: BTreeMap<u64, ScenarioEvalStats> = service
        .scenario_stats()
        .into_iter()
        .map(|s| (s.fingerprint, s))
        .collect();
    let mut eval_breakdown = Vec::new();
    let mut per_scenario_totals: Vec<SweepEval> = scenarios
        .iter()
        .map(|_| SweepEval {
            simulations: 0,
            cache_hits: 0,
            cache_misses: 0,
            evictions: 0,
            cache_hit_rate: 0.0,
        })
        .collect();
    // Two classes of one scenario can share a fingerprint (e.g. `nominal`
    // and `middle` when the spec's own input IS the nominal one): they then
    // share one counter slice, so group the class labels and count the
    // slice once per scenario instead of once per class.
    let mut fingerprint_classes: BTreeMap<(usize, u64), Vec<&str>> = BTreeMap::new();
    for (&(si, ci), &fingerprint) in &variant_fingerprints {
        fingerprint_classes
            .entry((si, fingerprint))
            .or_default()
            .push(match classes[ci] {
                SweepClass::Nominal => "nominal",
                SweepClass::Class(InputClass::Light) => "light",
                SweepClass::Class(InputClass::Middle) => "middle",
                SweepClass::Class(InputClass::Heavy) => "heavy",
            });
    }
    for (&(si, fingerprint), class_labels) in &fingerprint_classes {
        let stats = by_fingerprint
            .get(&fingerprint)
            .copied()
            .expect("every registered fingerprint has a stats slice");
        eval_breakdown.push(SweepScenarioEval {
            scenario: scenarios[si].workload.name().to_owned(),
            class: class_labels.join("+"),
            fingerprint: format!("{fingerprint:016x}"),
            eval: stats.into(),
        });
        let total = &mut per_scenario_totals[si];
        total.simulations += stats.simulations();
        total.cache_hits += stats.cache_hits;
        total.cache_misses += stats.cache_misses;
        total.evictions += stats.evictions;
    }
    for total in &mut per_scenario_totals {
        let requests = total.cache_hits + total.cache_misses;
        total.cache_hit_rate = if requests == 0 {
            0.0
        } else {
            total.cache_hits as f64 / requests as f64
        };
    }

    let scenario_reports = scenarios
        .iter()
        .zip(runs_by_scenario)
        .zip(per_scenario_totals)
        .map(|((input, runs), eval)| SweepScenario {
            scenario: input.workload.name().to_owned(),
            slo_ms: input.slo_ms,
            functions: input.workload.len(),
            eval,
            runs,
        })
        .collect();

    Ok(SweepReport {
        version: SWEEP_VERSION,
        scenarios: scenario_reports,
        eval: service.stats().into(),
        eval_breakdown,
    })
}

fn sweep_error(
    scenario: &SweepScenarioInput,
    class: SweepClass,
    method: &str,
    error: &dyn std::fmt::Display,
) -> String {
    format!(
        "sweep failed on {}/{}/{method}: {error}",
        scenario.workload.name(),
        class.label()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_dir(marker: &str, seeds: &[u64]) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("aarc-sweep-mod-{marker}"));
        std::fs::create_dir_all(&dir).unwrap();
        for &seed in seeds {
            let spec = aarc_spec::synthetic_spec(aarc_spec::SynthParams {
                seed,
                layers: 2,
                max_width: 2,
                ..aarc_spec::SynthParams::default()
            });
            aarc_spec::save(&spec, dir.join(format!("s{seed}.yaml"))).unwrap();
        }
        dir
    }

    #[test]
    fn expand_walks_directories_in_name_order() {
        let dir = spec_dir("expand", &[3, 1, 2]);
        let paths = expand_spec_args(&[dir.to_string_lossy().into_owned()]).unwrap();
        assert_eq!(paths.len(), 3);
        let names: Vec<String> = paths
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["s1.yaml", "s2.yaml", "s3.yaml"]);
        assert!(expand_spec_args(&[]).is_err());
    }

    #[test]
    fn empty_directories_and_missing_paths_are_clear_errors() {
        let empty = std::env::temp_dir().join("aarc-sweep-mod-empty");
        std::fs::create_dir_all(&empty).unwrap();
        // Remove any stray spec files from previous runs.
        for entry in std::fs::read_dir(&empty).unwrap() {
            std::fs::remove_file(entry.unwrap().path()).ok();
        }
        let arg = empty.to_string_lossy().into_owned();
        let err = expand_spec_args(std::slice::from_ref(&arg)).unwrap_err();
        assert_eq!(err, format!("no scenario specs found under {arg}"));
        // A glob that matched nothing arrives as the literal pattern.
        let glob = format!("{arg}/*.yaml");
        let err = expand_spec_args(std::slice::from_ref(&glob)).unwrap_err();
        assert_eq!(err, format!("no scenario specs found under {glob}"));
    }

    #[test]
    fn sweep_report_is_submission_order_invariant() {
        let dir = spec_dir("order", &[11, 12]);
        let a = dir.join("s11.yaml");
        let b = dir.join("s12.yaml");
        let fwd = run_sweep(
            &[a.clone(), b.clone()],
            &["aarc", "random"],
            &[SweepClass::Nominal],
            1,
            None,
        )
        .unwrap();
        let rev = run_sweep(
            &[b, a],
            &["aarc", "random"],
            &[SweepClass::Nominal],
            4,
            None,
        )
        .unwrap();
        let fwd_json = serde_json::to_string_pretty(&fwd).unwrap();
        let rev_json = serde_json::to_string_pretty(&rev).unwrap();
        assert_eq!(
            fwd_json, rev_json,
            "sweep must be argument-order and thread-count invariant"
        );
        assert_eq!(fwd.scenarios.len(), 2);
        assert_eq!(fwd.scenarios[0].runs.len(), 2);
        assert_eq!(fwd.eval_breakdown.len(), 2);
        assert!(fwd.eval.cache_hits > 0, "methods share the pool's cache");
    }

    #[test]
    fn sweep_matches_sequential_private_engines() {
        // The shared-pool interleaved sweep must report exactly what each
        // method finds on its own private engine.
        let dir = spec_dir("seq", &[21]);
        let path = dir.join("s21.yaml");
        let report = run_sweep(
            std::slice::from_ref(&path),
            &["aarc", "maff"],
            &[SweepClass::Nominal],
            2,
            None,
        )
        .unwrap();
        let spec = aarc_spec::load(&path).unwrap();
        let workload = aarc_spec::compile(&spec).unwrap().into_workload();
        for run in &report.scenarios[0].runs {
            let method = crate::methods::build(&run.method).unwrap();
            let outcome = method.search(workload.env(), workload.slo_ms()).unwrap();
            assert_eq!(run.final_cost, outcome.best_cost(), "{}", run.method);
            assert_eq!(run.samples, outcome.trace.sample_count(), "{}", run.method);
            assert_eq!(
                run.search_cost,
                outcome.trace.total_cost(),
                "{}",
                run.method
            );
        }
    }

    #[test]
    fn classes_add_per_class_rows_and_fingerprints() {
        let dir = spec_dir("classes", &[31]);
        let path = dir.join("s31.yaml");
        let report = run_sweep(
            &[path],
            &["aarc"],
            &[SweepClass::Nominal, SweepClass::Class(InputClass::Light)],
            1,
            None,
        )
        .unwrap();
        let runs = &report.scenarios[0].runs;
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].class, "nominal");
        assert_eq!(runs[1].class, "light");
        assert_eq!(report.eval_breakdown.len(), 2);
        assert_ne!(
            report.eval_breakdown[0].fingerprint, report.eval_breakdown[1].fingerprint,
            "per-class envs must occupy distinct cache-key spaces"
        );
    }

    #[test]
    fn colliding_class_fingerprints_are_grouped_not_double_counted() {
        // Synthetic specs default to the nominal input, so the `nominal`
        // and `middle` variants produce byte-identical environments (one
        // fingerprint, one shared counter slice). The report must group
        // them into one breakdown entry and count the slice once.
        let dir = spec_dir("collide", &[41]);
        let path = dir.join("s41.yaml");
        let report = run_sweep(
            std::slice::from_ref(&path),
            &["aarc"],
            &[SweepClass::Nominal, SweepClass::Class(InputClass::Middle)],
            1,
            None,
        )
        .unwrap();
        assert_eq!(report.scenarios[0].runs.len(), 2, "both class runs kept");
        assert_eq!(report.eval_breakdown.len(), 1, "one entry per fingerprint");
        assert_eq!(report.eval_breakdown[0].class, "nominal+middle");
        let scenario_eval = report.scenarios[0].eval;
        assert_eq!(
            scenario_eval.simulations, report.eval.simulations,
            "single-scenario sweep: per-scenario eval must equal the aggregate"
        );
        assert_eq!(scenario_eval.cache_hits, report.eval.cache_hits);
    }

    #[test]
    fn duplicate_scenario_names_are_rejected() {
        let dir = spec_dir("dup", &[51]);
        let a = dir.join("s51.yaml");
        let b = dir.join("s51-copy.yaml");
        std::fs::copy(&a, &b).unwrap();
        let err = run_sweep(&[a, b], &["aarc"], &[SweepClass::Nominal], 1, None).unwrap_err();
        assert!(err.contains("share the scenario name"), "{err}");
    }

    #[test]
    fn sweep_class_parse_round_trips() {
        for label in ["nominal", "light", "middle", "heavy"] {
            assert_eq!(SweepClass::parse(label).unwrap().label(), label);
        }
        assert!(SweepClass::parse("gigantic").is_err());
    }
}
