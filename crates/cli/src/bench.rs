//! `aarc bench` — the machine-readable performance benchmark behind the CI
//! perf-regression gate.
//!
//! For every spec the harness measures four things through the shared
//! [`EvalService`]:
//!
//! 1. **Thread-scaling curve** — a deterministic batch of candidate
//!    configurations (derived from the spec fingerprint, so the workload is
//!    identical across machines and runs) evaluated at 1, 2, 4 and the
//!    requested thread count, yielding `sims_per_sec` and `speedup` per
//!    point on the work-stealing pool.
//! 2. **Incremental re-simulation** — a suffix-edit probe chain (each probe
//!    re-tunes one node of the previous candidate, the access pattern of a
//!    local search) timed through the event-loop reference and through an
//!    anchored [`BatchSim`] chain, yielding the incremental speedup and the
//!    kernel's reuse counters.
//! 3. **Intra-batch dedup** — a duplicate-heavy batch (the shape
//!    population-based searches produce) timed once, reporting how many
//!    candidates the scheduler fanned out without simulating.
//! 4. **Search wall-clock** — all four search methods run through one
//!    shared memoising service (exactly what `aarc compare` does), yielding
//!    `wall_ms`, sample counts and the cache hit rate.
//!
//! On top of the per-scenario phases, an **aggregate shared-pool phase**
//! registers every spec on one [`EvalService`] and replays all candidate
//! batches through it back-to-back — the multi-scenario throughput the
//! service layer is supposed to sustain, gated so the shared substrate
//! cannot silently regress.
//!
//! The result serializes as `BENCH_*.json` (see README for the schema). In
//! gate mode the harness compares itself against a committed baseline and
//! fails on >`max_regress` regressions of search wall-clock, peak
//! throughput or aggregate shared-pool throughput, on parallel speedup
//! below `--min-speedup`, on incremental re-simulation speedup below
//! `--min-incremental-speedup`, or on a zero cache hit rate.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use aarc_simulator::kernel::{BatchSim, CompiledScenario, SimScratch};
use aarc_simulator::{ConfigMap, EvalOptions, EvalService, EvalTelemetry, ResourceConfig};
use aarc_telemetry::{FlightRecorder, Recorder};
use aarc_workloads::Workload;

use crate::methods;
use crate::version::VersionInfo;

/// Version stamp of the `BENCH_*.json` schema (2 added the aggregate
/// shared-pool phase; 3 added per-batch eval latency percentiles and build
/// provenance; 4 added the optional `serve` phase written by
/// `aarc loadtest --bench`; 5 replaced the 1-vs-N throughput pair with the
/// `thread_scaling` curve and added the `incremental_resim` and
/// `batch_dedup` phases; 6 added the `alloc` phase — result-slab
/// allocations per simulation from the round-three kernel counters, gated
/// by `--max-allocs-per-sim`). Version-1..5 baselines still parse — the
/// added fields are optional and simply absent, and the legacy
/// `single_thread`/`multi_thread` pair is still read through the
/// [`BenchScenario`] accessors for gating.
pub const BENCH_VERSION: u32 = 6;

/// One timed batch evaluation at a fixed thread count.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThroughputPhase {
    /// Wall-clock time of the batch, ms.
    pub wall_ms: f64,
    /// Simulations executed.
    pub simulations: u64,
    /// Simulations per second.
    pub sims_per_sec: f64,
}

/// One point of the thread-scaling curve: the candidate batch evaluated on
/// a work-stealing pool of `threads` workers.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Worker threads of this point.
    pub threads: usize,
    /// Wall-clock time of the batch, ms.
    pub wall_ms: f64,
    /// Simulations executed.
    pub simulations: u64,
    /// Simulations per second.
    pub sims_per_sec: f64,
    /// Throughput relative to the 1-thread point of the same curve.
    pub speedup: f64,
}

/// The incremental re-simulation phase: a suffix-edit probe chain timed
/// through the event-loop reference and through an anchored [`BatchSim`]
/// chain that re-simulates only downstream of each edit.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IncrementalPhase {
    /// Probes in the chain (each edits one node of its predecessor).
    pub probes: u64,
    /// Times the chain was replayed per timed loop; both wall-clocks and
    /// the kernel counters below span `probes * rounds` simulations.
    #[serde(default)]
    pub rounds: u64,
    /// Wall-clock of the full event-loop re-simulation of every probe, ms.
    pub full_wall_ms: f64,
    /// Wall-clock of the anchored incremental chain over the same probes, ms.
    pub incremental_wall_ms: f64,
    /// `full_wall_ms / incremental_wall_ms`.
    pub speedup: f64,
    /// Probes served incrementally off an anchor (0 when the scenario is
    /// not exactness-eligible, e.g. runtime jitter is configured).
    pub incremental_sims: u64,
    /// Node outcomes copied from an anchor instead of recomputed.
    pub nodes_reused: u64,
}

/// The intra-batch dedup phase: a duplicate-heavy batch through the
/// scheduler, reporting how many candidates were fanned out from an
/// in-flight twin instead of simulated.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DedupPhase {
    /// Candidates submitted.
    pub batch: u64,
    /// Distinct candidates in the batch.
    pub unique: u64,
    /// Duplicates served by intra-batch fan-out (0 under runtime jitter,
    /// where every position legitimately carries its own seed).
    pub dedup_hits: u64,
    /// Wall-clock time of the batch, ms.
    pub wall_ms: f64,
    /// Effective candidates per second (submitted, not simulated).
    pub candidates_per_sec: f64,
}

/// The allocation phase: result-slab heap behaviour of the batch miss
/// path, read from the round-three kernel counters after a cache-less
/// single-thread batch. One slab is minted per work-stealing chunk, so a
/// healthy batch path sits far below one allocation per simulation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AllocPhase {
    /// Simulations the counters span.
    pub sims: u64,
    /// Result-slab heap allocations the kernel performed.
    pub result_slab_allocs: u64,
    /// Bytes of outcome storage those slabs carried.
    pub result_slab_bytes: u64,
    /// `result_slab_allocs / sims` — the gated figure.
    pub allocs_per_sim: f64,
    /// `result_slab_bytes / sims`.
    pub bytes_per_sim: f64,
}

/// Per-request eval latency percentiles, from the telemetry histograms
/// attached to the search phase's service (batch and probe requests
/// merged, so probe-only methods contribute too).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LatencyPercentiles {
    /// Median eval request latency, ms.
    pub p50_ms: f64,
    /// 90th-percentile eval request latency, ms.
    pub p90_ms: f64,
    /// 99th-percentile eval request latency, ms.
    pub p99_ms: f64,
    /// Requests the percentiles were computed over.
    pub samples: u64,
}

/// One timed all-methods search run through a shared memoising engine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SearchPhase {
    /// Wall-clock time of all four searches, ms.
    pub wall_ms: f64,
    /// Search samples recorded across all methods.
    pub samples: u64,
    /// Simulations actually executed (cache misses).
    pub simulations: u64,
    /// Evaluations answered from the memo-cache.
    pub cache_hits: u64,
    /// Evaluations that required a simulation.
    pub cache_misses: u64,
    /// Fraction of evaluations served from the cache.
    pub cache_hit_rate: f64,
    /// Eval request latency percentiles (absent in version-1/2 baselines).
    pub latency: Option<LatencyPercentiles>,
}

/// Benchmark results of one scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchScenario {
    /// Scenario name (from the spec).
    pub scenario: String,
    /// Fingerprint of the spec the candidate batch was derived from.
    pub spec_fingerprint: u64,
    /// Number of workflow functions.
    pub functions: usize,
    /// Legacy 1-thread throughput of version-1..4 baselines; version-5
    /// reports carry the full `thread_scaling` curve instead.
    #[serde(default)]
    pub single_thread: Option<ThroughputPhase>,
    /// Legacy N-thread throughput of version-1..4 baselines.
    #[serde(default)]
    pub multi_thread: Option<ThroughputPhase>,
    /// The thread-scaling curve at 1, 2, 4 and the requested thread count
    /// (deduplicated, capped at `--threads`; empty in version-1..4
    /// baselines).
    #[serde(default)]
    pub thread_scaling: Vec<ScalingPoint>,
    /// Peak-over-1-thread throughput ratio (the last curve point's
    /// speedup; `multi/single` in legacy baselines).
    pub speedup: f64,
    /// The incremental re-simulation phase (absent in version-1..4
    /// baselines).
    #[serde(default)]
    pub incremental_resim: Option<IncrementalPhase>,
    /// The intra-batch dedup phase (absent in version-1..4 baselines).
    #[serde(default)]
    pub batch_dedup: Option<DedupPhase>,
    /// The result-slab allocation phase (absent in version-1..5
    /// baselines).
    #[serde(default)]
    pub alloc: Option<AllocPhase>,
    /// The all-methods search phase.
    pub search: SearchPhase,
}

impl BenchScenario {
    /// Best throughput over the scaling curve, or the legacy multi-thread
    /// phase of version-1..4 baselines. The max, not the last point: on a
    /// multicore runner they coincide, while on an oversubscribed small
    /// box the 1-thread point is both the fastest and the most stable —
    /// gating the max keeps the regression check about the code.
    pub fn peak_sims_per_sec(&self) -> Option<f64> {
        self.thread_scaling
            .iter()
            .map(|p| p.sims_per_sec)
            .max_by(f64::total_cmp)
            .or(self.multi_thread.map(|p| p.sims_per_sec))
    }
}

/// The aggregate shared-pool phase: every scenario's candidate batch
/// replayed back-to-back through one multi-scenario [`EvalService`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AggregatePhase {
    /// Wall-clock time of all batches together, ms.
    pub wall_ms: f64,
    /// Simulations executed across all scenarios.
    pub simulations: u64,
    /// Aggregate simulations per second on the shared pool.
    pub sims_per_sec: f64,
}

/// The serving phase written by `aarc loadtest --bench`: request latency
/// and admission-control outcomes of driving many concurrent search
/// sessions against an in-process daemon over real sockets.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServePhase {
    /// HTTP requests issued by the harness.
    pub requests: u64,
    /// Median request latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile request latency, ms.
    pub p99_ms: f64,
    /// Sessions the daemon admitted (201 replies).
    pub sessions_started: u64,
    /// Peak concurrently-live sessions observed.
    pub concurrent_peak: u64,
    /// Requests answered 2xx.
    pub accepted_2xx: u64,
    /// Requests rejected 429 (quota or rate admission control).
    pub rejected_429: u64,
    /// Requests rejected 503 (global watermark or shutdown).
    pub rejected_503: u64,
    /// Requests answered 5xx — always 0 on a passing run.
    pub server_errors_5xx: u64,
    /// Client-side retries after a 429/503 with `Retry-After` (absent in
    /// reports written before the retrying client; defaults to 0).
    #[serde(default)]
    pub retries: u64,
    /// Wall-clock time of the whole loadtest, ms.
    pub wall_ms: f64,
    /// Requests per second sustained over the run.
    pub requests_per_sec: f64,
}

/// The complete `BENCH_*.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version ([`BENCH_VERSION`]).
    pub version: u32,
    /// Worker threads used for the multi-thread phases.
    pub threads: usize,
    /// Candidates per throughput batch.
    pub batch: usize,
    /// One entry per benched spec, in argument order.
    pub scenarios: Vec<BenchScenario>,
    /// The aggregate shared-pool phase over all scenarios (absent in
    /// version-1 baselines).
    pub aggregate: Option<AggregatePhase>,
    /// Provenance of the binary that produced the report (absent in
    /// version-1/2 baselines).
    pub build_info: Option<VersionInfo>,
    /// The serving phase, merged in by `aarc loadtest --bench` (absent in
    /// version-1/2/3 baselines and in plain `aarc bench` reports).
    pub serve: Option<ServePhase>,
    /// Sum of the per-scenario search wall-clocks, ms.
    pub total_search_wall_ms: f64,
    /// Geometric mean of the per-scenario parallel speedups.
    pub mean_speedup: f64,
}

/// Deterministic candidate batch for one workload: `batch` configuration
/// maps drawn from an RNG seeded with the spec fingerprint, snapped onto the
/// scenario's resource grid.
fn candidate_batch(workload: &Workload, fingerprint: u64, batch: usize) -> Vec<ConfigMap> {
    let env = workload.env();
    let space = *env.space();
    let n = env.workflow().len();
    let mut rng = StdRng::seed_from_u64(fingerprint);
    (0..batch)
        .map(|_| {
            ConfigMap::from_vec(
                (0..n)
                    .map(|_| {
                        let vcpu = space.snap_vcpu(rng.gen_range(space.min_vcpu..=space.max_vcpu));
                        let mem = space
                            .snap_memory(rng.gen_range(space.min_memory_mb..=space.max_memory_mb));
                        ResourceConfig::new(vcpu, mem)
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Times one batch evaluation on a fresh, cache-less service with
/// `threads` workers.
fn time_batch(
    workload: &Workload,
    candidates: &[ConfigMap],
    threads: usize,
) -> Result<ThroughputPhase, String> {
    // The cache is disabled so the phase times raw simulation throughput,
    // not memoisation.
    let service = EvalService::new(EvalOptions {
        threads,
        cache_capacity: 0,
    });
    let handle = service.register(workload.env().clone());
    // A 4096-candidate batch clears in single-digit milliseconds, so one
    // pass is timing noise: keep the best of several (minimum wall-clock
    // estimates the true cost; the cache is off, so every pass re-simulates).
    let passes = if cfg!(debug_assertions) { 1 } else { 3 };
    let mut wall_ms = f64::INFINITY;
    let mut simulations = 0;
    for _ in 0..passes {
        let before = handle.stats().simulations();
        let start = Instant::now();
        handle
            .evaluate_batch(candidates)
            .map_err(|e| format!("batch evaluation failed: {e}"))?;
        wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1_000.0);
        simulations = handle.stats().simulations() - before;
    }
    Ok(ThroughputPhase {
        wall_ms,
        simulations,
        sims_per_sec: if wall_ms > 0.0 {
            simulations as f64 / (wall_ms / 1_000.0)
        } else {
            f64::INFINITY
        },
    })
}

/// The thread counts of the scaling curve: 1, 2, 4 and the requested
/// count, deduplicated and capped at `threads`.
fn scaling_thread_counts(threads: usize) -> Vec<usize> {
    let mut counts: Vec<usize> = [1, 2, 4, threads]
        .into_iter()
        .filter(|&t| t <= threads.max(1))
        .collect();
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Measures the thread-scaling curve of one candidate batch.
fn time_scaling(
    workload: &Workload,
    candidates: &[ConfigMap],
    threads: usize,
) -> Result<Vec<ScalingPoint>, String> {
    let mut curve: Vec<ScalingPoint> = Vec::new();
    for t in scaling_thread_counts(threads) {
        let phase = time_batch(workload, candidates, t)?;
        let base = curve
            .first()
            .map(|p| p.sims_per_sec)
            .unwrap_or(phase.sims_per_sec);
        curve.push(ScalingPoint {
            threads: t,
            wall_ms: phase.wall_ms,
            simulations: phase.simulations,
            sims_per_sec: phase.sims_per_sec,
            speedup: if base > 0.0 {
                phase.sims_per_sec / base
            } else {
                1.0
            },
        });
    }
    Ok(curve)
}

/// Times a suffix-edit probe chain twice: full event-loop re-simulation of
/// every probe versus an anchored incremental chain. Both walk the same
/// deterministic chain (derived from the spec fingerprint), so the phase
/// isolates the re-simulation strategy, nothing else.
fn time_incremental(
    workload: &Workload,
    fingerprint: u64,
    probes: usize,
) -> Result<IncrementalPhase, String> {
    let env = workload.env();
    let compiled = CompiledScenario::compile(
        env.workflow(),
        env.profiles(),
        *env.cluster(),
        *env.pricing(),
    )
    .map_err(|e| format!("scenario compilation failed: {e}"))?;
    let space = *env.space();
    let n = env.workflow().len();
    let mut rng = StdRng::seed_from_u64(fingerprint ^ 0x1c4e);
    let mut configs: Vec<ResourceConfig> = env.base_configs().as_slice().to_vec();
    let mut chain = Vec::with_capacity(probes);
    for _ in 0..probes {
        // Suffix bias: re-tune a node from the back half of the DAG, the
        // stagewise scheduler's probe pattern (it walks critical-path
        // suffixes), leaving the upstream timeline reusable.
        let node = n - 1 - rng.gen_range(0..n.div_ceil(3));
        let vcpu = space.snap_vcpu(rng.gen_range(space.min_vcpu..=space.max_vcpu));
        let mem = space.snap_memory(rng.gen_range(space.min_memory_mb..=space.max_memory_mb));
        configs[node] = ResourceConfig::new(vcpu, mem);
        chain.push(ConfigMap::from_vec(configs.clone()));
    }
    let seed = env.seed();
    let input = env.input();
    let mut scratch = SimScratch::new();

    // Paper-scale DAGs simulate in well under a microsecond, so a single
    // pass over the chain is timing noise on a busy runner: replay the
    // chain until each timed loop has executed ~100k simulations, and keep
    // the best of several passes (the minimum wall-clock estimates the true
    // cost; averaging would bake scheduler hiccups into the gate). Debug
    // builds (the unit tests) only need the counters, not stable timing.
    // Five passes, not three: this phase feeds a hard CI floor (not a
    // relative regression check), so it gets the most noise rejection.
    let (budget, passes) = if cfg!(debug_assertions) {
        (2_000, 1)
    } else {
        (100_000, 5)
    };
    let rounds = (budget / probes.max(1)).max(1);

    let mut full_wall_ms = f64::INFINITY;
    for _ in 0..passes {
        let start = Instant::now();
        for _ in 0..rounds {
            for c in &chain {
                compiled
                    .simulate_reference(&mut scratch, c, input, seed)
                    .map_err(|e| format!("reference simulation failed: {e}"))?;
            }
        }
        full_wall_ms = full_wall_ms.min(start.elapsed().as_secs_f64() * 1_000.0);
    }

    // Counters are deltaed over the first pass only, so `probes * rounds`
    // stays the denominator they are read against.
    let before = scratch.counters();
    let mut after = before;
    let mut batch_sim = BatchSim::new(&compiled, input);
    let mut incremental_wall_ms = f64::INFINITY;
    for pass in 0..passes {
        let start = Instant::now();
        for _ in 0..rounds {
            for c in &chain {
                batch_sim
                    .simulate(&mut scratch, c, seed)
                    .map_err(|e| format!("incremental simulation failed: {e}"))?;
            }
        }
        incremental_wall_ms = incremental_wall_ms.min(start.elapsed().as_secs_f64() * 1_000.0);
        if pass == 0 {
            after = scratch.counters();
        }
    }

    Ok(IncrementalPhase {
        probes: chain.len() as u64,
        rounds: rounds as u64,
        full_wall_ms,
        incremental_wall_ms,
        speedup: if incremental_wall_ms > 0.0 {
            full_wall_ms / incremental_wall_ms
        } else {
            f64::INFINITY
        },
        incremental_sims: after.incremental_sims - before.incremental_sims,
        nodes_reused: after.nodes_reused - before.nodes_reused,
    })
}

/// Times a duplicate-heavy batch — the unique prefix of the candidate
/// batch replicated back to full size, the shape population-based searches
/// produce when they re-propose configurations.
fn time_dedup(workload: &Workload, candidates: &[ConfigMap]) -> Result<DedupPhase, String> {
    let unique = candidates.len().div_ceil(8).max(1);
    let batch: Vec<ConfigMap> = (0..candidates.len())
        .map(|i| candidates[i % unique].clone())
        .collect();
    // Cache off so dedup, not memoisation, answers the duplicates.
    let service = EvalService::new(EvalOptions {
        threads: 1,
        cache_capacity: 0,
    });
    let handle = service.register(workload.env().clone());
    let start = Instant::now();
    handle
        .evaluate_batch(&batch)
        .map_err(|e| format!("dedup batch evaluation failed: {e}"))?;
    let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
    Ok(DedupPhase {
        batch: batch.len() as u64,
        unique: unique as u64,
        dedup_hits: handle.batch_dedup_hits(),
        wall_ms,
        candidates_per_sec: if wall_ms > 0.0 {
            batch.len() as f64 / (wall_ms / 1_000.0)
        } else {
            f64::INFINITY
        },
    })
}

/// Measures result-slab allocation behaviour: the candidate batch through
/// a fresh cache-less single-thread service, then the kernel counters. The
/// service is fresh so the counters span exactly this batch; single-thread
/// because the chunk count (and therefore the slab count) is a pure
/// function of the batch length, so one worker measures what every pool
/// width would.
fn time_alloc(workload: &Workload, candidates: &[ConfigMap]) -> Result<AllocPhase, String> {
    let service = EvalService::new(EvalOptions {
        threads: 1,
        cache_capacity: 0,
    });
    let handle = service.register(workload.env().clone());
    handle
        .evaluate_batch(candidates)
        .map_err(|e| format!("alloc batch evaluation failed: {e}"))?;
    let counters = service.kernel_counters();
    Ok(AllocPhase {
        sims: counters.sims,
        result_slab_allocs: counters.result_slab_allocs,
        result_slab_bytes: counters.result_slab_bytes,
        allocs_per_sim: counters.allocs_per_sim(),
        bytes_per_sim: counters.bytes_per_sim(),
    })
}

/// Runs all four search methods through one shared memoising service and
/// times the whole sweep. The service carries telemetry instruments so the
/// phase also reports per-request eval latency percentiles.
///
/// Best-of-N like the throughput phases, each pass on a *fresh* service so
/// every pass pays the same cold cache; the searches are deterministic, so
/// only the wall-clock differs between passes and the fastest one is the
/// least-perturbed measurement of the same work.
fn time_search(workload: &Workload, threads: usize) -> Result<SearchPhase, String> {
    let passes = if cfg!(debug_assertions) { 1 } else { 5 };
    let mut best: Option<SearchPhase> = None;
    for _ in 0..passes {
        let service = EvalService::with_threads(threads);
        let recorder = Recorder::new();
        service
            .attach_telemetry(EvalTelemetry::new(
                &recorder,
                Arc::new(FlightRecorder::new(1)),
            ))
            .expect("fresh service has no telemetry attached");
        let handle = service.register(workload.env().clone());
        let mut samples = 0u64;
        let start = Instant::now();
        for (name, method) in methods::all() {
            let outcome = method
                .search_on(&handle, workload.slo_ms())
                .map_err(|e| format!("method `{name}` failed: {e}"))?;
            samples += outcome.trace.sample_count() as u64;
        }
        let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
        let stats = handle.stats();
        // Batch and probe requests merged: probe-only methods would
        // otherwise leave the percentiles empty.
        let mut latency_hist = recorder.histogram("aarc_eval_batch_seconds", "").snapshot();
        latency_hist.merge(&recorder.histogram("aarc_eval_probe_seconds", "").snapshot());
        let latency = match (
            latency_hist.quantile_ms(0.50),
            latency_hist.quantile_ms(0.90),
            latency_hist.quantile_ms(0.99),
        ) {
            (Some(p50_ms), Some(p90_ms), Some(p99_ms)) => Some(LatencyPercentiles {
                p50_ms,
                p90_ms,
                p99_ms,
                samples: latency_hist.count(),
            }),
            _ => None,
        };
        let phase = SearchPhase {
            wall_ms,
            samples,
            simulations: stats.simulations(),
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            cache_hit_rate: stats.hit_rate(),
            latency,
        };
        if best.as_ref().is_none_or(|b| phase.wall_ms < b.wall_ms) {
            best = Some(phase);
        }
    }
    Ok(best.expect("at least one search pass ran"))
}

/// Replays every scenario's candidate batch back-to-back through one
/// multi-scenario, cache-less service — the aggregate throughput the
/// shared substrate sustains when many scenarios draw from one pool.
fn time_aggregate(
    workloads: &[(Workload, Vec<ConfigMap>)],
    threads: usize,
) -> Result<AggregatePhase, String> {
    let service = EvalService::new(EvalOptions {
        threads,
        cache_capacity: 0,
    });
    let handles: Vec<_> = workloads
        .iter()
        .map(|(workload, _)| service.register(workload.env().clone()))
        .collect();
    // Best-of-N for the same reason as `time_batch`: the pooled batches
    // clear in milliseconds and the ±20% gate needs a stable estimate.
    let passes = if cfg!(debug_assertions) { 1 } else { 3 };
    let mut wall_ms = f64::INFINITY;
    let mut simulations = 0;
    for _ in 0..passes {
        let before = service.stats().simulations();
        let start = Instant::now();
        for (handle, (_, candidates)) in handles.iter().zip(workloads) {
            handle
                .evaluate_batch(candidates)
                .map_err(|e| format!("aggregate batch evaluation failed: {e}"))?;
        }
        wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1_000.0);
        simulations = service.stats().simulations() - before;
    }
    Ok(AggregatePhase {
        wall_ms,
        simulations,
        sims_per_sec: if wall_ms > 0.0 {
            simulations as f64 / (wall_ms / 1_000.0)
        } else {
            f64::INFINITY
        },
    })
}

/// Benchmarks every spec and assembles the report.
///
/// # Errors
///
/// Returns a user-facing message if a spec fails to load/compile or a
/// search fails.
pub fn run_bench(
    spec_paths: &[String],
    threads: usize,
    batch: usize,
) -> Result<BenchReport, String> {
    let mut workloads: Vec<(Workload, Vec<ConfigMap>)> = Vec::with_capacity(spec_paths.len());
    let mut fingerprints = Vec::with_capacity(spec_paths.len());
    for path in spec_paths {
        let spec = aarc_spec::load(path).map_err(|e| format!("{path}: {e}"))?;
        let fingerprint = spec.fingerprint();
        let workload = aarc_spec::compile(&spec)
            .map_err(|e| format!("{path}: {e}"))?
            .into_workload();
        let candidates = candidate_batch(&workload, fingerprint, batch);
        fingerprints.push(fingerprint);
        workloads.push((workload, candidates));
    }

    let mut scenarios = Vec::with_capacity(workloads.len());
    for ((workload, candidates), fingerprint) in workloads.iter().zip(fingerprints) {
        let thread_scaling = time_scaling(workload, candidates, threads)?;
        let incremental_resim = time_incremental(workload, fingerprint, batch)?;
        let batch_dedup = time_dedup(workload, candidates)?;
        let alloc = time_alloc(workload, candidates)?;
        let search = time_search(workload, threads)?;
        scenarios.push(BenchScenario {
            scenario: workload.name().to_owned(),
            spec_fingerprint: fingerprint,
            functions: workload.len(),
            single_thread: None,
            multi_thread: None,
            speedup: thread_scaling.last().map(|p| p.speedup).unwrap_or(1.0),
            thread_scaling,
            incremental_resim: Some(incremental_resim),
            batch_dedup: Some(batch_dedup),
            alloc: Some(alloc),
            search,
        });
    }
    let aggregate = time_aggregate(&workloads, threads)?;
    let total_search_wall_ms = scenarios.iter().map(|s| s.search.wall_ms).sum();
    let mean_speedup = if scenarios.is_empty() {
        0.0
    } else {
        let log_sum: f64 = scenarios.iter().map(|s| s.speedup.ln()).sum();
        (log_sum / scenarios.len() as f64).exp()
    };
    Ok(BenchReport {
        version: BENCH_VERSION,
        threads,
        batch,
        scenarios,
        aggregate: Some(aggregate),
        build_info: Some(VersionInfo::current()),
        serve: None,
        total_search_wall_ms,
        mean_speedup,
    })
}

/// Gate checks: regression vs a committed baseline, minimum parallel
/// speedup, minimum incremental re-simulation speedup, a result-slab
/// allocation ceiling and a nonzero cache hit rate. Returns all failures
/// (empty = gate passes).
pub fn gate_failures(
    current: &BenchReport,
    baseline: Option<&BenchReport>,
    max_regress: f64,
    min_speedup: Option<f64>,
    min_incremental: Option<f64>,
    max_allocs_per_sim: Option<f64>,
) -> Vec<String> {
    let mut failures = Vec::new();
    if let Some(base) = baseline {
        for base_scenario in &base.scenarios {
            let Some(cur) = current
                .scenarios
                .iter()
                .find(|s| s.scenario == base_scenario.scenario)
            else {
                failures.push(format!(
                    "scenario `{}` present in baseline but not benched",
                    base_scenario.scenario
                ));
                continue;
            };
            let wall_limit = base_scenario.search.wall_ms * (1.0 + max_regress);
            if cur.search.wall_ms > wall_limit {
                failures.push(format!(
                    "`{}`: search wall-clock regressed {:.1} ms -> {:.1} ms (limit {:.1} ms, +{:.0}%)",
                    cur.scenario,
                    base_scenario.search.wall_ms,
                    cur.search.wall_ms,
                    wall_limit,
                    max_regress * 100.0
                ));
            }
            // Peak throughput reads through the accessors so version-1..4
            // baselines (legacy pair) gate against version-5 runs (curve).
            if let (Some(base_sims), Some(cur_sims)) =
                (base_scenario.peak_sims_per_sec(), cur.peak_sims_per_sec())
            {
                let sims_floor = base_sims * (1.0 - max_regress);
                if cur_sims < sims_floor {
                    failures.push(format!(
                        "`{}`: simulations/sec regressed {:.0} -> {:.0} (floor {:.0}, -{:.0}%)",
                        cur.scenario,
                        base_sims,
                        cur_sims,
                        sims_floor,
                        max_regress * 100.0
                    ));
                }
            }
        }
    }
    if let Some(base) = baseline {
        if let (Some(base_agg), Some(cur_agg)) = (&base.aggregate, &current.aggregate) {
            let floor = base_agg.sims_per_sec * (1.0 - max_regress);
            if cur_agg.sims_per_sec < floor {
                failures.push(format!(
                    "aggregate shared-pool sims/sec regressed {:.0} -> {:.0} (floor {:.0}, -{:.0}%)",
                    base_agg.sims_per_sec,
                    cur_agg.sims_per_sec,
                    floor,
                    max_regress * 100.0
                ));
            }
        }
    }
    if let Some(min) = min_speedup {
        for s in &current.scenarios {
            if s.speedup < min {
                failures.push(format!(
                    "`{}`: parallel speedup {:.2}x below the required {min:.2}x at {} threads",
                    s.scenario, s.speedup, current.threads
                ));
            }
        }
    }
    if let Some(min) = min_incremental {
        // Only exactness-eligible scenarios (incremental_sims > 0) are held
        // to the floor — a jittered scenario legitimately cannot reuse
        // anchors. But if *no* scenario exercised the incremental path, the
        // eligibility detection itself has regressed.
        let mut any_eligible = false;
        for s in &current.scenarios {
            if let Some(inc) = &s.incremental_resim {
                if inc.incremental_sims == 0 {
                    continue;
                }
                any_eligible = true;
                if inc.speedup < min {
                    failures.push(format!(
                        "`{}`: incremental re-simulation speedup {:.2}x below the required {min:.2}x",
                        s.scenario, inc.speedup
                    ));
                }
            }
        }
        if !any_eligible {
            failures.push(
                "no benched scenario exercised the incremental re-simulation path — \
                 exactness eligibility looks broken"
                    .to_owned(),
            );
        }
    }
    if let Some(max) = max_allocs_per_sim {
        // The ceiling only applies to reports that carry the alloc phase;
        // if the gate is armed but no scenario measured allocations, the
        // phase itself has gone missing — fail loudly instead of silently
        // passing an unmeasured run.
        let mut any_measured = false;
        for s in &current.scenarios {
            if let Some(alloc) = &s.alloc {
                any_measured = true;
                if alloc.allocs_per_sim > max {
                    failures.push(format!(
                        "`{}`: {:.4} result-slab allocations per simulation exceeds the \
                         allowed {max:.4} ({} slabs over {} sims)",
                        s.scenario, alloc.allocs_per_sim, alloc.result_slab_allocs, alloc.sims
                    ));
                }
            }
        }
        if !any_measured {
            failures.push(
                "`--max-allocs-per-sim` set but no benched scenario carries an alloc phase — \
                 the report predates bench schema v6"
                    .to_owned(),
            );
        }
    }
    if baseline.is_some() || min_speedup.is_some() {
        for s in &current.scenarios {
            if s.search.cache_hit_rate <= 0.0 {
                failures.push(format!(
                    "`{}`: memo-cache hit rate is zero — the engine is not amortising repeated simulations",
                    s.scenario
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec_path() -> String {
        let dir = std::env::temp_dir().join("aarc-bench-mod-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.yaml");
        let spec = aarc_spec::synthetic_spec(aarc_spec::SynthParams {
            seed: 5,
            layers: 2,
            max_width: 2,
            ..aarc_spec::SynthParams::default()
        });
        aarc_spec::save(&spec, &path).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn bench_produces_consistent_scenarios_and_roundtrips_as_json() {
        let path = tiny_spec_path();
        let report = run_bench(&[path], 2, 32).unwrap();
        assert_eq!(report.version, BENCH_VERSION);
        assert_eq!(report.scenarios.len(), 1);
        let s = &report.scenarios[0];
        // v5+ reports carry the scaling curve, not the legacy pair.
        assert!(s.single_thread.is_none());
        assert!(s.multi_thread.is_none());
        let curve: Vec<usize> = s.thread_scaling.iter().map(|p| p.threads).collect();
        assert_eq!(curve, vec![1, 2], "curve capped at --threads and deduped");
        for point in &s.thread_scaling {
            assert_eq!(point.simulations, 32);
            assert!(point.sims_per_sec > 0.0);
        }
        assert_eq!(s.thread_scaling[0].speedup, 1.0);
        assert!(s.peak_sims_per_sec().is_some());
        let inc = s
            .incremental_resim
            .expect("incremental phase is always run");
        assert_eq!(inc.probes, 32);
        assert!(
            inc.incremental_sims > 0,
            "jitter-free synthetic spec must be exactness-eligible"
        );
        assert!(
            inc.nodes_reused > 0,
            "suffix edits must reuse node outcomes"
        );
        let dedup = s.batch_dedup.expect("dedup phase is always run");
        assert_eq!(dedup.batch, 32);
        assert_eq!(dedup.unique, 4);
        assert_eq!(
            dedup.dedup_hits, 28,
            "every replicated candidate must be served by fan-out"
        );
        let alloc = s.alloc.expect("alloc phase is always run");
        assert_eq!(alloc.sims, 32, "distinct candidates all simulate");
        // Batch 32 → chunk width 8 → 4 chunks → 4 slab allocations.
        assert_eq!(alloc.result_slab_allocs, 4, "one slab per chunk");
        assert_eq!(alloc.allocs_per_sim, 4.0 / 32.0);
        assert!(alloc.result_slab_bytes > 0);
        assert_eq!(alloc.bytes_per_sim, alloc.result_slab_bytes as f64 / 32.0);
        assert!(s.search.samples > 0);
        assert!(
            s.search.cache_hit_rate > 0.0,
            "shared engine must produce cache hits across methods"
        );
        assert!(s.speedup > 0.0);
        let aggregate = report.aggregate.expect("aggregate phase is always run");
        assert_eq!(aggregate.simulations, 32, "one batch per scenario");
        assert!(aggregate.sims_per_sec > 0.0);
        let latency = s.search.latency.expect("search phase records latency");
        assert!(latency.samples > 0);
        assert!(latency.p50_ms > 0.0);
        assert!(latency.p50_ms <= latency.p90_ms);
        assert!(latency.p90_ms <= latency.p99_ms);
        let build = report.build_info.as_ref().expect("provenance is stamped");
        assert_eq!(*build, crate::version::VersionInfo::current());
        let json = serde_json::to_string_pretty(&report).unwrap();
        let parsed: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.scenarios[0].scenario, s.scenario);
        assert_eq!(parsed.scenarios[0].spec_fingerprint, s.spec_fingerprint);
        assert!(parsed.aggregate.is_some());
        assert!(parsed.scenarios[0].search.latency.is_some());
        assert_eq!(parsed.build_info, report.build_info);
    }

    /// Removes every occurrence of `key` anywhere in a JSON tree — used to
    /// reconstruct the older baseline schemas from a current report.
    fn strip_key(v: &mut serde::Value, key: &str) {
        match v {
            serde::Value::Map(entries) => {
                entries.retain(|(k, _)| k != key);
                for (_, child) in entries.iter_mut() {
                    strip_key(child, key);
                }
            }
            serde::Value::Seq(items) => {
                for item in items.iter_mut() {
                    strip_key(item, key);
                }
            }
            _ => {}
        }
    }

    #[test]
    fn version_2_baselines_without_latency_or_build_info_still_parse() {
        let path = tiny_spec_path();
        let report = run_bench(&[path], 1, 8).unwrap();
        let mut v2 = serde_json::to_value(&report);
        strip_key(&mut v2, "latency");
        strip_key(&mut v2, "build_info");
        let parsed: BenchReport = serde_json::from_value(&v2).unwrap();
        assert!(parsed.scenarios[0].search.latency.is_none());
        assert!(parsed.build_info.is_none());
        // Gating against a pre-latency baseline works unchanged: the gate
        // only reads wall-clock and throughput, which v2 still carries.
        assert!(gate_failures(&report, Some(&parsed), 0.2, None, None, None).is_empty());
    }

    #[test]
    fn version_3_baselines_without_a_serve_phase_still_parse() {
        let path = tiny_spec_path();
        let report = run_bench(&[path], 1, 8).unwrap();
        assert!(
            report.serve.is_none(),
            "plain bench never adds a serve phase"
        );
        let mut v3 = serde_json::to_value(&report);
        strip_key(&mut v3, "serve");
        let parsed: BenchReport = serde_json::from_value(&v3).unwrap();
        assert!(parsed.serve.is_none());
        assert!(gate_failures(&report, Some(&parsed), 0.2, None, None, None).is_empty());
        // And a report that does carry a serve phase round-trips.
        let mut with_serve = report.clone();
        with_serve.serve = Some(ServePhase {
            requests: 100,
            p50_ms: 1.0,
            p99_ms: 5.0,
            sessions_started: 40,
            concurrent_peak: 40,
            accepted_2xx: 90,
            rejected_429: 10,
            rejected_503: 0,
            server_errors_5xx: 0,
            retries: 4,
            wall_ms: 250.0,
            requests_per_sec: 400.0,
        });
        let json = serde_json::to_string_pretty(&with_serve).unwrap();
        let parsed: BenchReport = serde_json::from_str(&json).unwrap();
        let serve = parsed.serve.expect("serve phase survives the round-trip");
        assert_eq!(serve.requests, 100);
        assert_eq!(serve.rejected_429, 10);
        assert_eq!(serve.server_errors_5xx, 0);
        assert_eq!(serve.retries, 4);
        // A serve phase written before the retrying client lacks the
        // `retries` key; this reader defaults it to 0.
        let mut pre_retry = serde_json::to_value(&with_serve);
        strip_key(&mut pre_retry, "retries");
        let parsed: BenchReport = serde_json::from_value(&pre_retry).unwrap();
        assert_eq!(parsed.serve.expect("serve phase").retries, 0);
    }

    #[test]
    fn version_1_baselines_without_aggregate_still_parse() {
        let path = tiny_spec_path();
        let report = run_bench(&[path], 1, 8).unwrap();
        let mut json = serde_json::to_string_pretty(&report).unwrap();
        // Strip the aggregate block the way a version-1 baseline lacks it.
        let start = json.find("\"aggregate\"").unwrap();
        let end = json[start..].find("},").unwrap() + start + 2;
        json.replace_range(start..end, "");
        let parsed: BenchReport = serde_json::from_str(&json).unwrap();
        assert!(parsed.aggregate.is_none());
        // Gating a report against an aggregate-less baseline skips the
        // aggregate check instead of failing.
        assert!(gate_failures(&report, Some(&parsed), 0.2, None, None, None).is_empty());
    }

    #[test]
    fn version_4_baselines_with_the_legacy_throughput_pair_still_parse() {
        let path = tiny_spec_path();
        let report = run_bench(&[path], 1, 8).unwrap();
        // Reconstruct a version-4 document: the legacy 1-vs-N pair instead
        // of the v5 curve and phases.
        let legacy = ThroughputPhase {
            wall_ms: report.scenarios[0].thread_scaling[0].wall_ms,
            simulations: report.scenarios[0].thread_scaling[0].simulations,
            sims_per_sec: report.scenarios[0].thread_scaling[0].sims_per_sec,
        };
        let mut v4_report = report.clone();
        v4_report.version = 4;
        v4_report.scenarios[0].single_thread = Some(legacy);
        v4_report.scenarios[0].multi_thread = Some(legacy);
        let mut v4 = serde_json::to_value(&v4_report);
        strip_key(&mut v4, "thread_scaling");
        strip_key(&mut v4, "incremental_resim");
        strip_key(&mut v4, "batch_dedup");
        let parsed: BenchReport = serde_json::from_value(&v4).unwrap();
        let s = &parsed.scenarios[0];
        assert!(s.thread_scaling.is_empty());
        assert!(s.incremental_resim.is_none());
        assert!(s.batch_dedup.is_none());
        // The accessor reads through to the legacy pair...
        assert_eq!(
            s.peak_sims_per_sec(),
            Some(legacy.sims_per_sec),
            "legacy multi-thread throughput must surface through the accessor"
        );
        // ...so a v5 run gates cleanly against a v4 baseline.
        assert!(gate_failures(&report, Some(&parsed), 0.2, None, None, None).is_empty());
        // A v4 baseline that was 10x faster still trips the throughput gate.
        let mut fast = parsed.clone();
        fast.scenarios[0]
            .multi_thread
            .as_mut()
            .unwrap()
            .sims_per_sec *= 10.0;
        let failures = gate_failures(&report, Some(&fast), 0.2, None, None, None);
        assert!(
            failures.iter().any(|f| f.contains("simulations/sec")),
            "{failures:?}"
        );
    }

    #[test]
    fn version_5_baselines_without_an_alloc_phase_still_parse() {
        let path = tiny_spec_path();
        let report = run_bench(&[path], 1, 8).unwrap();
        // Reconstruct a version-5 document: everything v6 carries except
        // the alloc block.
        let mut v5_report = report.clone();
        v5_report.version = 5;
        let mut v5 = serde_json::to_value(&v5_report);
        strip_key(&mut v5, "alloc");
        let parsed: BenchReport = serde_json::from_value(&v5).unwrap();
        assert!(parsed.scenarios[0].alloc.is_none());
        assert!(parsed.scenarios[0].incremental_resim.is_some());
        assert!(parsed.scenarios[0].batch_dedup.is_some());
        // A v6 run gates cleanly against a v5 baseline — the alloc ceiling
        // reads only the current report.
        assert!(gate_failures(&report, Some(&parsed), 0.2, None, None, Some(1.0)).is_empty());
        // But arming the ceiling against a report that itself lacks the
        // phase fails loudly instead of silently passing.
        let failures = gate_failures(&parsed, None, 0.2, None, None, Some(1.0));
        assert!(
            failures.iter().any(|f| f.contains("alloc phase")),
            "{failures:?}"
        );
    }

    #[test]
    fn gate_enforces_the_result_slab_allocation_ceiling() {
        let path = tiny_spec_path();
        let report = run_bench(&[path], 1, 32).unwrap();
        // The measured batch path sits at one slab per chunk, far below
        // one allocation per simulation.
        assert!(gate_failures(&report, None, 0.2, None, None, Some(0.2)).is_empty());
        // A ceiling below the measured figure trips the gate.
        let failures = gate_failures(&report, None, 0.2, None, None, Some(0.01));
        assert!(
            failures
                .iter()
                .any(|f| f.contains("result-slab allocations per simulation")),
            "{failures:?}"
        );
        // Without the flag the phase is informational only.
        assert!(gate_failures(&report, None, 0.2, None, None, None).is_empty());
    }

    #[test]
    fn gate_enforces_the_incremental_resimulation_floor() {
        let path = tiny_spec_path();
        let report = run_bench(&[path], 1, 32).unwrap();
        // An unreachable incremental floor fails.
        let failures = gate_failures(&report, None, 0.2, None, Some(1_000_000.0), None);
        assert!(
            failures
                .iter()
                .any(|f| f.contains("incremental re-simulation")),
            "{failures:?}"
        );
        // A report whose scenarios never took the incremental path fails
        // outright — eligibility detection must not silently rot.
        let mut ineligible = report.clone();
        for s in &mut ineligible.scenarios {
            if let Some(inc) = &mut s.incremental_resim {
                inc.incremental_sims = 0;
            }
        }
        let failures = gate_failures(&ineligible, None, 0.2, None, Some(1.0), None);
        assert!(
            failures.iter().any(|f| f.contains("eligibility")),
            "{failures:?}"
        );
        // Without the flag, the incremental phase is informational only.
        assert!(gate_failures(&ineligible, None, 0.2, None, None, None).is_empty());
    }

    #[test]
    fn gate_flags_aggregate_shared_pool_regressions() {
        let path = tiny_spec_path();
        let report = run_bench(&[path], 1, 16).unwrap();
        let mut fast = report.clone();
        fast.aggregate.as_mut().unwrap().sims_per_sec *= 10.0;
        let failures = gate_failures(&report, Some(&fast), 0.2, None, None, None);
        assert!(
            failures.iter().any(|f| f.contains("aggregate shared-pool")),
            "{failures:?}"
        );
    }

    #[test]
    fn gate_flags_regressions_and_weak_speedup() {
        let path = tiny_spec_path();
        let report = run_bench(&[path], 1, 16).unwrap();
        // Identical runs never regress against themselves.
        assert!(gate_failures(&report, Some(&report), 0.2, None, None, None).is_empty());

        // A baseline that was 10x faster trips both regression checks.
        let mut fast = report.clone();
        fast.scenarios[0].search.wall_ms /= 10.0;
        for point in &mut fast.scenarios[0].thread_scaling {
            point.sims_per_sec *= 10.0;
        }
        let failures = gate_failures(&report, Some(&fast), 0.2, None, None, None);
        assert_eq!(failures.len(), 2, "{failures:?}");

        // An unreachable speedup requirement fails.
        let failures = gate_failures(&report, None, 0.2, Some(1_000.0), None, None);
        assert!(!failures.is_empty());

        // A baseline scenario that was never benched fails.
        let mut renamed = report.clone();
        renamed.scenarios[0].scenario = "ghost".into();
        let failures = gate_failures(&report, Some(&renamed), 0.2, None, None, None);
        assert!(failures.iter().any(|f| f.contains("ghost")));
    }
}
