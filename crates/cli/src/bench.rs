//! `aarc bench` — the machine-readable performance benchmark behind the CI
//! perf-regression gate.
//!
//! For every spec the harness measures two things through the shared
//! [`EvalService`]:
//!
//! 1. **Raw simulation throughput** — a deterministic batch of candidate
//!    configurations (derived from the spec fingerprint, so the workload is
//!    identical across machines and runs) evaluated once at 1 thread and
//!    once at the requested thread count, yielding `sims_per_sec` and the
//!    parallel `speedup`.
//! 2. **Search wall-clock** — all four search methods run through one
//!    shared memoising service (exactly what `aarc compare` does), yielding
//!    `wall_ms`, sample counts and the cache hit rate.
//!
//! On top of the per-scenario phases, an **aggregate shared-pool phase**
//! registers every spec on one [`EvalService`] and replays all candidate
//! batches through it back-to-back — the multi-scenario throughput the
//! service layer is supposed to sustain, gated so the shared substrate
//! cannot silently regress.
//!
//! The result serializes as `BENCH_*.json` (see README for the schema). In
//! gate mode the harness compares itself against a committed baseline and
//! fails on >`max_regress` regressions of search wall-clock, multi-thread
//! throughput or aggregate shared-pool throughput, on parallel speedup
//! below `--min-speedup`, or on a zero cache hit rate.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use aarc_simulator::{ConfigMap, EvalOptions, EvalService, EvalTelemetry, ResourceConfig};
use aarc_telemetry::{FlightRecorder, Recorder};
use aarc_workloads::Workload;

use crate::methods;
use crate::version::VersionInfo;

/// Version stamp of the `BENCH_*.json` schema (2 added the aggregate
/// shared-pool phase; 3 added per-batch eval latency percentiles and build
/// provenance; 4 added the optional `serve` phase written by
/// `aarc loadtest --bench`). Version-1/2/3 baselines still parse — the
/// added fields are optional and simply absent, so they carry no latency,
/// provenance or serving numbers to gate against.
pub const BENCH_VERSION: u32 = 4;

/// One timed batch evaluation at a fixed thread count.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThroughputPhase {
    /// Wall-clock time of the batch, ms.
    pub wall_ms: f64,
    /// Simulations executed.
    pub simulations: u64,
    /// Simulations per second.
    pub sims_per_sec: f64,
}

/// Per-request eval latency percentiles, from the telemetry histograms
/// attached to the search phase's service (batch and probe requests
/// merged, so probe-only methods contribute too).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LatencyPercentiles {
    /// Median eval request latency, ms.
    pub p50_ms: f64,
    /// 90th-percentile eval request latency, ms.
    pub p90_ms: f64,
    /// 99th-percentile eval request latency, ms.
    pub p99_ms: f64,
    /// Requests the percentiles were computed over.
    pub samples: u64,
}

/// One timed all-methods search run through a shared memoising engine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SearchPhase {
    /// Wall-clock time of all four searches, ms.
    pub wall_ms: f64,
    /// Search samples recorded across all methods.
    pub samples: u64,
    /// Simulations actually executed (cache misses).
    pub simulations: u64,
    /// Evaluations answered from the memo-cache.
    pub cache_hits: u64,
    /// Evaluations that required a simulation.
    pub cache_misses: u64,
    /// Fraction of evaluations served from the cache.
    pub cache_hit_rate: f64,
    /// Eval request latency percentiles (absent in version-1/2 baselines).
    pub latency: Option<LatencyPercentiles>,
}

/// Benchmark results of one scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchScenario {
    /// Scenario name (from the spec).
    pub scenario: String,
    /// Fingerprint of the spec the candidate batch was derived from.
    pub spec_fingerprint: u64,
    /// Number of workflow functions.
    pub functions: usize,
    /// Throughput of the candidate batch at 1 thread.
    pub single_thread: ThroughputPhase,
    /// Throughput of the same batch at the requested thread count.
    pub multi_thread: ThroughputPhase,
    /// `multi_thread.sims_per_sec / single_thread.sims_per_sec`.
    pub speedup: f64,
    /// The all-methods search phase.
    pub search: SearchPhase,
}

/// The aggregate shared-pool phase: every scenario's candidate batch
/// replayed back-to-back through one multi-scenario [`EvalService`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AggregatePhase {
    /// Wall-clock time of all batches together, ms.
    pub wall_ms: f64,
    /// Simulations executed across all scenarios.
    pub simulations: u64,
    /// Aggregate simulations per second on the shared pool.
    pub sims_per_sec: f64,
}

/// The serving phase written by `aarc loadtest --bench`: request latency
/// and admission-control outcomes of driving many concurrent search
/// sessions against an in-process daemon over real sockets.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServePhase {
    /// HTTP requests issued by the harness.
    pub requests: u64,
    /// Median request latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile request latency, ms.
    pub p99_ms: f64,
    /// Sessions the daemon admitted (201 replies).
    pub sessions_started: u64,
    /// Peak concurrently-live sessions observed.
    pub concurrent_peak: u64,
    /// Requests answered 2xx.
    pub accepted_2xx: u64,
    /// Requests rejected 429 (quota or rate admission control).
    pub rejected_429: u64,
    /// Requests rejected 503 (global watermark or shutdown).
    pub rejected_503: u64,
    /// Requests answered 5xx — always 0 on a passing run.
    pub server_errors_5xx: u64,
    /// Client-side retries after a 429/503 with `Retry-After` (absent in
    /// reports written before the retrying client; defaults to 0).
    #[serde(default)]
    pub retries: u64,
    /// Wall-clock time of the whole loadtest, ms.
    pub wall_ms: f64,
    /// Requests per second sustained over the run.
    pub requests_per_sec: f64,
}

/// The complete `BENCH_*.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version ([`BENCH_VERSION`]).
    pub version: u32,
    /// Worker threads used for the multi-thread phases.
    pub threads: usize,
    /// Candidates per throughput batch.
    pub batch: usize,
    /// One entry per benched spec, in argument order.
    pub scenarios: Vec<BenchScenario>,
    /// The aggregate shared-pool phase over all scenarios (absent in
    /// version-1 baselines).
    pub aggregate: Option<AggregatePhase>,
    /// Provenance of the binary that produced the report (absent in
    /// version-1/2 baselines).
    pub build_info: Option<VersionInfo>,
    /// The serving phase, merged in by `aarc loadtest --bench` (absent in
    /// version-1/2/3 baselines and in plain `aarc bench` reports).
    pub serve: Option<ServePhase>,
    /// Sum of the per-scenario search wall-clocks, ms.
    pub total_search_wall_ms: f64,
    /// Geometric mean of the per-scenario parallel speedups.
    pub mean_speedup: f64,
}

/// Deterministic candidate batch for one workload: `batch` configuration
/// maps drawn from an RNG seeded with the spec fingerprint, snapped onto the
/// scenario's resource grid.
fn candidate_batch(workload: &Workload, fingerprint: u64, batch: usize) -> Vec<ConfigMap> {
    let env = workload.env();
    let space = *env.space();
    let n = env.workflow().len();
    let mut rng = StdRng::seed_from_u64(fingerprint);
    (0..batch)
        .map(|_| {
            ConfigMap::from_vec(
                (0..n)
                    .map(|_| {
                        let vcpu = space.snap_vcpu(rng.gen_range(space.min_vcpu..=space.max_vcpu));
                        let mem = space
                            .snap_memory(rng.gen_range(space.min_memory_mb..=space.max_memory_mb));
                        ResourceConfig::new(vcpu, mem)
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Times one batch evaluation on a fresh, cache-less service with
/// `threads` workers.
fn time_batch(
    workload: &Workload,
    candidates: &[ConfigMap],
    threads: usize,
) -> Result<ThroughputPhase, String> {
    // The cache is disabled so the phase times raw simulation throughput,
    // not memoisation.
    let service = EvalService::new(EvalOptions {
        threads,
        cache_capacity: 0,
    });
    let handle = service.register(workload.env().clone());
    let start = Instant::now();
    handle
        .evaluate_batch(candidates)
        .map_err(|e| format!("batch evaluation failed: {e}"))?;
    let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
    let simulations = handle.stats().simulations();
    Ok(ThroughputPhase {
        wall_ms,
        simulations,
        sims_per_sec: if wall_ms > 0.0 {
            simulations as f64 / (wall_ms / 1_000.0)
        } else {
            f64::INFINITY
        },
    })
}

/// Runs all four search methods through one shared memoising service and
/// times the whole sweep. The service carries telemetry instruments so the
/// phase also reports per-request eval latency percentiles.
fn time_search(workload: &Workload, threads: usize) -> Result<SearchPhase, String> {
    let service = EvalService::with_threads(threads);
    let recorder = Recorder::new();
    service
        .attach_telemetry(EvalTelemetry::new(
            &recorder,
            Arc::new(FlightRecorder::new(1)),
        ))
        .expect("fresh service has no telemetry attached");
    let handle = service.register(workload.env().clone());
    let mut samples = 0u64;
    let start = Instant::now();
    for (name, method) in methods::all() {
        let outcome = method
            .search_on(&handle, workload.slo_ms())
            .map_err(|e| format!("method `{name}` failed: {e}"))?;
        samples += outcome.trace.sample_count() as u64;
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
    let stats = handle.stats();
    // Batch and probe requests merged: probe-only methods would otherwise
    // leave the percentiles empty.
    let mut latency_hist = recorder.histogram("aarc_eval_batch_seconds", "").snapshot();
    latency_hist.merge(&recorder.histogram("aarc_eval_probe_seconds", "").snapshot());
    let latency = match (
        latency_hist.quantile_ms(0.50),
        latency_hist.quantile_ms(0.90),
        latency_hist.quantile_ms(0.99),
    ) {
        (Some(p50_ms), Some(p90_ms), Some(p99_ms)) => Some(LatencyPercentiles {
            p50_ms,
            p90_ms,
            p99_ms,
            samples: latency_hist.count(),
        }),
        _ => None,
    };
    Ok(SearchPhase {
        wall_ms,
        samples,
        simulations: stats.simulations(),
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        cache_hit_rate: stats.hit_rate(),
        latency,
    })
}

/// Replays every scenario's candidate batch back-to-back through one
/// multi-scenario, cache-less service — the aggregate throughput the
/// shared substrate sustains when many scenarios draw from one pool.
fn time_aggregate(
    workloads: &[(Workload, Vec<ConfigMap>)],
    threads: usize,
) -> Result<AggregatePhase, String> {
    let service = EvalService::new(EvalOptions {
        threads,
        cache_capacity: 0,
    });
    let handles: Vec<_> = workloads
        .iter()
        .map(|(workload, _)| service.register(workload.env().clone()))
        .collect();
    let start = Instant::now();
    for (handle, (_, candidates)) in handles.iter().zip(workloads) {
        handle
            .evaluate_batch(candidates)
            .map_err(|e| format!("aggregate batch evaluation failed: {e}"))?;
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
    let simulations = service.stats().simulations();
    Ok(AggregatePhase {
        wall_ms,
        simulations,
        sims_per_sec: if wall_ms > 0.0 {
            simulations as f64 / (wall_ms / 1_000.0)
        } else {
            f64::INFINITY
        },
    })
}

/// Benchmarks every spec and assembles the report.
///
/// # Errors
///
/// Returns a user-facing message if a spec fails to load/compile or a
/// search fails.
pub fn run_bench(
    spec_paths: &[String],
    threads: usize,
    batch: usize,
) -> Result<BenchReport, String> {
    let mut workloads: Vec<(Workload, Vec<ConfigMap>)> = Vec::with_capacity(spec_paths.len());
    let mut fingerprints = Vec::with_capacity(spec_paths.len());
    for path in spec_paths {
        let spec = aarc_spec::load(path).map_err(|e| format!("{path}: {e}"))?;
        let fingerprint = spec.fingerprint();
        let workload = aarc_spec::compile(&spec)
            .map_err(|e| format!("{path}: {e}"))?
            .into_workload();
        let candidates = candidate_batch(&workload, fingerprint, batch);
        fingerprints.push(fingerprint);
        workloads.push((workload, candidates));
    }

    let mut scenarios = Vec::with_capacity(workloads.len());
    for ((workload, candidates), fingerprint) in workloads.iter().zip(fingerprints) {
        let single_thread = time_batch(workload, candidates, 1)?;
        let multi_thread = time_batch(workload, candidates, threads)?;
        let search = time_search(workload, threads)?;
        scenarios.push(BenchScenario {
            scenario: workload.name().to_owned(),
            spec_fingerprint: fingerprint,
            functions: workload.len(),
            speedup: multi_thread.sims_per_sec / single_thread.sims_per_sec,
            single_thread,
            multi_thread,
            search,
        });
    }
    let aggregate = time_aggregate(&workloads, threads)?;
    let total_search_wall_ms = scenarios.iter().map(|s| s.search.wall_ms).sum();
    let mean_speedup = if scenarios.is_empty() {
        0.0
    } else {
        let log_sum: f64 = scenarios.iter().map(|s| s.speedup.ln()).sum();
        (log_sum / scenarios.len() as f64).exp()
    };
    Ok(BenchReport {
        version: BENCH_VERSION,
        threads,
        batch,
        scenarios,
        aggregate: Some(aggregate),
        build_info: Some(VersionInfo::current()),
        serve: None,
        total_search_wall_ms,
        mean_speedup,
    })
}

/// Gate checks: regression vs a committed baseline, minimum parallel
/// speedup and a nonzero cache hit rate. Returns all failures (empty =
/// gate passes).
pub fn gate_failures(
    current: &BenchReport,
    baseline: Option<&BenchReport>,
    max_regress: f64,
    min_speedup: Option<f64>,
) -> Vec<String> {
    let mut failures = Vec::new();
    if let Some(base) = baseline {
        for base_scenario in &base.scenarios {
            let Some(cur) = current
                .scenarios
                .iter()
                .find(|s| s.scenario == base_scenario.scenario)
            else {
                failures.push(format!(
                    "scenario `{}` present in baseline but not benched",
                    base_scenario.scenario
                ));
                continue;
            };
            let wall_limit = base_scenario.search.wall_ms * (1.0 + max_regress);
            if cur.search.wall_ms > wall_limit {
                failures.push(format!(
                    "`{}`: search wall-clock regressed {:.1} ms -> {:.1} ms (limit {:.1} ms, +{:.0}%)",
                    cur.scenario,
                    base_scenario.search.wall_ms,
                    cur.search.wall_ms,
                    wall_limit,
                    max_regress * 100.0
                ));
            }
            let sims_floor = base_scenario.multi_thread.sims_per_sec * (1.0 - max_regress);
            if cur.multi_thread.sims_per_sec < sims_floor {
                failures.push(format!(
                    "`{}`: simulations/sec regressed {:.0} -> {:.0} (floor {:.0}, -{:.0}%)",
                    cur.scenario,
                    base_scenario.multi_thread.sims_per_sec,
                    cur.multi_thread.sims_per_sec,
                    sims_floor,
                    max_regress * 100.0
                ));
            }
        }
    }
    if let Some(base) = baseline {
        if let (Some(base_agg), Some(cur_agg)) = (&base.aggregate, &current.aggregate) {
            let floor = base_agg.sims_per_sec * (1.0 - max_regress);
            if cur_agg.sims_per_sec < floor {
                failures.push(format!(
                    "aggregate shared-pool sims/sec regressed {:.0} -> {:.0} (floor {:.0}, -{:.0}%)",
                    base_agg.sims_per_sec,
                    cur_agg.sims_per_sec,
                    floor,
                    max_regress * 100.0
                ));
            }
        }
    }
    if let Some(min) = min_speedup {
        for s in &current.scenarios {
            if s.speedup < min {
                failures.push(format!(
                    "`{}`: parallel speedup {:.2}x below the required {min:.2}x at {} threads",
                    s.scenario, s.speedup, current.threads
                ));
            }
        }
    }
    if baseline.is_some() || min_speedup.is_some() {
        for s in &current.scenarios {
            if s.search.cache_hit_rate <= 0.0 {
                failures.push(format!(
                    "`{}`: memo-cache hit rate is zero — the engine is not amortising repeated simulations",
                    s.scenario
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec_path() -> String {
        let dir = std::env::temp_dir().join("aarc-bench-mod-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.yaml");
        let spec = aarc_spec::synthetic_spec(aarc_spec::SynthParams {
            seed: 5,
            layers: 2,
            max_width: 2,
            ..aarc_spec::SynthParams::default()
        });
        aarc_spec::save(&spec, &path).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn bench_produces_consistent_scenarios_and_roundtrips_as_json() {
        let path = tiny_spec_path();
        let report = run_bench(&[path], 2, 32).unwrap();
        assert_eq!(report.version, BENCH_VERSION);
        assert_eq!(report.scenarios.len(), 1);
        let s = &report.scenarios[0];
        assert_eq!(s.single_thread.simulations, 32);
        assert_eq!(s.multi_thread.simulations, 32);
        assert!(s.search.samples > 0);
        assert!(
            s.search.cache_hit_rate > 0.0,
            "shared engine must produce cache hits across methods"
        );
        assert!(s.speedup > 0.0);
        let aggregate = report.aggregate.expect("aggregate phase is always run");
        assert_eq!(aggregate.simulations, 32, "one batch per scenario");
        assert!(aggregate.sims_per_sec > 0.0);
        let latency = s.search.latency.expect("search phase records latency");
        assert!(latency.samples > 0);
        assert!(latency.p50_ms > 0.0);
        assert!(latency.p50_ms <= latency.p90_ms);
        assert!(latency.p90_ms <= latency.p99_ms);
        let build = report.build_info.as_ref().expect("provenance is stamped");
        assert_eq!(*build, crate::version::VersionInfo::current());
        let json = serde_json::to_string_pretty(&report).unwrap();
        let parsed: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.scenarios[0].scenario, s.scenario);
        assert_eq!(parsed.scenarios[0].spec_fingerprint, s.spec_fingerprint);
        assert!(parsed.aggregate.is_some());
        assert!(parsed.scenarios[0].search.latency.is_some());
        assert_eq!(parsed.build_info, report.build_info);
    }

    /// Removes every occurrence of `key` anywhere in a JSON tree — used to
    /// reconstruct the older baseline schemas from a current report.
    fn strip_key(v: &mut serde::Value, key: &str) {
        match v {
            serde::Value::Map(entries) => {
                entries.retain(|(k, _)| k != key);
                for (_, child) in entries.iter_mut() {
                    strip_key(child, key);
                }
            }
            serde::Value::Seq(items) => {
                for item in items.iter_mut() {
                    strip_key(item, key);
                }
            }
            _ => {}
        }
    }

    #[test]
    fn version_2_baselines_without_latency_or_build_info_still_parse() {
        let path = tiny_spec_path();
        let report = run_bench(&[path], 1, 8).unwrap();
        let mut v2 = serde_json::to_value(&report);
        strip_key(&mut v2, "latency");
        strip_key(&mut v2, "build_info");
        let parsed: BenchReport = serde_json::from_value(&v2).unwrap();
        assert!(parsed.scenarios[0].search.latency.is_none());
        assert!(parsed.build_info.is_none());
        // Gating against a pre-latency baseline works unchanged: the gate
        // only reads wall-clock and throughput, which v2 still carries.
        assert!(gate_failures(&report, Some(&parsed), 0.2, None).is_empty());
    }

    #[test]
    fn version_3_baselines_without_a_serve_phase_still_parse() {
        let path = tiny_spec_path();
        let report = run_bench(&[path], 1, 8).unwrap();
        assert!(
            report.serve.is_none(),
            "plain bench never adds a serve phase"
        );
        let mut v3 = serde_json::to_value(&report);
        strip_key(&mut v3, "serve");
        let parsed: BenchReport = serde_json::from_value(&v3).unwrap();
        assert!(parsed.serve.is_none());
        assert!(gate_failures(&report, Some(&parsed), 0.2, None).is_empty());
        // And a report that does carry a serve phase round-trips.
        let mut with_serve = report.clone();
        with_serve.serve = Some(ServePhase {
            requests: 100,
            p50_ms: 1.0,
            p99_ms: 5.0,
            sessions_started: 40,
            concurrent_peak: 40,
            accepted_2xx: 90,
            rejected_429: 10,
            rejected_503: 0,
            server_errors_5xx: 0,
            retries: 4,
            wall_ms: 250.0,
            requests_per_sec: 400.0,
        });
        let json = serde_json::to_string_pretty(&with_serve).unwrap();
        let parsed: BenchReport = serde_json::from_str(&json).unwrap();
        let serve = parsed.serve.expect("serve phase survives the round-trip");
        assert_eq!(serve.requests, 100);
        assert_eq!(serve.rejected_429, 10);
        assert_eq!(serve.server_errors_5xx, 0);
        assert_eq!(serve.retries, 4);
        // A serve phase written before the retrying client lacks the
        // `retries` key; this reader defaults it to 0.
        let mut pre_retry = serde_json::to_value(&with_serve);
        strip_key(&mut pre_retry, "retries");
        let parsed: BenchReport = serde_json::from_value(&pre_retry).unwrap();
        assert_eq!(parsed.serve.expect("serve phase").retries, 0);
    }

    #[test]
    fn version_1_baselines_without_aggregate_still_parse() {
        let path = tiny_spec_path();
        let report = run_bench(&[path], 1, 8).unwrap();
        let mut json = serde_json::to_string_pretty(&report).unwrap();
        // Strip the aggregate block the way a version-1 baseline lacks it.
        let start = json.find("\"aggregate\"").unwrap();
        let end = json[start..].find("},").unwrap() + start + 2;
        json.replace_range(start..end, "");
        let parsed: BenchReport = serde_json::from_str(&json).unwrap();
        assert!(parsed.aggregate.is_none());
        // Gating a report against an aggregate-less baseline skips the
        // aggregate check instead of failing.
        assert!(gate_failures(&report, Some(&parsed), 0.2, None).is_empty());
    }

    #[test]
    fn gate_flags_aggregate_shared_pool_regressions() {
        let path = tiny_spec_path();
        let report = run_bench(&[path], 1, 16).unwrap();
        let mut fast = report.clone();
        fast.aggregate.as_mut().unwrap().sims_per_sec *= 10.0;
        let failures = gate_failures(&report, Some(&fast), 0.2, None);
        assert!(
            failures.iter().any(|f| f.contains("aggregate shared-pool")),
            "{failures:?}"
        );
    }

    #[test]
    fn gate_flags_regressions_and_weak_speedup() {
        let path = tiny_spec_path();
        let report = run_bench(&[path], 1, 16).unwrap();
        // Identical runs never regress against themselves.
        assert!(gate_failures(&report, Some(&report), 0.2, None).is_empty());

        // A baseline that was 10x faster trips both regression checks.
        let mut fast = report.clone();
        fast.scenarios[0].search.wall_ms /= 10.0;
        fast.scenarios[0].multi_thread.sims_per_sec *= 10.0;
        let failures = gate_failures(&report, Some(&fast), 0.2, None);
        assert_eq!(failures.len(), 2, "{failures:?}");

        // An unreachable speedup requirement fails.
        let failures = gate_failures(&report, None, 0.2, Some(1_000.0));
        assert!(!failures.is_empty());

        // A baseline scenario that was never benched fails.
        let mut renamed = report.clone();
        renamed.scenarios[0].scenario = "ghost".into();
        let failures = gate_failures(&report, Some(&renamed), 0.2, None);
        assert!(failures.iter().any(|f| f.contains("ghost")));
    }
}
