//! `aarc serve` — the online configuration daemon.
//!
//! Where every other subcommand builds the world, runs to completion and
//! exits, `serve` keeps one process-wide
//! [`EvalService`](aarc_simulator::EvalService) alive behind a hand-rolled
//! HTTP/1.1 JSON API (see [`crate::http`]): clients upload scenario specs
//! (parsed in memory via `ScenarioSpec::from_slice`, never touching disk),
//! start search sessions (method × input class × SLO), poll their
//! progress, fetch final reports and scrape `/metrics`.
//!
//! A single **scheduler thread** round-robins
//! [`SearchSession::step`](aarc_core::SearchSession::step) across all live
//! sessions, so concurrent clients' searches interleave on the shared
//! worker pool and memo-cache exactly like `aarc sweep` interleaves its
//! grid — and therefore return results bit-identical to an offline
//! `aarc run` of the same spec/method/SLO (pinned by the CI serve smoke
//! job).
//!
//! Shutdown: `POST /shutdown` stops admission, cancels paused sessions,
//! drains running ones and exits 0. A SIGTERM cannot be intercepted in
//! this build — the offline environment has no `libc` and the crate
//! forbids `unsafe` — so process supervisors should send `/shutdown`
//! first and treat SIGTERM as the hard fallback.

use std::collections::BTreeMap;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use aarc_core::report::ConfigurationReport;
use aarc_core::{AarcError, RoundPoint, SearchSession, SessionProgress, SessionState};
use aarc_simulator::{EvalService, EvalTelemetry, ScenarioHandle};
use aarc_spec::{validate, ScenarioSpec};
use aarc_telemetry::{
    events_json, FieldValue, FlightRecorder, Histogram, LogLevel, Logger, Recorder,
};
use aarc_workloads::Workload;

use crate::http::{read_request, Request, Response};
use crate::methods;
use crate::sweep::SweepClass;
use crate::version::VersionInfo;

/// How long a connection may sit idle before the daemon gives up on it
/// (bounds shutdown latency: a drained daemon only waits this long for
/// stragglers).
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Events retained by the daemon's flight recorder (served from
/// `GET /debug/events`).
const FLIGHT_CAPACITY: usize = 1024;

/// Default and maximum `limit` of `GET /debug/events`.
const DEFAULT_EVENT_LIMIT: usize = 64;

/// The daemon's observability bundle: the metric registry every layer
/// records into, the shared flight recorder, the structured logger, and
/// the daemon's own latency histograms. Built once per `run_serve` and
/// shared by reference with the connection handlers and the scheduler.
pub struct ServeTelemetry {
    recorder: Recorder,
    flight: Arc<FlightRecorder>,
    logger: Logger,
    http_seconds: Arc<Histogram>,
    step_seconds: Arc<Histogram>,
}

impl ServeTelemetry {
    /// Creates the bundle and registers the daemon's own instruments.
    pub fn new(logger: Logger) -> Self {
        let recorder = Recorder::new();
        let flight = Arc::new(FlightRecorder::new(FLIGHT_CAPACITY));
        let http_seconds = recorder.histogram(
            "aarc_http_request_seconds",
            "Wall-clock latency of HTTP requests (read, route, respond).",
        );
        let step_seconds = recorder.histogram(
            "aarc_session_step_seconds",
            "Wall-clock latency of one session scheduler step (ask/evaluate/tell).",
        );
        ServeTelemetry {
            recorder,
            flight,
            logger,
            http_seconds,
            step_seconds,
        }
    }

    /// A bundle that logs errors only — the default for router unit tests.
    #[cfg(test)]
    pub fn quiet() -> Self {
        ServeTelemetry::new(Logger::new(
            LogLevel::Error,
            aarc_telemetry::LogFormat::Text,
        ))
    }

    /// The instruments the [`EvalService`] should record into.
    pub fn eval_telemetry(&self) -> EvalTelemetry {
        EvalTelemetry::new(&self.recorder, Arc::clone(&self.flight))
    }
}

/// One uploaded scenario in the runtime registry.
struct ScenarioEntry<'s> {
    workload: Workload,
    functions: usize,
    edges: usize,
    slo_ms: f64,
    /// One registered handle per input-class variant used by this
    /// scenario's sessions: the class environment is compiled once and
    /// every further session clones the (cheap, `Arc`-backed) handle.
    /// Their fingerprints are unregistered — and their cache entries
    /// purged — when the scenario is deleted.
    handles: BTreeMap<String, ScenarioHandle<'s>>,
}

/// Observable lifecycle phase of a served session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Running,
    Paused,
    Finished,
    Failed,
    Cancelled,
}

impl Phase {
    fn label(self) -> &'static str {
        match self {
            Phase::Running => "running",
            Phase::Paused => "paused",
            Phase::Finished => "finished",
            Phase::Failed => "failed",
            Phase::Cancelled => "cancelled",
        }
    }

    /// Whether the session still occupies the scheduler.
    fn is_live(self) -> bool {
        matches!(self, Phase::Running | Phase::Paused)
    }
}

/// Final summary of a finished session (mirrors the sweep report row).
#[derive(Debug, Clone, Serialize)]
struct FinalSummary {
    final_cost: f64,
    final_makespan_ms: f64,
    meets_slo: bool,
    samples: usize,
}

/// One session slot: identity, the steppable session itself (absent while
/// the scheduler holds it for a step, and after it finished), the last
/// published progress snapshot and the terminal result.
struct Slot<'s> {
    id: u64,
    scenario: String,
    method: String,
    class: String,
    slo_ms: f64,
    session: Option<SearchSession<'s>>,
    phase: Phase,
    want_pause: bool,
    want_cancel: bool,
    progress: SessionProgress,
    /// Per-round convergence trace, copied incrementally from the
    /// session's [`SearchSession::convergence`] after every step so
    /// `GET /sessions/{id}/trace` works while the session runs and after
    /// it finished (the session itself is consumed on finish).
    trace: Vec<RoundPoint>,
    /// Exact `aarc run --format json` bytes of the winning configuration —
    /// byte-identical to the offline run of the same spec/method/SLO.
    report_json: Option<String>,
    summary: Option<FinalSummary>,
    error: Option<String>,
}

/// Shared daemon state: the evaluation substrate, the runtime scenario
/// registry and the session table. Connection handlers and the scheduler
/// thread share it by reference inside one thread scope.
struct ServeState<'s> {
    service: &'s EvalService,
    telemetry: &'s ServeTelemetry,
    scenarios: Mutex<BTreeMap<String, ScenarioEntry<'s>>>,
    sessions: Mutex<BTreeMap<u64, Slot<'s>>>,
    next_session_id: AtomicU64,
    shutdown: AtomicBool,
}

impl<'s> ServeState<'s> {
    fn new(service: &'s EvalService, telemetry: &'s ServeTelemetry) -> Self {
        ServeState {
            service,
            telemetry,
            scenarios: Mutex::new(BTreeMap::new()),
            sessions: Mutex::new(BTreeMap::new()),
            next_session_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Number of sessions still occupying the scheduler.
    fn live_sessions(&self) -> usize {
        self.sessions
            .lock()
            .expect("session table poisoned")
            .values()
            .filter(|s| s.phase.is_live())
            .count()
    }

    /// Whether the daemon has been asked to shut down and every session
    /// has reached a terminal phase — the exit condition of both the
    /// accept loop and the scheduler thread.
    fn drained(&self) -> bool {
        self.shutting_down() && self.live_sessions() == 0
    }
}

/// Runs the daemon until a graceful shutdown completes.
///
/// # Errors
///
/// Returns a user-facing message when the listener cannot bind; runtime
/// errors of individual requests are reported to the client, never fatal.
pub fn run_serve(addr: &str, threads: usize, logger: Logger) -> Result<(), String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve local address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot configure listener: {e}"))?;
    let service = EvalService::with_threads(threads);
    let telemetry = ServeTelemetry::new(logger);
    service
        .attach_telemetry(telemetry.eval_telemetry())
        .expect("fresh service has no telemetry attached");
    let state = ServeState::new(&service, &telemetry);
    // The readiness line is the machine-readable contract of the CI smoke
    // job and the integration tests: they parse the bound (possibly
    // ephemeral) port out of it. It must stay the FIRST stderr line, so it
    // is printed before any log record.
    eprintln!("aarc serve: listening on {local} ({threads} worker threads)");
    telemetry.logger.info(
        "serve_started",
        &[
            ("addr", FieldValue::Str(local.to_string())),
            ("threads", FieldValue::U64(threads as u64)),
        ],
    );

    std::thread::scope(|scope| {
        scope.spawn(|| scheduler_loop(&state));
        loop {
            if state.drained() {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let state = &state;
                    scope.spawn(move || handle_connection(state, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    eprintln!("aarc serve: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    });
    telemetry.logger.info("serve_drained", &[]);
    eprintln!("aarc serve: drained, exiting");
    Ok(())
}

/// The session scheduler: round-robins one [`SearchSession::step`] per
/// live session per round on the shared service, applying pause/cancel
/// requests between steps, until shutdown has drained every session.
/// Stepping happens outside the session-table lock, so status polls are
/// never blocked behind a long batch.
fn scheduler_loop(state: &ServeState<'_>) {
    loop {
        let shutting_down = state.shutting_down();
        let runnable: Vec<u64> = {
            let mut sessions = state.sessions.lock().expect("session table poisoned");
            for slot in sessions.values_mut() {
                apply_controls_with_shutdown(slot, shutting_down);
            }
            sessions
                .iter()
                .filter(|(_, s)| s.phase == Phase::Running && s.session.is_some())
                .map(|(&id, _)| id)
                .collect()
        };
        let mut stepped = false;
        for id in runnable {
            let taken = {
                let mut sessions = state.sessions.lock().expect("session table poisoned");
                sessions.get_mut(&id).and_then(|slot| {
                    if slot.phase == Phase::Running {
                        slot.session.take()
                    } else {
                        None
                    }
                })
            };
            let Some(mut session) = taken else { continue };
            let step_start = Instant::now();
            let outcome_state = session.step();
            let step_ns = step_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            state.telemetry.step_seconds.record_ns(step_ns);
            stepped = true;
            let mut sessions = state.sessions.lock().expect("session table poisoned");
            let slot = sessions.get_mut(&id).expect("slots are never removed");
            slot.progress = session.progress().clone();
            slot.trace
                .extend_from_slice(&session.convergence()[slot.trace.len()..]);
            state.telemetry.flight.record(
                "session_step",
                vec![
                    ("session", FieldValue::U64(id)),
                    ("rounds", FieldValue::U64(slot.progress.rounds)),
                    ("duration_us", FieldValue::U64(step_ns / 1_000)),
                ],
            );
            if outcome_state == SessionState::Finished {
                finalize_slot(slot, session, state.telemetry);
            } else {
                slot.session = Some(session);
            }
        }
        if state.drained() {
            break;
        }
        if !stepped {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

/// [`apply_controls`] preceded by the shutdown sweep: once the daemon is
/// draining, a paused (or about-to-pause) session would park forever and
/// stall the drain, so any pending or applied pause is converted into a
/// cancellation. Run by the scheduler every round, which also closes the
/// race where a pause request lands after `/shutdown` swept the table or
/// while the session was out being stepped.
fn apply_controls_with_shutdown(slot: &mut Slot<'_>, shutting_down: bool) {
    if shutting_down && slot.phase.is_live() && (slot.want_pause || slot.phase == Phase::Paused) {
        slot.want_pause = false;
        slot.want_cancel = true;
    }
    apply_controls(slot);
}

/// Applies pending pause/resume/cancel requests to an idle slot.
fn apply_controls(slot: &mut Slot<'_>) {
    if !slot.phase.is_live() {
        return;
    }
    let Some(session) = slot.session.as_mut() else {
        return; // being stepped right now; re-applied next round
    };
    if slot.want_cancel {
        session.cancel();
        // Un-pause so the next step observes the cancellation and the
        // slot reaches its terminal phase.
        session.resume();
        slot.phase = Phase::Running;
    } else if slot.want_pause && slot.phase == Phase::Running {
        session.pause();
        slot.phase = Phase::Paused;
    } else if !slot.want_pause && slot.phase == Phase::Paused {
        session.resume();
        slot.phase = Phase::Running;
    }
}

/// Moves a finished session's outcome into its slot: the final report is
/// rendered once, as the exact bytes `aarc run --format json` would emit
/// for the same spec/method/SLO.
fn finalize_slot(slot: &mut Slot<'_>, session: SearchSession<'_>, telemetry: &ServeTelemetry) {
    let handle = session.handle().clone();
    slot.trace
        .extend_from_slice(&session.convergence()[slot.trace.len()..]);
    let outcome = session
        .into_outcome()
        .expect("finalize is only called on finished sessions");
    match outcome {
        Ok(outcome) => {
            let report = ConfigurationReport::new(
                handle.env(),
                &outcome.best_configs,
                &outcome.final_report,
                Some(slot.slo_ms),
            );
            let mut json =
                serde_json::to_string_pretty(&report).expect("report serialization is infallible");
            json.push('\n');
            slot.summary = Some(FinalSummary {
                final_cost: outcome.best_cost(),
                final_makespan_ms: outcome.best_runtime_ms(),
                meets_slo: outcome.final_report.meets_slo(slot.slo_ms),
                samples: outcome.trace.sample_count(),
            });
            slot.report_json = Some(json);
            slot.phase = Phase::Finished;
        }
        Err(AarcError::SearchCancelled) => {
            slot.error = Some(AarcError::SearchCancelled.to_string());
            slot.phase = Phase::Cancelled;
        }
        Err(e) => {
            slot.error = Some(e.to_string());
            slot.phase = Phase::Failed;
        }
    }
    let mut fields = vec![
        ("session", FieldValue::U64(slot.id)),
        ("scenario", FieldValue::Str(slot.scenario.clone())),
        ("state", FieldValue::Str(slot.phase.label().to_owned())),
        ("rounds", FieldValue::U64(slot.progress.rounds)),
        ("evals", FieldValue::U64(slot.progress.evals)),
    ];
    if let Some(summary) = &slot.summary {
        fields.push(("final_cost", FieldValue::F64(summary.final_cost)));
        fields.push((
            "final_makespan_ms",
            FieldValue::F64(summary.final_makespan_ms),
        ));
    }
    if let Some(error) = &slot.error {
        fields.push(("error", FieldValue::Str(error.clone())));
    }
    telemetry.flight.record("session_finished", fields.clone());
    let level = if slot.phase == Phase::Failed {
        LogLevel::Warn
    } else {
        LogLevel::Info
    };
    telemetry.logger.log(level, "session_finished", &fields);
}

/// Serves one connection: read a request, route it, write the response.
/// Each request is timed into `aarc_http_request_seconds`, appended to the
/// flight recorder and logged as one structured line.
fn handle_connection(state: &ServeState<'_>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let started = Instant::now();
    let (response, method, path) = match read_request(&mut stream) {
        Ok(None) => return,
        Err(e) => (
            Response::error(400, &e.to_string()),
            "-".to_owned(),
            "-".to_owned(),
        ),
        Ok(Some(request)) => {
            let method = request.method.clone();
            let path = request.path.clone();
            (route(state, &request), method, path)
        }
    };
    let status = response.status;
    let _ = response.write_to(&mut stream);
    let duration_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let telemetry = state.telemetry;
    telemetry.http_seconds.record_ns(duration_ns);
    let fields = vec![
        ("method", FieldValue::Str(method)),
        ("path", FieldValue::Str(path)),
        ("status", FieldValue::U64(u64::from(status))),
        ("duration_us", FieldValue::U64(duration_ns / 1_000)),
    ];
    telemetry.flight.record("http_request", fields.clone());
    let level = if status >= 500 {
        LogLevel::Warn
    } else {
        LogLevel::Info
    };
    telemetry.logger.log(level, "http_request", &fields);
}

// ---------------------------------------------------------------------------
// Routing and endpoint handlers
// ---------------------------------------------------------------------------

/// Dispatches one request to its endpoint handler.
fn route(state: &ServeState<'_>, request: &Request) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::json(200, "{\"status\": \"ok\"}\n".to_owned()),
        ("GET", ["metrics"]) => Response::text(200, render_metrics(state)),
        ("GET", ["version"]) => json_response(200, &VersionInfo::current()),
        ("GET", ["debug", "events"]) => debug_events(state, request),
        ("GET", ["scenarios"]) => list_scenarios(state),
        ("POST", ["scenarios"]) => upload_scenario(state, &request.body),
        ("POST", ["scenarios", "validate"]) => validate_scenario(&request.body),
        ("DELETE", ["scenarios", name]) => delete_scenario(state, name),
        ("GET", ["sessions"]) => list_sessions(state),
        ("POST", ["sessions"]) => start_session(state, &request.body),
        ("GET", ["sessions", id]) => with_session_id(id, |id| session_status(state, id)),
        ("GET", ["sessions", id, "report"]) => with_session_id(id, |id| session_report(state, id)),
        ("GET", ["sessions", id, "trace"]) => with_session_id(id, |id| session_trace(state, id)),
        ("POST", ["sessions", id, action @ ("pause" | "resume" | "cancel")]) => {
            with_session_id(id, |id| control_session(state, id, action))
        }
        ("POST", ["shutdown"]) => request_shutdown(state),
        (
            _,
            ["healthz" | "metrics" | "version" | "scenarios" | "sessions" | "shutdown"]
            | ["scenarios" | "sessions" | "debug", ..],
        ) => Response::error(405, &format!("method {} not allowed here", request.method)),
        _ => Response::error(404, &format!("no such endpoint `{}`", request.path)),
    }
}

fn with_session_id(raw: &str, f: impl FnOnce(u64) -> Response) -> Response {
    match raw.parse::<u64>() {
        Ok(id) => f(id),
        Err(_) => Response::error(400, &format!("session id `{raw}` is not a number")),
    }
}

/// Row of the `GET /scenarios` listing.
#[derive(Debug, Serialize)]
struct ScenarioSummary {
    name: String,
    functions: usize,
    edges: usize,
    slo_ms: f64,
}

#[derive(Debug, Serialize)]
struct ScenarioList {
    scenarios: Vec<ScenarioSummary>,
}

fn list_scenarios(state: &ServeState<'_>) -> Response {
    let scenarios = state.scenarios.lock().expect("scenario registry poisoned");
    let list = ScenarioList {
        scenarios: scenarios
            .iter()
            .map(|(name, e)| ScenarioSummary {
                name: name.clone(),
                functions: e.functions,
                edges: e.edges,
                slo_ms: e.slo_ms,
            })
            .collect(),
    };
    json_response(200, &list)
}

#[derive(Debug, Serialize)]
struct UploadReply {
    name: String,
    functions: usize,
    edges: usize,
    slo_ms: f64,
}

/// `POST /scenarios`: parse the body in memory (YAML or JSON, sniffed),
/// validate, compile, and admit the scenario into the runtime registry.
fn upload_scenario(state: &ServeState<'_>, body: &[u8]) -> Response {
    if state.shutting_down() {
        return Response::error(503, "daemon is shutting down");
    }
    let (spec, workload) = match parse_and_compile(body) {
        Ok(pair) => pair,
        Err(message) => return Response::error(400, &message),
    };
    let name = workload.name().to_owned();
    // Names become URL path segments, JSON string values and Prometheus
    // label values; restrict them to a safe alphabet up front so every
    // later rendering is trivially well-formed.
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
    {
        return Response::error(
            400,
            &format!(
                "scenario name `{name}` must be non-empty and use only [A-Za-z0-9._-] \
                 (it becomes a URL path segment and a metrics label)"
            ),
        );
    }
    let mut scenarios = state.scenarios.lock().expect("scenario registry poisoned");
    if scenarios.contains_key(&name) {
        return Response::error(
            409,
            &format!("scenario `{name}` already exists (delete it first)"),
        );
    }
    let reply = UploadReply {
        name: name.clone(),
        functions: spec.functions.len(),
        edges: spec.edges.len(),
        slo_ms: workload.slo_ms(),
    };
    scenarios.insert(
        name,
        ScenarioEntry {
            functions: spec.functions.len(),
            edges: spec.edges.len(),
            slo_ms: workload.slo_ms(),
            workload,
            handles: BTreeMap::new(),
        },
    );
    let fields = vec![
        ("scenario", FieldValue::Str(reply.name.clone())),
        ("functions", FieldValue::U64(reply.functions as u64)),
        ("edges", FieldValue::U64(reply.edges as u64)),
        ("slo_ms", FieldValue::F64(reply.slo_ms)),
    ];
    state
        .telemetry
        .flight
        .record("scenario_registered", fields.clone());
    state.telemetry.logger.info("scenario_registered", &fields);
    json_response(201, &reply)
}

#[derive(Debug, Serialize)]
struct ValidateReply {
    valid: bool,
    name: String,
    functions: usize,
    edges: usize,
    slo_ms: f64,
}

/// `POST /scenarios/validate`: parse + validate + compile without
/// admitting anything.
fn validate_scenario(body: &[u8]) -> Response {
    match parse_and_compile(body) {
        Ok((spec, workload)) => json_response(
            200,
            &ValidateReply {
                valid: true,
                name: workload.name().to_owned(),
                functions: spec.functions.len(),
                edges: spec.edges.len(),
                slo_ms: workload.slo_ms(),
            },
        ),
        Err(message) => Response::error(400, &message),
    }
}

/// The shared upload/validate pipeline: bytes → spec → semantic
/// validation → compiled workload. All in memory.
fn parse_and_compile(body: &[u8]) -> Result<(ScenarioSpec, Workload), String> {
    let spec = ScenarioSpec::from_slice(body).map_err(|e| e.to_string())?;
    validate(&spec).map_err(|e| e.to_string())?;
    let workload = aarc_spec::compile(&spec)
        .map_err(|e| e.to_string())?
        .into_workload();
    Ok((spec, workload))
}

/// `DELETE /scenarios/{name}`: refuse while live sessions reference the
/// scenario; otherwise drop it from the registry and unregister its
/// fingerprints from the service (purging their cache entries).
fn delete_scenario(state: &ServeState<'_>, name: &str) -> Response {
    let mut scenarios = state.scenarios.lock().expect("scenario registry poisoned");
    if !scenarios.contains_key(name) {
        return Response::error(404, &format!("no scenario named `{name}`"));
    }
    {
        let sessions = state.sessions.lock().expect("session table poisoned");
        let live = sessions
            .values()
            .filter(|s| s.scenario == name && s.phase.is_live())
            .count();
        if live > 0 {
            return Response::error(
                409,
                &format!("scenario `{name}` has {live} live session(s); cancel them first"),
            );
        }
    }
    let entry = scenarios.remove(name).expect("checked above");
    for handle in entry.handles.values() {
        state.service.unregister(handle.fingerprint());
    }
    let fields = vec![
        ("scenario", FieldValue::Str(name.to_owned())),
        ("classes", FieldValue::U64(entry.handles.len() as u64)),
    ];
    state
        .telemetry
        .flight
        .record("scenario_deleted", fields.clone());
    state.telemetry.logger.info("scenario_deleted", &fields);
    #[derive(Serialize)]
    struct DeleteReply {
        deleted: String,
    }
    json_response(
        200,
        &DeleteReply {
            deleted: name.to_owned(),
        },
    )
}

/// Body of `POST /sessions`.
#[derive(Debug, Deserialize)]
struct StartSessionBody {
    /// Name of an uploaded scenario.
    scenario: String,
    /// Method name (`aarc`, `bo`, `maff`, `random`); `aarc` when omitted.
    method: Option<String>,
    /// Input class (`nominal`, `light`, `middle`, `heavy`); `nominal`
    /// when omitted.
    class: Option<String>,
    /// SLO override, ms; the scenario's own SLO when omitted.
    slo_ms: Option<f64>,
}

#[derive(Debug, Serialize)]
struct StartSessionReply {
    id: u64,
    scenario: String,
    method: String,
    class: String,
    slo_ms: f64,
    state: String,
}

/// `POST /sessions`: bind a strategy to the scenario's class environment
/// and hand the session to the scheduler. The class environment is
/// compiled and registered once per (scenario, class) — further sessions
/// clone the cached handle (an `Arc` bump), so repeated session starts
/// neither recompile nor hold the registry lock for long.
fn start_session(state: &ServeState<'_>, body: &[u8]) -> Response {
    if state.shutting_down() {
        return Response::error(503, "daemon is shutting down");
    }
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return Response::error(400, "body is not valid utf-8"),
    };
    let request: StartSessionBody = match serde_json::from_str(text) {
        Ok(request) => request,
        Err(e) => return Response::error(400, &format!("invalid session request: {e}")),
    };
    let class = match SweepClass::parse(request.class.as_deref().unwrap_or("nominal")) {
        Ok(class) => class,
        Err(message) => return Response::error(400, &message),
    };
    let method_name = request.method.as_deref().unwrap_or("aarc").to_owned();
    let method = match methods::build(&method_name) {
        Ok(method) => method,
        Err(message) => return Response::error(400, &message),
    };

    let mut scenarios = state.scenarios.lock().expect("scenario registry poisoned");
    let Some(entry) = scenarios.get_mut(&request.scenario) else {
        return Response::error(404, &format!("no scenario named `{}`", request.scenario));
    };
    let slo_ms = request.slo_ms.unwrap_or(entry.slo_ms);
    let handle = match entry.handles.get(&class.label()) {
        Some(handle) => handle.clone(),
        None => {
            let handle = state.service.register(class.env(entry.workload.env()));
            entry.handles.insert(class.label(), handle.clone());
            handle
        }
    };
    let strategy = match method.strategy(handle.env(), slo_ms) {
        Ok(strategy) => strategy,
        Err(e) => return Response::error(400, &format!("cannot start search: {e}")),
    };
    let session = SearchSession::with_slo(strategy, handle, slo_ms);

    let id = state.next_session_id.fetch_add(1, Ordering::SeqCst);
    let slot = Slot {
        id,
        scenario: request.scenario.clone(),
        method: method_name,
        class: class.label(),
        slo_ms,
        session: Some(session),
        phase: Phase::Running,
        want_pause: false,
        want_cancel: false,
        progress: SessionProgress::default(),
        trace: Vec::new(),
        report_json: None,
        summary: None,
        error: None,
    };
    let reply = StartSessionReply {
        id,
        scenario: slot.scenario.clone(),
        method: slot.method.clone(),
        class: slot.class.clone(),
        slo_ms,
        state: slot.phase.label().to_owned(),
    };
    state
        .sessions
        .lock()
        .expect("session table poisoned")
        .insert(id, slot);
    let fields = vec![
        ("session", FieldValue::U64(id)),
        ("scenario", FieldValue::Str(reply.scenario.clone())),
        ("method", FieldValue::Str(reply.method.clone())),
        ("class", FieldValue::Str(reply.class.clone())),
        ("slo_ms", FieldValue::F64(slo_ms)),
    ];
    state
        .telemetry
        .flight
        .record("session_started", fields.clone());
    state.telemetry.logger.info("session_started", &fields);
    json_response(201, &reply)
}

/// The status document of one session (`GET /sessions/{id}` and the rows
/// of `GET /sessions`).
#[derive(Debug, Serialize)]
struct SessionStatus {
    id: u64,
    scenario: String,
    method: String,
    class: String,
    slo_ms: f64,
    state: String,
    rounds: u64,
    evals: u64,
    incumbent: Option<aarc_core::Incumbent>,
    summary: Option<FinalSummary>,
    error: Option<String>,
}

impl SessionStatus {
    fn of(slot: &Slot<'_>) -> Self {
        SessionStatus {
            id: slot.id,
            scenario: slot.scenario.clone(),
            method: slot.method.clone(),
            class: slot.class.clone(),
            slo_ms: slot.slo_ms,
            state: slot.phase.label().to_owned(),
            rounds: slot.progress.rounds,
            evals: slot.progress.evals,
            incumbent: slot.progress.incumbent.clone(),
            summary: slot.summary.clone(),
            error: slot.error.clone(),
        }
    }
}

#[derive(Debug, Serialize)]
struct SessionList {
    sessions: Vec<SessionStatus>,
}

fn list_sessions(state: &ServeState<'_>) -> Response {
    let sessions = state.sessions.lock().expect("session table poisoned");
    let list = SessionList {
        sessions: sessions.values().map(SessionStatus::of).collect(),
    };
    json_response(200, &list)
}

fn session_status(state: &ServeState<'_>, id: u64) -> Response {
    let sessions = state.sessions.lock().expect("session table poisoned");
    match sessions.get(&id) {
        Some(slot) => json_response(200, &SessionStatus::of(slot)),
        None => Response::error(404, &format!("no session {id}")),
    }
}

/// `GET /sessions/{id}/report`: the stored final report, byte-identical
/// to `aarc run --format json` for the same spec/method/SLO.
fn session_report(state: &ServeState<'_>, id: u64) -> Response {
    let sessions = state.sessions.lock().expect("session table poisoned");
    let Some(slot) = sessions.get(&id) else {
        return Response::error(404, &format!("no session {id}"));
    };
    match slot.phase {
        Phase::Finished => Response::json(
            200,
            slot.report_json
                .clone()
                .expect("finished sessions store their report"),
        ),
        Phase::Failed => Response::error(
            409,
            &format!(
                "session {id} failed: {}",
                slot.error.as_deref().unwrap_or("unknown error")
            ),
        ),
        Phase::Cancelled => Response::error(409, &format!("session {id} was cancelled")),
        Phase::Running | Phase::Paused => Response::error(
            409,
            &format!("session {id} is still {}", slot.phase.label()),
        ),
    }
}

/// Reply of `GET /sessions/{id}/trace`: the per-round convergence trace,
/// one point per completed ask/evaluate/tell round. Available while the
/// session runs (plot search progress live) and after it finished.
#[derive(Debug, Serialize)]
struct TraceReply {
    id: u64,
    scenario: String,
    method: String,
    class: String,
    state: String,
    rounds: Vec<RoundPoint>,
}

/// `GET /sessions/{id}/trace`.
fn session_trace(state: &ServeState<'_>, id: u64) -> Response {
    let sessions = state.sessions.lock().expect("session table poisoned");
    let Some(slot) = sessions.get(&id) else {
        return Response::error(404, &format!("no session {id}"));
    };
    json_response(
        200,
        &TraceReply {
            id: slot.id,
            scenario: slot.scenario.clone(),
            method: slot.method.clone(),
            class: slot.class.clone(),
            state: slot.phase.label().to_owned(),
            rounds: slot.trace.clone(),
        },
    )
}

/// `GET /debug/events?limit=N`: the flight recorder's tail (most recent
/// events, oldest first). `limit` defaults to 64 and is capped at the
/// ring's capacity.
fn debug_events(state: &ServeState<'_>, request: &Request) -> Response {
    let limit = match request.query_param("limit") {
        None => DEFAULT_EVENT_LIMIT,
        Some(raw) => match raw.parse::<usize>() {
            Ok(limit) => limit.min(FLIGHT_CAPACITY),
            Err(_) => {
                return Response::error(
                    400,
                    &format!("limit `{raw}` is not a non-negative integer"),
                )
            }
        },
    };
    let flight = &state.telemetry.flight;
    let events = flight.tail(limit);
    let body = format!(
        "{{\"total\":{},\"capacity\":{},\"events\":{}}}\n",
        flight.total_recorded(),
        flight.capacity(),
        events_json(&events)
    );
    Response::json(200, body)
}

/// `POST /sessions/{id}/pause|resume|cancel`: record the request; the
/// scheduler applies it between steps.
fn control_session(state: &ServeState<'_>, id: u64, action: &str) -> Response {
    let mut sessions = state.sessions.lock().expect("session table poisoned");
    let Some(slot) = sessions.get_mut(&id) else {
        return Response::error(404, &format!("no session {id}"));
    };
    if !slot.phase.is_live() {
        return Response::error(409, &format!("session {id} already {}", slot.phase.label()));
    }
    match action {
        // A pause during shutdown would park the session and stall the
        // drain forever (the scheduler would force-cancel it anyway).
        "pause" if state.shutting_down() => {
            return Response::error(503, "daemon is shutting down; pause is not accepted")
        }
        "pause" => slot.want_pause = true,
        "resume" => slot.want_pause = false,
        "cancel" => slot.want_cancel = true,
        _ => unreachable!("router only passes pause/resume/cancel"),
    }
    apply_controls(slot);
    json_response(200, &SessionStatus::of(slot))
}

/// `POST /shutdown`: stop admission, cancel paused sessions (they would
/// otherwise never drain) and let running ones finish; the process exits
/// 0 once the last session reaches a terminal phase.
fn request_shutdown(state: &ServeState<'_>) -> Response {
    state.shutdown.store(true, Ordering::SeqCst);
    let mut sessions = state.sessions.lock().expect("session table poisoned");
    for slot in sessions.values_mut() {
        if slot.phase == Phase::Paused || (slot.phase.is_live() && slot.want_pause) {
            slot.want_pause = false;
            slot.want_cancel = true;
            apply_controls(slot);
        }
    }
    let draining = sessions.values().filter(|s| s.phase.is_live()).count();
    Response::json(200, format!("{{\"draining\": {draining}}}\n"))
}

fn json_response<T: Serialize>(status: u16, value: &T) -> Response {
    let mut body = serde_json::to_string_pretty(value).expect("API replies serialize");
    body.push('\n');
    Response::json(status, body)
}

// ---------------------------------------------------------------------------
// /metrics
// ---------------------------------------------------------------------------

/// Escapes a Prometheus label value (`\` → `\\`, `"` → `\"`, newline →
/// `\n`, per the text exposition format).
fn metric_label(raw: &str) -> String {
    aarc_telemetry::prom::escape_label_value(raw)
}

/// Writes one `# HELP`/`# TYPE` header pair for a daemon-rendered family.
fn family_header(out: &mut String, name: &str, kind: &str, help: &str) {
    use std::fmt::Write;
    let _ = writeln!(
        out,
        "# HELP {name} {}\n# TYPE {name} {kind}",
        aarc_telemetry::prom::escape_help(help)
    );
}

/// Renders the Prometheus text exposition: eval-service counters from
/// [`EvalService::stats_snapshot`], per-session progress gauges, build
/// provenance, and every instrument of the shared telemetry
/// [`Recorder`] (latency histograms, kernel counters, sims/sec gauge).
/// Every family carries `# HELP`/`# TYPE` headers and keeps its samples
/// consecutive, as the exposition format requires.
fn render_metrics(state: &ServeState<'_>) -> String {
    use std::fmt::Write;
    let snapshot = state.service.stats_snapshot();
    let scenario_count = state
        .scenarios
        .lock()
        .expect("scenario registry poisoned")
        .len();
    let mut out = String::with_capacity(8192);

    let build = VersionInfo::current();
    family_header(
        &mut out,
        "aarc_build_info",
        "gauge",
        "Build provenance; the value is always 1, the labels carry the data.",
    );
    let _ = writeln!(
        out,
        "aarc_build_info{{version=\"{}\",rustc=\"{}\",profile=\"{}\"}} 1",
        metric_label(&build.version),
        metric_label(&build.rustc),
        metric_label(&build.profile)
    );

    for (name, help, value) in [
        (
            "aarc_eval_requests_total",
            "Candidate evaluations requested (cache hits + misses).",
            snapshot.stats.requests,
        ),
        (
            "aarc_eval_cache_hits_total",
            "Evaluations answered from the memo-cache.",
            snapshot.stats.cache_hits,
        ),
        (
            "aarc_eval_cache_misses_total",
            "Evaluations that required simulation.",
            snapshot.stats.cache_misses,
        ),
        (
            "aarc_eval_evictions_total",
            "Memo-cache entries evicted under capacity pressure.",
            snapshot.stats.evictions,
        ),
    ] {
        family_header(&mut out, name, "counter", help);
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, help, value) in [
        (
            "aarc_eval_cached_entries",
            "Memo-cache entries currently resident.",
            snapshot.cached_entries as u64,
        ),
        (
            "aarc_eval_threads",
            "Worker threads of the shared evaluation pool.",
            snapshot.stats.threads as u64,
        ),
        (
            "aarc_eval_scenarios_registered",
            "Scenario environments registered with the evaluation service.",
            snapshot.registered_scenarios as u64,
        ),
        (
            "aarc_scenarios",
            "Scenarios in the daemon's runtime registry.",
            scenario_count as u64,
        ),
    ] {
        family_header(&mut out, name, "gauge", help);
        let _ = writeln!(out, "{name} {value}");
    }

    let sessions = state.sessions.lock().expect("session table poisoned");
    let live = sessions.values().filter(|s| s.phase.is_live()).count();
    family_header(
        &mut out,
        "aarc_sessions_total",
        "counter",
        "Search sessions started since daemon boot.",
    );
    let _ = writeln!(out, "aarc_sessions_total {}", sessions.len());
    family_header(
        &mut out,
        "aarc_sessions_live",
        "gauge",
        "Sessions currently running or paused.",
    );
    let _ = writeln!(out, "aarc_sessions_live {live}");

    // Method/class/state come from fixed vocabularies and scenario names
    // are restricted at upload, but escape anyway so a future relaxation
    // can never corrupt the exposition.
    let session_labels = |slot: &Slot<'_>| {
        format!(
            "session=\"{}\",scenario=\"{}\",method=\"{}\",class=\"{}\",state=\"{}\"",
            slot.id,
            metric_label(&slot.scenario),
            metric_label(&slot.method),
            metric_label(&slot.class),
            slot.phase.label()
        )
    };
    // One pass per family so each family's samples stay consecutive under
    // a single header, as the exposition format requires.
    if !sessions.is_empty() {
        family_header(
            &mut out,
            "aarc_session_rounds",
            "gauge",
            "Completed ask/evaluate/tell rounds of the session.",
        );
        for slot in sessions.values() {
            let _ = writeln!(
                out,
                "aarc_session_rounds{{{}}} {}",
                session_labels(slot),
                slot.progress.rounds
            );
        }
        family_header(
            &mut out,
            "aarc_session_evals",
            "gauge",
            "Candidate evaluations consumed by the session.",
        );
        for slot in sessions.values() {
            let _ = writeln!(
                out,
                "aarc_session_evals{{{}}} {}",
                session_labels(slot),
                slot.progress.evals
            );
        }
        if sessions.values().any(|s| s.progress.incumbent.is_some()) {
            family_header(
                &mut out,
                "aarc_session_incumbent_cost",
                "gauge",
                "Cost of the session's best configuration so far.",
            );
            for slot in sessions.values() {
                if let Some(incumbent) = &slot.progress.incumbent {
                    let _ = writeln!(
                        out,
                        "aarc_session_incumbent_cost{{{}}} {}",
                        session_labels(slot),
                        incumbent.cost
                    );
                }
            }
            family_header(
                &mut out,
                "aarc_session_incumbent_makespan_ms",
                "gauge",
                "End-to-end makespan of the session's best configuration, ms.",
            );
            for slot in sessions.values() {
                if let Some(incumbent) = &slot.progress.incumbent {
                    let _ = writeln!(
                        out,
                        "aarc_session_incumbent_makespan_ms{{{}}} {}",
                        session_labels(slot),
                        incumbent.makespan_ms
                    );
                }
            }
        }
    }
    drop(sessions);

    // Everything recorded through the shared telemetry recorder: latency
    // histograms (eval batch, queue wait, sim time, HTTP, session step),
    // kernel counters and the sims/sec gauge.
    aarc_telemetry::prom::write_snapshot(&mut out, &state.telemetry.recorder.snapshot());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chatbot_yaml() -> Vec<u8> {
        let (_, spec) = aarc_spec::builtin_specs()
            .into_iter()
            .find(|(name, _)| *name == "chatbot")
            .expect("chatbot is a builtin");
        aarc_spec::to_string(&spec, aarc_spec::SpecFormat::Yaml).into_bytes()
    }

    /// Looks up a key in a parsed JSON map, panicking with the key name.
    fn field<'a>(doc: &'a serde::Value, key: &str) -> &'a serde::Value {
        doc.get(key)
            .unwrap_or_else(|| panic!("missing field `{key}` in {doc:?}"))
    }

    /// Reads a JSON number as u64 (the shim parses small ints as `Int`).
    fn uint(v: &serde::Value) -> u64 {
        match v {
            serde::Value::Int(i) if *i >= 0 => *i as u64,
            serde::Value::UInt(u) => *u,
            other => panic!("expected unsigned integer, got {other:?}"),
        }
    }

    fn request(method: &str, path: &str, body: &[u8]) -> Request {
        let (path, query) = match path.split_once('?') {
            Some((path, query)) => (path.to_owned(), query.to_owned()),
            None => (path.to_owned(), String::new()),
        };
        Request {
            method: method.to_owned(),
            path,
            query,
            body: body.to_vec(),
        }
    }

    /// Drives the router directly (no sockets) with a manual scheduler:
    /// steps every live session to completion between requests, exactly
    /// like the scheduler thread would.
    fn drain_sessions(state: &ServeState<'_>) {
        loop {
            let runnable: Vec<u64> = {
                let sessions = state.sessions.lock().unwrap();
                sessions
                    .iter()
                    .filter(|(_, s)| s.phase == Phase::Running && s.session.is_some())
                    .map(|(&id, _)| id)
                    .collect()
            };
            if runnable.is_empty() {
                break;
            }
            for id in runnable {
                let taken = {
                    let mut sessions = state.sessions.lock().unwrap();
                    sessions.get_mut(&id).and_then(|s| s.session.take())
                };
                let Some(mut session) = taken else { continue };
                let st = session.step();
                let mut sessions = state.sessions.lock().unwrap();
                let slot = sessions.get_mut(&id).unwrap();
                slot.progress = session.progress().clone();
                slot.trace
                    .extend_from_slice(&session.convergence()[slot.trace.len()..]);
                if st == SessionState::Finished {
                    finalize_slot(slot, session, state.telemetry);
                } else {
                    slot.session = Some(session);
                }
            }
        }
    }

    #[test]
    fn upload_list_delete_lifecycle() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = ServeState::new(&service, &telemetry);
        let yaml = chatbot_yaml();

        let created = route(&state, &request("POST", "/scenarios", &yaml));
        assert_eq!(created.status, 201, "{}", created.body);
        assert!(created.body.contains("\"chatbot\""));

        let duplicate = route(&state, &request("POST", "/scenarios", &yaml));
        assert_eq!(duplicate.status, 409);

        let listed = route(&state, &request("GET", "/scenarios", b""));
        assert_eq!(listed.status, 200);
        assert!(listed.body.contains("\"chatbot\""));

        let gone = route(&state, &request("DELETE", "/scenarios/nope", b""));
        assert_eq!(gone.status, 404);
        let deleted = route(&state, &request("DELETE", "/scenarios/chatbot", b""));
        assert_eq!(deleted.status, 200);
        let listed = route(&state, &request("GET", "/scenarios", b""));
        assert!(!listed.body.contains("chatbot"));
    }

    #[test]
    fn invalid_uploads_are_rejected_with_400() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = ServeState::new(&service, &telemetry);
        let garbage = route(&state, &request("POST", "/scenarios", b"{ not a spec"));
        assert_eq!(garbage.status, 400);
        let empty = route(&state, &request("POST", "/scenarios/validate", b""));
        assert_eq!(empty.status, 400);
        let ok = route(
            &state,
            &request("POST", "/scenarios/validate", &chatbot_yaml()),
        );
        assert_eq!(ok.status, 200, "{}", ok.body);
        assert!(ok.body.contains("\"valid\": true"));
        // Validation never admits anything.
        let listed = route(&state, &request("GET", "/scenarios", b""));
        assert!(!listed.body.contains("chatbot"));
    }

    #[test]
    fn scenario_names_outside_the_safe_alphabet_are_rejected() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = ServeState::new(&service, &telemetry);
        // Names become URL path segments, JSON values and metrics labels.
        for bad in ["bad/name", "bad\"name", "bad name"] {
            let yaml = String::from_utf8(chatbot_yaml())
                .unwrap()
                .replace("name: chatbot", &format!("name: '{bad}'"));
            let reply = route(&state, &request("POST", "/scenarios", yaml.as_bytes()));
            assert_eq!(reply.status, 400, "{bad}: {}", reply.body);
            assert!(reply.body.contains("[A-Za-z0-9._-]"), "{}", reply.body);
        }
        assert_eq!(metric_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn session_runs_to_completion_and_reports_offline_identical_bytes() {
        let service = EvalService::with_threads(2);
        let telemetry = ServeTelemetry::quiet();
        let state = ServeState::new(&service, &telemetry);
        route(&state, &request("POST", "/scenarios", &chatbot_yaml()));

        let started = route(
            &state,
            &request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}"),
        );
        assert_eq!(started.status, 201, "{}", started.body);
        assert!(started.body.contains("\"id\": 1"));

        // A premature report poll is a 409, not an error.
        drain_sessions(&state);
        let status = route(&state, &request("GET", "/sessions/1", b""));
        assert_eq!(status.status, 200);
        assert!(status.body.contains("\"finished\""), "{}", status.body);
        assert!(status.body.contains("\"incumbent\""));

        let report = route(&state, &request("GET", "/sessions/1/report", b""));
        assert_eq!(report.status, 200);

        // Bit-identical to the offline path: same strategy driven by
        // SearchDriver::run on a private engine.
        let workload = {
            let scenarios = state.scenarios.lock().unwrap();
            scenarios["chatbot"].workload.clone()
        };
        let method = methods::build("aarc").unwrap();
        let engine = aarc_simulator::EvalEngine::with_threads(workload.env().clone(), 2);
        let outcome = method.search_with(&engine, workload.slo_ms()).unwrap();
        let offline = ConfigurationReport::new(
            workload.env(),
            &outcome.best_configs,
            &outcome.final_report,
            Some(workload.slo_ms()),
        );
        let mut offline_json = serde_json::to_string_pretty(&offline).unwrap();
        offline_json.push('\n');
        assert_eq!(
            report.body, offline_json,
            "served report must match offline run bytes"
        );
    }

    #[test]
    fn unknown_sessions_scenarios_and_routes_are_404() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = ServeState::new(&service, &telemetry);
        assert_eq!(
            route(&state, &request("GET", "/sessions/7", b"")).status,
            404
        );
        assert_eq!(
            route(&state, &request("GET", "/sessions/7/report", b"")).status,
            404
        );
        assert_eq!(
            route(
                &state,
                &request("POST", "/sessions", b"{\"scenario\": \"ghost\"}")
            )
            .status,
            404
        );
        assert_eq!(route(&state, &request("GET", "/nope", b"")).status, 404);
        assert_eq!(
            route(&state, &request("PUT", "/scenarios", b"")).status,
            405
        );
        assert_eq!(
            route(&state, &request("GET", "/sessions/abc", b"")).status,
            400
        );
    }

    #[test]
    fn pause_cancel_and_delete_conflicts() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = ServeState::new(&service, &telemetry);
        route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
        let started = route(
            &state,
            &request(
                "POST",
                "/sessions",
                b"{\"scenario\": \"chatbot\", \"method\": \"random\"}",
            ),
        );
        assert_eq!(started.status, 201, "{}", started.body);

        // Pause before any scheduling: the session must report paused and
        // deleting its scenario must conflict.
        let paused = route(&state, &request("POST", "/sessions/1/pause", b""));
        assert_eq!(paused.status, 200);
        assert!(paused.body.contains("\"paused\""), "{}", paused.body);
        let conflict = route(&state, &request("DELETE", "/scenarios/chatbot", b""));
        assert_eq!(conflict.status, 409);
        // A paused session does not advance.
        drain_sessions(&state);
        let status = route(&state, &request("GET", "/sessions/1", b""));
        assert!(status.body.contains("\"paused\""), "{}", status.body);

        // Cancel finishes it with the cancelled phase; its report is 409.
        let cancelled = route(&state, &request("POST", "/sessions/1/cancel", b""));
        assert_eq!(cancelled.status, 200);
        drain_sessions(&state);
        let status = route(&state, &request("GET", "/sessions/1", b""));
        assert!(status.body.contains("\"cancelled\""), "{}", status.body);
        assert_eq!(
            route(&state, &request("GET", "/sessions/1/report", b"")).status,
            409
        );
        // Controls on a terminal session conflict.
        assert_eq!(
            route(&state, &request("POST", "/sessions/1/resume", b"")).status,
            409
        );
        // With the session terminal, the scenario can be deleted.
        assert_eq!(
            route(&state, &request("DELETE", "/scenarios/chatbot", b"")).status,
            200
        );
    }

    #[test]
    fn metrics_exposes_service_and_session_series() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = ServeState::new(&service, &telemetry);
        route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
        route(
            &state,
            &request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}"),
        );
        drain_sessions(&state);
        let metrics = route(&state, &request("GET", "/metrics", b""));
        assert_eq!(metrics.status, 200);
        for needle in [
            "aarc_eval_requests_total ",
            "aarc_eval_cache_hits_total ",
            "aarc_eval_cached_entries ",
            "aarc_scenarios 1",
            "aarc_sessions_total 1",
            "aarc_session_rounds{session=\"1\"",
            "aarc_session_incumbent_cost{",
        ] {
            assert!(
                metrics.body.contains(needle),
                "missing `{needle}` in:\n{}",
                metrics.body
            );
        }
    }

    #[test]
    fn version_endpoint_reports_build_provenance() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = ServeState::new(&service, &telemetry);
        let reply = route(&state, &request("GET", "/version", b""));
        assert_eq!(reply.status, 200, "{}", reply.body);
        let info: VersionInfo = serde_json::from_str(&reply.body).unwrap();
        assert_eq!(info.name, "aarc");
        assert_eq!(info, VersionInfo::current());
        // Wrong method on /version is 405, not 404.
        assert_eq!(route(&state, &request("POST", "/version", b"")).status, 405);
    }

    #[test]
    fn debug_events_serves_the_flight_recorder_tail() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = ServeState::new(&service, &telemetry);
        route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
        route(
            &state,
            &request(
                "POST",
                "/sessions",
                b"{\"scenario\": \"chatbot\", \"method\": \"random\"}",
            ),
        );
        drain_sessions(&state);

        let reply = route(&state, &request("GET", "/debug/events", b""));
        assert_eq!(reply.status, 200, "{}", reply.body);
        let doc = serde_json::parse(&reply.body).unwrap();
        assert_eq!(uint(field(&doc, "capacity")) as usize, FLIGHT_CAPACITY);
        assert!(uint(field(&doc, "total")) > 0);
        let events = field(&doc, "events").as_seq().unwrap();
        assert!(!events.is_empty());
        let kinds: Vec<&str> = events
            .iter()
            .map(|e| field(e, "kind").as_str().unwrap())
            .collect();
        assert!(kinds.contains(&"scenario_registered"), "{kinds:?}");
        assert!(kinds.contains(&"session_started"), "{kinds:?}");
        assert!(kinds.contains(&"session_finished"), "{kinds:?}");
        // Events arrive oldest first with strictly increasing sequence
        // numbers.
        let seqs: Vec<u64> = events.iter().map(|e| uint(field(e, "seq"))).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "{seqs:?}");

        let limited = route(&state, &request("GET", "/debug/events?limit=2", b""));
        let doc = serde_json::parse(&limited.body).unwrap();
        let tail = field(&doc, "events").as_seq().unwrap();
        assert_eq!(tail.len(), 2);
        // The limited reply is the TAIL: its last event matches the
        // unlimited reply's last event.
        assert_eq!(
            uint(field(tail.last().unwrap(), "seq")),
            *seqs.last().unwrap()
        );

        let bad = route(&state, &request("GET", "/debug/events?limit=many", b""));
        assert_eq!(bad.status, 400, "{}", bad.body);
    }

    #[test]
    fn session_trace_returns_per_round_convergence() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = ServeState::new(&service, &telemetry);
        route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
        route(
            &state,
            &request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}"),
        );
        assert_eq!(
            route(&state, &request("GET", "/sessions/9/trace", b"")).status,
            404
        );
        drain_sessions(&state);

        let reply = route(&state, &request("GET", "/sessions/1/trace", b""));
        assert_eq!(reply.status, 200, "{}", reply.body);
        let doc = serde_json::parse(&reply.body).unwrap();
        assert_eq!(uint(field(&doc, "id")), 1);
        assert_eq!(field(&doc, "scenario").as_str(), Some("chatbot"));
        assert_eq!(field(&doc, "state").as_str(), Some("finished"));
        let rounds = field(&doc, "rounds").as_seq().unwrap();
        assert!(!rounds.is_empty(), "finished session has a trace");
        // Rounds are strictly increasing, evals non-decreasing, and the
        // last point agrees with the session's final progress.
        let progress = {
            let sessions = state.sessions.lock().unwrap();
            sessions[&1].progress.clone()
        };
        let last = rounds.last().unwrap();
        assert_eq!(uint(field(last, "round")), progress.rounds);
        assert_eq!(uint(field(last, "evals")), progress.evals);
        assert!(
            !matches!(field(last, "incumbent_cost"), serde::Value::Null),
            "final point carries the incumbent"
        );
        for pair in rounds.windows(2) {
            assert!(uint(field(&pair[0], "round")) < uint(field(&pair[1], "round")));
            assert!(uint(field(&pair[0], "evals")) <= uint(field(&pair[1], "evals")));
        }
    }

    /// Validates the full text exposition: every sample belongs to a
    /// family announced by exactly one `# HELP` + `# TYPE` pair, family
    /// samples are consecutive, histogram buckets are cumulative with
    /// `+Inf` equal to `_count`, and the latency histograms of the
    /// telemetry recorder are present.
    #[test]
    fn metrics_exposition_is_well_formed() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        service
            .attach_telemetry(telemetry.eval_telemetry())
            .unwrap();
        let state = ServeState::new(&service, &telemetry);
        route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
        route(
            &state,
            &request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}"),
        );
        drain_sessions(&state);
        let metrics = route(&state, &request("GET", "/metrics", b""));
        assert_eq!(metrics.status, 200);
        let body = &metrics.body;

        let mut types: std::collections::BTreeMap<String, String> = Default::default();
        let mut helps: std::collections::BTreeSet<String> = Default::default();
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split(' ');
                let (name, kind) = (it.next().unwrap(), it.next().unwrap());
                assert!(
                    types.insert(name.to_owned(), kind.to_owned()).is_none(),
                    "duplicate TYPE for {name}"
                );
            } else if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap();
                assert!(helps.insert(name.to_owned()), "duplicate HELP for {name}");
            }
        }
        assert_eq!(
            types.keys().collect::<Vec<_>>(),
            helps.iter().collect::<Vec<_>>(),
            "every TYPE has a HELP and vice versa"
        );

        // Resolve each sample line to its family; histogram samples use
        // the _bucket/_sum/_count suffixes of the family name.
        let family_of = |sample_name: &str| -> String {
            for suffix in ["_bucket", "_sum", "_count"] {
                if let Some(base) = sample_name.strip_suffix(suffix) {
                    if types.get(base).map(String::as_str) == Some("histogram") {
                        return base.to_owned();
                    }
                }
            }
            sample_name.to_owned()
        };
        let mut order: Vec<String> = Vec::new();
        let mut bucket_runs: std::collections::BTreeMap<String, Vec<(f64, u64)>> =
            Default::default();
        let mut counts: std::collections::BTreeMap<String, u64> = Default::default();
        for line in body
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let name_end = line.find(['{', ' ']).unwrap();
            let name = &line[..name_end];
            let family = family_of(name);
            assert!(
                types.contains_key(&family),
                "sample `{name}` has no TYPE header"
            );
            if order.last() != Some(&family) {
                assert!(
                    !order.contains(&family),
                    "family {family} samples are not consecutive"
                );
                order.push(family.clone());
            }
            let value = line.rsplit(' ').next().unwrap();
            if name.ends_with("_bucket") && types[&family] == "histogram" {
                let le = line
                    .split("le=\"")
                    .nth(1)
                    .and_then(|s| s.split('"').next())
                    .expect("bucket has le label");
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>().unwrap()
                };
                bucket_runs
                    .entry(family.clone())
                    .or_default()
                    .push((bound, value.parse().unwrap()));
            } else if name.ends_with("_count") && types[&family] == "histogram" {
                counts.insert(family.clone(), value.parse().unwrap());
            }
        }

        let histogram_families: Vec<&String> = types
            .iter()
            .filter(|(_, kind)| *kind == "histogram")
            .map(|(name, _)| name)
            .collect();
        assert!(
            histogram_families.len() >= 3,
            "expected at least 3 histogram families, got {histogram_families:?}"
        );
        for family in &histogram_families {
            let buckets = &bucket_runs[*family];
            assert!(
                buckets
                    .windows(2)
                    .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1),
                "{family} buckets must be cumulative with increasing bounds"
            );
            let (last_bound, last_value) = *buckets.last().unwrap();
            assert!(last_bound.is_infinite(), "{family} is missing +Inf");
            assert_eq!(last_value, counts[*family], "{family} +Inf != _count");
        }
        // The session actually recorded into the eval histograms (the
        // method decides whether it probes or batches, so accept either).
        assert!(counts["aarc_eval_batch_seconds"] + counts["aarc_eval_probe_seconds"] > 0);
        assert!(body.contains("aarc_kernel_simulations_total "));
        assert!(body.contains("aarc_build_info{"));
        assert!(body.contains("aarc_session_rounds{session=\"1\""));
    }

    #[test]
    fn shutdown_blocks_admission_and_cancels_paused_sessions() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = ServeState::new(&service, &telemetry);
        route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
        route(
            &state,
            &request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}"),
        );
        route(&state, &request("POST", "/sessions/1/pause", b""));

        let reply = route(&state, &request("POST", "/shutdown", b""));
        assert_eq!(reply.status, 200);
        assert!(reply.body.contains("\"draining\""));
        assert_eq!(
            route(&state, &request("POST", "/scenarios", &chatbot_yaml())).status,
            503
        );
        assert_eq!(
            route(
                &state,
                &request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}")
            )
            .status,
            503
        );
        // The paused session was marked for cancellation so the drain
        // completes.
        drain_sessions(&state);
        assert!(state.drained());
    }

    #[test]
    fn pause_after_shutdown_cannot_stall_the_drain() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = ServeState::new(&service, &telemetry);
        route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
        route(
            &state,
            &request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}"),
        );
        route(&state, &request("POST", "/shutdown", b""));
        // A pause landing after /shutdown is refused outright — it would
        // park the session and the daemon would never exit.
        let late_pause = route(&state, &request("POST", "/sessions/1/pause", b""));
        assert_eq!(late_pause.status, 503, "{}", late_pause.body);
        // Even a pause that slipped in as a pending flag (e.g. while the
        // scheduler held the session) is converted to a cancellation by
        // the scheduler's shutdown sweep.
        {
            let mut sessions = state.sessions.lock().unwrap();
            sessions.get_mut(&1).unwrap().want_pause = true;
        }
        {
            let mut sessions = state.sessions.lock().unwrap();
            for slot in sessions.values_mut() {
                apply_controls_with_shutdown(slot, state.shutting_down());
            }
        }
        drain_sessions(&state);
        assert!(state.drained(), "pending pause must not park the session");
    }
}
