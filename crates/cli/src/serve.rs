//! `aarc serve` — the online configuration daemon.
//!
//! Where every other subcommand builds the world, runs to completion and
//! exits, `serve` keeps one process-wide
//! [`EvalService`](aarc_simulator::EvalService) alive behind a hand-rolled
//! HTTP/1.1 JSON API (see [`crate::http`]): clients upload scenario specs
//! (parsed in memory via `ScenarioSpec::from_slice`, never touching disk),
//! start search sessions (method × input class × SLO), poll their
//! progress, fetch final reports and scrape `/metrics`.
//!
//! The API is **versioned and multi-tenant**:
//!
//! * every route is mounted under `/api/v1/...`; the bare legacy paths
//!   remain as aliases that answer with a `Deprecation: true` header, and
//!   `GET /api/v1` serves a discovery document;
//! * an `X-Api-Key` header resolves to a [`crate::tenant::Tenant`];
//!   scenarios, sessions and metric labels are partitioned per tenant and
//!   a tenant can never observe (or delete) another tenant's resources —
//!   cross-tenant lookups answer `404`, not `403`, so existence never
//!   leaks. The shared memo-cache still deduplicates identical scenario
//!   environments *below* the namespace (same fingerprint ⇒ same cached
//!   simulations), which is invisible to clients except as speed;
//! * admission control rejects instead of queuing: per-tenant scenario /
//!   live-session quotas and token-bucket rate limits answer `429`, the
//!   global live-session watermark and a draining daemon answer `503`,
//!   both as RFC-7807 problem documents with `Retry-After`;
//! * every non-2xx response is `application/problem+json` (see
//!   [`crate::problem`]).
//!
//! A single **scheduler thread** round-robins
//! [`SearchSession::step`](aarc_core::SearchSession::step) across all live
//! sessions, so concurrent clients' searches interleave on the shared
//! worker pool and memo-cache exactly like `aarc sweep` interleaves its
//! grid — and therefore return results bit-identical to an offline
//! `aarc run` of the same spec/method/SLO (pinned by the CI serve smoke
//! job).
//!
//! Shutdown: `POST /shutdown` stops admission, cancels paused sessions,
//! drains running ones and exits 0. A SIGTERM cannot be intercepted in
//! this build — the offline environment has no `libc` and the crate
//! forbids `unsafe` — so process supervisors should send `/shutdown`
//! first and treat SIGTERM as the hard fallback.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize, Value};

use aarc_core::report::ConfigurationReport;
use aarc_core::{AarcError, RoundPoint, SearchSession, SessionProgress, SessionState};
use aarc_simulator::{EvalService, EvalTelemetry, ScenarioHandle};
use aarc_spec::{validate, ScenarioSpec};
use aarc_telemetry::{
    events_json, FieldValue, FlightRecorder, Histogram, LogLevel, Logger, Recorder,
};
use aarc_workloads::Workload;

use crate::http::{read_request, Request, Response};
use crate::methods;
use crate::problem::{problem, Kind, Problem};
use crate::state::{
    CheckpointSummary, PersistedScenario, QuarantinedFile, SessionCheckpoint, StateDir, WalRecord,
    STATE_VERSION,
};
use crate::sweep::SweepClass;
use crate::tenant::{TenantId, TenantRegistry};
use crate::version::VersionInfo;

/// How long a connection may sit idle before the daemon gives up on it
/// (bounds shutdown latency: a drained daemon only waits this long for
/// stragglers).
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Events retained by the daemon's flight recorder (served from
/// `GET /debug/events`).
const FLIGHT_CAPACITY: usize = 1024;

/// Default and maximum `limit` of `GET /debug/events`.
const DEFAULT_EVENT_LIMIT: usize = 64;

/// `limit` applied to paginated listings when the query omits it.
const DEFAULT_PAGE_LIMIT: usize = 50;

/// Hard ceiling of the pagination `limit` (larger requests are clamped).
const MAX_PAGE_LIMIT: usize = 500;

/// Default global live-session watermark: above this many concurrently
/// live (running or paused) sessions, new session starts are rejected
/// with `503` instead of queuing without bound.
pub const DEFAULT_MAX_LIVE_SESSIONS: usize = 1024;

/// The observable session phases, as used by the `status=` list filter.
const PHASE_LABELS: [&str; 5] = ["running", "paused", "finished", "failed", "cancelled"];

/// Everything `run_serve` needs, bundled so callers (CLI flags, the
/// loadtest harness, tests) build it in one place.
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks an ephemeral
    /// port, reported in the readiness line and the `ready` channel).
    pub addr: String,
    /// Worker threads of the shared evaluation pool.
    pub threads: usize,
    /// Tenant registry (API keys, quotas, rate limits).
    pub tenants: TenantRegistry,
    /// Global live-session watermark for admission control.
    pub max_live_sessions: usize,
    /// Structured logger.
    pub logger: Logger,
    /// Durable state directory (`--state-dir`); `None` disables
    /// persistence entirely — not a single filesystem call is made.
    pub state_dir: Option<PathBuf>,
    /// Checkpoint cadence: a live session's checkpoint is refreshed
    /// after every this-many completed rounds.
    pub checkpoint_every: u64,
    /// Raw contents of the `--tenants` file, persisted verbatim into the
    /// state dir so a restart without the flag keeps its namespaces.
    pub tenants_config: Option<String>,
}

/// The daemon's observability bundle: the metric registry every layer
/// records into, the shared flight recorder, the structured logger, and
/// the daemon's own latency histograms. Built once per `run_serve` and
/// shared by reference with the connection handlers and the scheduler.
pub struct ServeTelemetry {
    recorder: Recorder,
    flight: Arc<FlightRecorder>,
    logger: Logger,
    http_seconds: Arc<Histogram>,
    step_seconds: Arc<Histogram>,
}

impl ServeTelemetry {
    /// Creates the bundle and registers the daemon's own instruments.
    pub fn new(logger: Logger) -> Self {
        let recorder = Recorder::new();
        let flight = Arc::new(FlightRecorder::new(FLIGHT_CAPACITY));
        let http_seconds = recorder.histogram(
            "aarc_http_request_seconds",
            "Wall-clock latency of HTTP requests (read, route, respond).",
        );
        let step_seconds = recorder.histogram(
            "aarc_session_step_seconds",
            "Wall-clock latency of one session scheduler step (ask/evaluate/tell).",
        );
        ServeTelemetry {
            recorder,
            flight,
            logger,
            http_seconds,
            step_seconds,
        }
    }

    /// A bundle that logs errors only — the default for router unit tests.
    #[cfg(test)]
    pub fn quiet() -> Self {
        ServeTelemetry::new(Logger::new(
            LogLevel::Error,
            aarc_telemetry::LogFormat::Text,
        ))
    }

    /// The instruments the [`EvalService`] should record into.
    pub fn eval_telemetry(&self) -> EvalTelemetry {
        EvalTelemetry::new(&self.recorder, Arc::clone(&self.flight))
    }
}

/// One uploaded scenario in the runtime registry.
struct ScenarioEntry<'s> {
    workload: Workload,
    functions: usize,
    edges: usize,
    slo_ms: f64,
    /// One registered handle per input-class variant used by this
    /// scenario's sessions: the class environment is compiled once and
    /// every further session clones the (cheap, `Arc`-backed) handle.
    /// Their fingerprints are unregistered — and their cache entries
    /// purged — when the scenario is deleted, unless another entry (in
    /// any tenant) still references the same fingerprint.
    handles: BTreeMap<String, ScenarioHandle<'s>>,
}

/// Observable lifecycle phase of a served session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Running,
    Paused,
    Finished,
    Failed,
    Cancelled,
}

impl Phase {
    fn label(self) -> &'static str {
        match self {
            Phase::Running => "running",
            Phase::Paused => "paused",
            Phase::Finished => "finished",
            Phase::Failed => "failed",
            Phase::Cancelled => "cancelled",
        }
    }

    /// Whether the session still occupies the scheduler.
    fn is_live(self) -> bool {
        matches!(self, Phase::Running | Phase::Paused)
    }
}

/// Final summary of a finished session (mirrors the sweep report row).
#[derive(Debug, Clone, Serialize)]
struct FinalSummary {
    final_cost: f64,
    final_makespan_ms: f64,
    meets_slo: bool,
    samples: usize,
}

/// One session slot: identity, the steppable session itself (absent while
/// the scheduler holds it for a step, and after it finished), the last
/// published progress snapshot and the terminal result.
struct Slot<'s> {
    id: u64,
    tenant: TenantId,
    scenario: String,
    method: String,
    class: String,
    slo_ms: f64,
    session: Option<SearchSession<'s>>,
    phase: Phase,
    want_pause: bool,
    want_cancel: bool,
    progress: SessionProgress,
    /// Per-round convergence trace, copied incrementally from the
    /// session's [`SearchSession::convergence`] after every step so
    /// `GET /sessions/{id}/trace` works while the session runs and after
    /// it finished (the session itself is consumed on finish).
    trace: Vec<RoundPoint>,
    /// Exact `aarc run --format json` bytes of the winning configuration —
    /// byte-identical to the offline run of the same spec/method/SLO.
    report_json: Option<String>,
    summary: Option<FinalSummary>,
    error: Option<String>,
}

/// Shared daemon state: the evaluation substrate, the tenant registry,
/// the (tenant-partitioned) runtime scenario registry and the session
/// table. Connection handlers and the scheduler thread share it by
/// reference inside one thread scope.
struct ServeState<'s> {
    service: &'s EvalService,
    telemetry: &'s ServeTelemetry,
    tenants: TenantRegistry,
    max_live_sessions: usize,
    scenarios: Mutex<BTreeMap<(TenantId, String), ScenarioEntry<'s>>>,
    sessions: Mutex<BTreeMap<u64, Slot<'s>>>,
    next_session_id: AtomicU64,
    shutdown: AtomicBool,
    /// Durable state, when `--state-dir` was given.
    persist: Option<StateDir>,
    /// Checkpoint cadence in completed rounds.
    checkpoint_every: u64,
    /// True from boot until startup recovery has finished replaying the
    /// WAL and checkpoints; tenant routes answer 503 `recovering`
    /// meanwhile (operator endpoints stay up).
    recovering: AtomicBool,
    /// The outcome of startup recovery, served at `GET /api/v1/recovery`.
    recovery: Mutex<Option<RecoveryReport>>,
}

/// What startup recovery did, kept for the lifetime of the daemon and
/// served at `GET /api/v1/recovery` (also summarized as the
/// `aarc_recovery_*` metric families).
#[derive(Debug, Clone, Default, Serialize)]
struct RecoveryReport {
    /// WAL records replayed on top of the registry snapshot.
    wal_records_applied: u64,
    /// WAL lines dropped as torn or unparseable.
    wal_lines_dropped: u64,
    /// Scenarios re-registered from persisted specs.
    scenarios_recovered: u64,
    /// Checkpoint files considered.
    checkpoints_seen: u64,
    /// Live sessions resumed by deterministic replay.
    sessions_resumed: u64,
    /// Terminal sessions whose results were restored without replay.
    sessions_restored: u64,
    /// State files (or registry entries) set aside as unusable.
    quarantined: Vec<QuarantinedFile>,
}

impl<'s> ServeState<'s> {
    fn new(
        service: &'s EvalService,
        telemetry: &'s ServeTelemetry,
        tenants: TenantRegistry,
        max_live_sessions: usize,
        persist: Option<StateDir>,
        checkpoint_every: u64,
    ) -> Self {
        let recovering = persist.is_some();
        ServeState {
            service,
            telemetry,
            tenants,
            max_live_sessions,
            scenarios: Mutex::new(BTreeMap::new()),
            sessions: Mutex::new(BTreeMap::new()),
            next_session_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            persist,
            checkpoint_every,
            recovering: AtomicBool::new(recovering),
            recovery: Mutex::new(None),
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Whether startup recovery is still replaying durable state.
    fn recovering(&self) -> bool {
        self.recovering.load(Ordering::SeqCst)
    }

    /// Resolves a persisted tenant name back to the id of the current
    /// registry — names are the stable cross-restart identity, ids are
    /// positional.
    fn tenant_by_name(&self, name: &str) -> Option<TenantId> {
        self.tenants.all().iter().position(|t| t.name == name)
    }

    /// Number of sessions still occupying the scheduler.
    fn live_sessions(&self) -> usize {
        self.sessions
            .lock()
            .expect("session table poisoned")
            .values()
            .filter(|s| s.phase.is_live())
            .count()
    }

    /// Whether the daemon has been asked to shut down and every session
    /// has reached a terminal phase — the exit condition of both the
    /// accept loop and the scheduler thread.
    fn drained(&self) -> bool {
        self.shutting_down() && self.live_sessions() == 0
    }

    /// Counts one authenticated API request against the tenant's
    /// per-tenant request counter family.
    fn count_tenant_request(&self, tenant: &str) {
        self.telemetry
            .recorder
            .labeled_counter(
                "aarc_tenant_http_requests_total",
                "Authenticated API requests, per tenant.",
                &[("tenant", tenant)],
            )
            .inc();
    }

    /// Counts one admission-control rejection (rate, quota, saturated,
    /// shutdown) for the tenant.
    fn count_rejection(&self, tenant: &str, reason: &'static str) {
        self.telemetry
            .recorder
            .labeled_counter(
                "aarc_tenant_rejected_total",
                "Requests rejected by admission control, per tenant and reason.",
                &[("tenant", tenant), ("reason", reason)],
            )
            .inc();
    }
}

/// Runs the daemon until a graceful shutdown completes. When `ready` is
/// given, the bound address (useful with port 0) is sent on it right
/// after the listener is up — the in-process channel twin of the
/// readiness stderr line.
///
/// # Errors
///
/// Returns a user-facing message when the listener cannot bind; runtime
/// errors of individual requests are reported to the client, never fatal.
pub fn run_serve(config: ServeConfig, ready: Option<Sender<SocketAddr>>) -> Result<(), String> {
    let ServeConfig {
        addr,
        threads,
        mut tenants,
        max_live_sessions,
        logger,
        state_dir,
        checkpoint_every,
        tenants_config,
    } = config;
    // A daemon explicitly asked for durability it cannot provide must
    // fail loudly at startup, not degrade silently.
    let persist = match &state_dir {
        None => None,
        Some(dir) => Some(
            StateDir::open(dir)
                .map_err(|e| format!("cannot open state dir {}: {e}", dir.display()))?,
        ),
    };
    if let Some(persist) = &persist {
        match &tenants_config {
            // The tenants file travels with the state dir, verbatim, so
            // a restart without `--tenants` keeps its namespaces.
            Some(raw) => persist
                .save_tenants(raw.as_bytes())
                .map_err(|e| format!("cannot persist tenants config: {e}"))?,
            None => {
                if let Some(saved) = persist.load_tenants() {
                    tenants = TenantRegistry::from_file_contents(&saved).map_err(|e| {
                        format!(
                            "persisted tenants config in {} is invalid: {e}",
                            persist.root().display()
                        )
                    })?;
                }
            }
        }
    }
    let listener = TcpListener::bind(&addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve local address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot configure listener: {e}"))?;
    let service = EvalService::with_threads(threads);
    let telemetry = ServeTelemetry::new(logger);
    service
        .attach_telemetry(telemetry.eval_telemetry())
        .expect("fresh service has no telemetry attached");
    let state = ServeState::new(
        &service,
        &telemetry,
        tenants,
        max_live_sessions,
        persist,
        checkpoint_every.max(1),
    );
    // The readiness line is the machine-readable contract of the CI smoke
    // job and the integration tests: they parse the bound (possibly
    // ephemeral) port out of it. It must stay the FIRST stderr line, so it
    // is printed before any log record.
    eprintln!("aarc serve: listening on {local} ({threads} worker threads)");
    if let Some(ready) = ready {
        let _ = ready.send(local);
    }
    telemetry.logger.info(
        "serve_started",
        &[
            ("addr", FieldValue::Str(local.to_string())),
            ("threads", FieldValue::U64(threads as u64)),
            ("tenants", FieldValue::U64(state.tenants.all().len() as u64)),
            (
                "max_live_sessions",
                FieldValue::U64(state.max_live_sessions as u64),
            ),
        ],
    );

    std::thread::scope(|scope| {
        scope.spawn(|| {
            // Recovery runs on the scheduler thread, before it steps
            // anything: tenant routes answer 503 `recovering` meanwhile
            // and operator endpoints (healthz, metrics, recovery) are
            // already being served by the accept loop.
            run_recovery(&state);
            scheduler_loop(&state)
        });
        loop {
            if state.drained() {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let state = &state;
                    scope.spawn(move || handle_connection(state, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    eprintln!("aarc serve: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    });
    // Final flush: by now every session is terminal; persist each one's
    // result so a restarted daemon can still serve its report.
    if state.persist.is_some() {
        let checkpoints: Vec<SessionCheckpoint> = {
            let sessions = state.sessions.lock().expect("session table poisoned");
            sessions
                .values()
                .map(|s| checkpoint_of(&state, s))
                .collect()
        };
        for checkpoint in &checkpoints {
            write_checkpoint(&state, checkpoint);
        }
    }
    telemetry.logger.info("serve_drained", &[]);
    eprintln!("aarc serve: drained, exiting");
    Ok(())
}

/// The session scheduler: round-robins one [`SearchSession::step`] per
/// live session per round on the shared service, applying pause/cancel
/// requests between steps, until shutdown has drained every session.
/// Stepping happens outside the session-table lock, so status polls are
/// never blocked behind a long batch.
fn scheduler_loop(state: &ServeState<'_>) {
    loop {
        let shutting_down = state.shutting_down();
        let runnable: Vec<u64> = {
            let mut sessions = state.sessions.lock().expect("session table poisoned");
            for slot in sessions.values_mut() {
                apply_controls_with_shutdown(slot, shutting_down);
            }
            sessions
                .iter()
                .filter(|(_, s)| s.phase == Phase::Running && s.session.is_some())
                .map(|(&id, _)| id)
                .collect()
        };
        let mut stepped = false;
        for id in runnable {
            let taken = {
                let mut sessions = state.sessions.lock().expect("session table poisoned");
                sessions.get_mut(&id).and_then(|slot| {
                    if slot.phase == Phase::Running {
                        slot.session.take()
                    } else {
                        None
                    }
                })
            };
            let Some(mut session) = taken else { continue };
            let step_start = Instant::now();
            let outcome_state = session.step();
            let step_ns = step_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            state.telemetry.step_seconds.record_ns(step_ns);
            stepped = true;
            let mut sessions = state.sessions.lock().expect("session table poisoned");
            let slot = sessions.get_mut(&id).expect("slots are never removed");
            slot.progress = session.progress().clone();
            slot.trace
                .extend_from_slice(&session.convergence()[slot.trace.len()..]);
            state.telemetry.flight.record(
                "session_step",
                vec![
                    ("session", FieldValue::U64(id)),
                    ("rounds", FieldValue::U64(slot.progress.rounds)),
                    ("duration_us", FieldValue::U64(step_ns / 1_000)),
                ],
            );
            if outcome_state == SessionState::Finished {
                finalize_slot(slot, session, state.telemetry);
            } else {
                slot.session = Some(session);
            }
            // Checkpoint cadence: every Nth completed round, and always
            // at the terminal phase. The checkpoint is assembled under
            // the lock (cheap clones) but written to disk after it is
            // released, so polls are never blocked behind an fsync.
            let due = state.persist.is_some()
                && (outcome_state == SessionState::Finished
                    || (slot.progress.rounds > 0
                        && slot.progress.rounds.is_multiple_of(state.checkpoint_every)));
            let checkpoint = due.then(|| checkpoint_of(state, slot));
            drop(sessions);
            if let Some(checkpoint) = checkpoint {
                write_checkpoint(state, &checkpoint);
            }
        }
        if state.drained() {
            break;
        }
        if !stepped {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

// ---------------------------------------------------------------------------
// Durable state: checkpoints and startup recovery
// ---------------------------------------------------------------------------

/// Assembles the durable record of one session slot — identity and
/// provenance (enough to rebuild the strategy and replay it), the
/// progress/trace the replay is verified against, and the terminal
/// result if the session already finished.
fn checkpoint_of(state: &ServeState<'_>, slot: &Slot<'_>) -> SessionCheckpoint {
    SessionCheckpoint {
        v: STATE_VERSION,
        id: slot.id,
        tenant: state.tenants.tenant(slot.tenant).name.clone(),
        scenario: slot.scenario.clone(),
        method: slot.method.clone(),
        class: slot.class.clone(),
        slo_ms: slot.slo_ms,
        phase: slot.phase.label().to_owned(),
        rounds: slot.progress.rounds,
        progress: slot.progress.clone(),
        trace: slot.trace.clone(),
        report_json: slot.report_json.clone(),
        summary: slot.summary.as_ref().map(|s| CheckpointSummary {
            final_cost: s.final_cost,
            final_makespan_ms: s.final_makespan_ms,
            meets_slo: s.meets_slo,
            samples: s.samples as u64,
        }),
        error: slot.error.clone(),
    }
}

/// Writes one checkpoint through the state dir, counting the outcome; a
/// failed write degrades durability, never the session itself.
fn write_checkpoint(state: &ServeState<'_>, checkpoint: &SessionCheckpoint) {
    let Some(persist) = &state.persist else {
        return;
    };
    match persist.write_checkpoint(checkpoint) {
        Ok(()) => state
            .telemetry
            .recorder
            .counter(
                "aarc_checkpoint_writes_total",
                "Session checkpoints written to the state dir.",
            )
            .inc(),
        Err(e) => {
            state
                .telemetry
                .recorder
                .counter(
                    "aarc_checkpoint_write_failures_total",
                    "Session checkpoint writes that failed (durability degraded).",
                )
                .inc();
            state.telemetry.logger.log(
                LogLevel::Warn,
                "checkpoint_write_failed",
                &[
                    ("session", FieldValue::U64(checkpoint.id)),
                    ("error", FieldValue::Str(e.to_string())),
                ],
            );
        }
    }
}

/// Startup recovery: replays the registry WAL into live scenario
/// registrations, compacts it, then rebuilds every checkpointed session —
/// live ones by deterministic replay (re-stepping a fresh strategy the
/// checkpointed number of rounds and verifying the progress/trace match),
/// terminal ones by restoring their recorded result. Anything unusable is
/// quarantined and reported; recovery degrades, it never crashes the
/// daemon. Runs on the scheduler thread before the first step, while
/// tenant routes answer 503 `recovering`.
fn run_recovery(state: &ServeState<'_>) {
    let Some(persist) = &state.persist else {
        state.recovering.store(false, Ordering::SeqCst);
        return;
    };
    let started = Instant::now();
    state.telemetry.flight.record(
        "recovery_started",
        vec![(
            "state_dir",
            FieldValue::Str(persist.root().display().to_string()),
        )],
    );
    let mut report = RecoveryReport::default();

    let load = persist.load_registry();
    report.wal_records_applied = load.records_applied;
    report.wal_lines_dropped = load.lines_dropped;
    report.quarantined.extend(load.quarantined);
    let mut surviving: Vec<PersistedScenario> = Vec::with_capacity(load.scenarios.len());
    for scenario in load.scenarios {
        match recover_scenario(state, &scenario) {
            Ok(()) => {
                report.scenarios_recovered += 1;
                surviving.push(scenario);
            }
            Err(reason) => {
                // Registry entries live inside the WAL/snapshot, not in
                // their own file, so there is nothing to move — the entry
                // is reported and dropped from the compacted snapshot.
                report.quarantined.push(QuarantinedFile {
                    file: format!("registry:{}/{}", scenario.tenant, scenario.scenario),
                    reason,
                });
            }
        }
    }
    if let Err(e) = persist.compact(&surviving) {
        state.telemetry.logger.log(
            LogLevel::Warn,
            "recovery_compaction_failed",
            &[("error", FieldValue::Str(e.to_string()))],
        );
    }

    for (path, parsed) in persist.load_checkpoints() {
        report.checkpoints_seen += 1;
        let quarantined = match parsed {
            Err(reason) => Some(persist.quarantine(&path, reason)),
            Ok(checkpoint) => match recover_session(state, &checkpoint) {
                Ok(live) => {
                    if live {
                        report.sessions_resumed += 1;
                    } else {
                        report.sessions_restored += 1;
                    }
                    None
                }
                Err(reason) => Some(persist.quarantine(&path, reason)),
            },
        };
        if let Some(entry) = quarantined {
            state.telemetry.flight.record(
                "recovery_quarantined",
                vec![
                    ("file", FieldValue::Str(entry.file.clone())),
                    ("reason", FieldValue::Str(entry.reason.clone())),
                ],
            );
            state.telemetry.logger.log(
                LogLevel::Warn,
                "recovery_quarantined",
                &[
                    ("file", FieldValue::Str(entry.file.clone())),
                    ("reason", FieldValue::Str(entry.reason.clone())),
                ],
            );
            report.quarantined.push(entry);
        }
    }

    // Session ids must keep growing past every recovered id, so resumed
    // and new sessions never collide.
    let max_recovered = {
        let sessions = state.sessions.lock().expect("session table poisoned");
        sessions.keys().next_back().copied().unwrap_or(0)
    };
    let next = state.next_session_id.load(Ordering::SeqCst);
    state
        .next_session_id
        .store(next.max(max_recovered + 1), Ordering::SeqCst);

    let duration_ms = started.elapsed().as_millis().min(u64::MAX as u128) as u64;
    let fields = vec![
        (
            "wal_records_applied",
            FieldValue::U64(report.wal_records_applied),
        ),
        (
            "wal_lines_dropped",
            FieldValue::U64(report.wal_lines_dropped),
        ),
        (
            "scenarios_recovered",
            FieldValue::U64(report.scenarios_recovered),
        ),
        ("sessions_resumed", FieldValue::U64(report.sessions_resumed)),
        (
            "sessions_restored",
            FieldValue::U64(report.sessions_restored),
        ),
        (
            "quarantined",
            FieldValue::U64(report.quarantined.len() as u64),
        ),
        ("duration_ms", FieldValue::U64(duration_ms)),
    ];
    state
        .telemetry
        .flight
        .record("recovery_finished", fields.clone());
    let level = if report.quarantined.is_empty() {
        LogLevel::Info
    } else {
        LogLevel::Warn
    };
    state
        .telemetry
        .logger
        .log(level, "recovery_finished", &fields);
    *state.recovery.lock().expect("recovery report poisoned") = Some(report);
    state.recovering.store(false, Ordering::SeqCst);
}

/// Re-registers one persisted scenario: canonical YAML → spec →
/// validation → compiled workload, inserted under the tenant resolved by
/// name. Mirrors `upload_scenario` without the HTTP layer.
fn recover_scenario(state: &ServeState<'_>, scenario: &PersistedScenario) -> Result<(), String> {
    let tenant_id = state.tenant_by_name(&scenario.tenant).ok_or_else(|| {
        format!(
            "tenant `{}` is not in the current registry",
            scenario.tenant
        )
    })?;
    let (spec, workload) = parse_and_compile(scenario.spec_yaml.as_bytes())
        .map_err(|(_, message)| format!("persisted spec rejected: {message}"))?;
    if workload.name() != scenario.scenario {
        return Err(format!(
            "persisted spec is named `{}`, expected `{}`",
            workload.name(),
            scenario.scenario
        ));
    }
    let mut scenarios = state.scenarios.lock().expect("scenario registry poisoned");
    scenarios.insert(
        (tenant_id, scenario.scenario.clone()),
        ScenarioEntry {
            functions: spec.functions.len(),
            edges: spec.edges.len(),
            slo_ms: workload.slo_ms(),
            workload,
            handles: BTreeMap::new(),
        },
    );
    Ok(())
}

/// Rebuilds one checkpointed session. Terminal sessions are restored
/// verbatim (their recorded report/summary/error is the result). Live
/// sessions are resumed by replay: a fresh strategy is stepped the
/// checkpointed number of rounds and must reproduce the checkpointed
/// progress and convergence trace exactly — the determinism contract the
/// byte-golden suite pins — or the checkpoint is rejected. Returns
/// whether the session came back live.
fn recover_session(state: &ServeState<'_>, checkpoint: &SessionCheckpoint) -> Result<bool, String> {
    let tenant_id = state.tenant_by_name(&checkpoint.tenant).ok_or_else(|| {
        format!(
            "tenant `{}` is not in the current registry",
            checkpoint.tenant
        )
    })?;
    let phase = match checkpoint.phase.as_str() {
        "running" => Phase::Running,
        "paused" => Phase::Paused,
        "finished" => Phase::Finished,
        "failed" => Phase::Failed,
        "cancelled" => Phase::Cancelled,
        other => return Err(format!("unknown phase `{other}`")),
    };
    {
        let sessions = state.sessions.lock().expect("session table poisoned");
        if sessions.contains_key(&checkpoint.id) {
            return Err(format!("duplicate session id {}", checkpoint.id));
        }
    }
    let session = if phase.is_live() {
        Some(replay_session(state, tenant_id, checkpoint)?)
    } else {
        None
    };
    let live = phase.is_live();
    let slot = Slot {
        id: checkpoint.id,
        tenant: tenant_id,
        scenario: checkpoint.scenario.clone(),
        method: checkpoint.method.clone(),
        class: checkpoint.class.clone(),
        slo_ms: checkpoint.slo_ms,
        session,
        phase,
        want_pause: phase == Phase::Paused,
        want_cancel: false,
        progress: checkpoint.progress.clone(),
        trace: checkpoint.trace.clone(),
        report_json: checkpoint.report_json.clone(),
        summary: checkpoint.summary.as_ref().map(|s| FinalSummary {
            final_cost: s.final_cost,
            final_makespan_ms: s.final_makespan_ms,
            meets_slo: s.meets_slo,
            samples: s.samples as usize,
        }),
        error: checkpoint.error.clone(),
    };
    let mut sessions = state.sessions.lock().expect("session table poisoned");
    sessions.insert(checkpoint.id, slot);
    drop(sessions);
    state.telemetry.flight.record(
        "recovery_session",
        vec![
            ("session", FieldValue::U64(checkpoint.id)),
            ("scenario", FieldValue::Str(checkpoint.scenario.clone())),
            ("phase", FieldValue::Str(checkpoint.phase.clone())),
            ("rounds", FieldValue::U64(checkpoint.rounds)),
            ("resumed", FieldValue::U64(u64::from(live))),
        ],
    );
    Ok(live)
}

/// The replay itself: rebuild the strategy exactly like `start_session`
/// would, step it `rounds` times, and verify the replayed state matches
/// the checkpoint bit-for-bit.
fn replay_session<'s>(
    state: &ServeState<'s>,
    tenant_id: TenantId,
    checkpoint: &SessionCheckpoint,
) -> Result<SearchSession<'s>, String> {
    let class =
        SweepClass::parse(&checkpoint.class).map_err(|e| format!("unknown input class: {e}"))?;
    let method = methods::build(&checkpoint.method).map_err(|e| format!("unknown method: {e}"))?;
    let mut scenarios = state.scenarios.lock().expect("scenario registry poisoned");
    let entry = scenarios
        .get_mut(&(tenant_id, checkpoint.scenario.clone()))
        .ok_or_else(|| format!("scenario `{}` was not recovered", checkpoint.scenario))?;
    let handle = match entry.handles.get(&class.label()) {
        Some(handle) => handle.clone(),
        None => {
            let handle = state.service.register(class.env(entry.workload.env()));
            entry.handles.insert(class.label(), handle.clone());
            handle
        }
    };
    drop(scenarios);
    let strategy = method
        .strategy(handle.env(), checkpoint.slo_ms)
        .map_err(|e| format!("cannot rebuild strategy: {e}"))?;
    let mut session = SearchSession::with_slo(strategy, handle, checkpoint.slo_ms);
    for round in 0..checkpoint.rounds {
        if session.step() == SessionState::Finished {
            return Err(format!(
                "replay finished after {} of {} checkpointed rounds",
                round + 1,
                checkpoint.rounds
            ));
        }
    }
    if *session.progress() != checkpoint.progress {
        return Err("replay diverged from the checkpointed progress".to_owned());
    }
    if session.convergence() != checkpoint.trace.as_slice() {
        return Err("replay diverged from the checkpointed convergence trace".to_owned());
    }
    if checkpoint.phase == "paused" {
        session.pause();
    }
    Ok(session)
}

/// [`apply_controls`] preceded by the shutdown sweep: once the daemon is
/// draining, a paused (or about-to-pause) session would park forever and
/// stall the drain, so any pending or applied pause is converted into a
/// cancellation. Run by the scheduler every round, which also closes the
/// race where a pause request lands after `/shutdown` swept the table or
/// while the session was out being stepped.
fn apply_controls_with_shutdown(slot: &mut Slot<'_>, shutting_down: bool) {
    if shutting_down && slot.phase.is_live() && (slot.want_pause || slot.phase == Phase::Paused) {
        slot.want_pause = false;
        slot.want_cancel = true;
    }
    apply_controls(slot);
}

/// Applies pending pause/resume/cancel requests to an idle slot.
fn apply_controls(slot: &mut Slot<'_>) {
    if !slot.phase.is_live() {
        return;
    }
    let Some(session) = slot.session.as_mut() else {
        return; // being stepped right now; re-applied next round
    };
    if slot.want_cancel {
        session.cancel();
        // Un-pause so the next step observes the cancellation and the
        // slot reaches its terminal phase.
        session.resume();
        slot.phase = Phase::Running;
    } else if slot.want_pause && slot.phase == Phase::Running {
        session.pause();
        slot.phase = Phase::Paused;
    } else if !slot.want_pause && slot.phase == Phase::Paused {
        session.resume();
        slot.phase = Phase::Running;
    }
}

/// Moves a finished session's outcome into its slot: the final report is
/// rendered once, as the exact bytes `aarc run --format json` would emit
/// for the same spec/method/SLO.
fn finalize_slot(slot: &mut Slot<'_>, session: SearchSession<'_>, telemetry: &ServeTelemetry) {
    let handle = session.handle().clone();
    slot.trace
        .extend_from_slice(&session.convergence()[slot.trace.len()..]);
    let outcome = session
        .into_outcome()
        .expect("finalize is only called on finished sessions");
    match outcome {
        Ok(outcome) => {
            let report = ConfigurationReport::new(
                handle.env(),
                &outcome.best_configs,
                &outcome.final_report,
                Some(slot.slo_ms),
            );
            let mut json =
                serde_json::to_string_pretty(&report).expect("report serialization is infallible");
            json.push('\n');
            slot.summary = Some(FinalSummary {
                final_cost: outcome.best_cost(),
                final_makespan_ms: outcome.best_runtime_ms(),
                meets_slo: outcome.final_report.meets_slo(slot.slo_ms),
                samples: outcome.trace.sample_count(),
            });
            slot.report_json = Some(json);
            slot.phase = Phase::Finished;
        }
        Err(AarcError::SearchCancelled) => {
            slot.error = Some(AarcError::SearchCancelled.to_string());
            slot.phase = Phase::Cancelled;
        }
        Err(e) => {
            slot.error = Some(e.to_string());
            slot.phase = Phase::Failed;
        }
    }
    let mut fields = vec![
        ("session", FieldValue::U64(slot.id)),
        ("scenario", FieldValue::Str(slot.scenario.clone())),
        ("state", FieldValue::Str(slot.phase.label().to_owned())),
        ("rounds", FieldValue::U64(slot.progress.rounds)),
        ("evals", FieldValue::U64(slot.progress.evals)),
    ];
    if let Some(summary) = &slot.summary {
        fields.push(("final_cost", FieldValue::F64(summary.final_cost)));
        fields.push((
            "final_makespan_ms",
            FieldValue::F64(summary.final_makespan_ms),
        ));
    }
    if let Some(error) = &slot.error {
        fields.push(("error", FieldValue::Str(error.clone())));
    }
    telemetry.flight.record("session_finished", fields.clone());
    let level = if slot.phase == Phase::Failed {
        LogLevel::Warn
    } else {
        LogLevel::Info
    };
    telemetry.logger.log(level, "session_finished", &fields);
}

/// Serves one connection: read a request, route it, write the response.
/// Each request is timed into `aarc_http_request_seconds`, appended to the
/// flight recorder and logged as one structured line.
fn handle_connection(state: &ServeState<'_>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let started = Instant::now();
    let (response, method, path) = match read_request(&mut stream) {
        Ok(None) => return,
        Err(e) => (
            problem(Kind::BadRequest, e.to_string(), "-"),
            "-".to_owned(),
            "-".to_owned(),
        ),
        Ok(Some(request)) => {
            let method = request.method.clone();
            let path = request.path.clone();
            (route(state, &request), method, path)
        }
    };
    let status = response.status;
    let _ = response.write_to(&mut stream);
    let duration_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    let telemetry = state.telemetry;
    telemetry.http_seconds.record_ns(duration_ns);
    let fields = vec![
        ("method", FieldValue::Str(method)),
        ("path", FieldValue::Str(path)),
        ("status", FieldValue::U64(u64::from(status))),
        ("duration_us", FieldValue::U64(duration_ns / 1_000)),
    ];
    telemetry.flight.record("http_request", fields.clone());
    let level = if status >= 500 {
        LogLevel::Warn
    } else {
        LogLevel::Info
    };
    telemetry.logger.log(level, "http_request", &fields);
}

// ---------------------------------------------------------------------------
// Routing and endpoint handlers
// ---------------------------------------------------------------------------

/// Dispatches one request: `/api/v1/...` is the canonical surface; every
/// bare legacy path remains an alias answering with `Deprecation: true`.
fn route(state: &ServeState<'_>, request: &Request) -> Response {
    match request.path.strip_prefix("/api/v1") {
        Some(rest) if rest.is_empty() || rest.starts_with('/') => {
            route_core(state, request, rest, true)
        }
        _ => route_core(state, request, &request.path, false)
            .with_header("Deprecation", "true".to_owned()),
    }
}

/// Routes one request whose path has already had the version prefix
/// stripped. `v1` marks the canonical surface (it alone serves the
/// discovery document at its root).
fn route_core(state: &ServeState<'_>, request: &Request, path: &str, v1: bool) -> Response {
    let instance = request.path.as_str();
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", []) if v1 => discovery(),
        ("GET", ["healthz"]) => Response::json(200, "{\"status\": \"ok\"}\n".to_owned()),
        ("GET", ["metrics"]) => Response::text(200, render_metrics(state)),
        ("GET", ["version"]) => json_response(200, &VersionInfo::current()),
        ("GET", ["debug", "events"]) => debug_events(state, request, instance),
        ("GET", ["recovery"]) => recovery_status(state),
        ("POST", ["shutdown"]) => request_shutdown(state),
        (_, ["scenarios" | "sessions", ..]) => route_tenant(state, request, &segments, instance),
        (_, ["healthz" | "metrics" | "version" | "shutdown" | "recovery"] | ["debug", ..]) => {
            problem(
                Kind::MethodNotAllowed,
                format!("method {} not allowed here", request.method),
                instance,
            )
        }
        _ => problem(
            Kind::NotFound,
            format!("no such endpoint `{instance}`"),
            instance,
        ),
    }
}

/// The tenant-scoped surface (scenarios and sessions): resolves the
/// `X-Api-Key` header to a tenant, meters the request through the
/// tenant's token bucket, then dispatches. Operator endpoints (healthz,
/// metrics, version, debug, shutdown, discovery) bypass this entirely.
fn route_tenant(
    state: &ServeState<'_>,
    request: &Request,
    segments: &[&str],
    instance: &str,
) -> Response {
    let tenant_id = match state.tenants.resolve(request.header("x-api-key")) {
        Ok(id) => id,
        Err(e) => return problem(Kind::Unauthorized, e.detail(), instance),
    };
    let tenant = state.tenants.tenant(tenant_id);
    state.count_tenant_request(&tenant.name);
    if let Err(retry_after) = tenant.admit_request(Instant::now()) {
        state.count_rejection(&tenant.name, "rate");
        return Problem::new(
            Kind::RateLimited,
            format!(
                "tenant `{}` exceeded its rate limit of {} requests/sec",
                tenant.name, tenant.quotas.requests_per_sec
            ),
        )
        .retry_after(retry_after)
        .response(instance);
    }
    // Tenant state (registries, session table) is still being rebuilt
    // during startup recovery; serving it would show a half-recovered
    // world. Operator endpoints never reach this gate.
    if state.recovering() {
        state.count_rejection(&tenant.name, "recovering");
        return Problem::new(
            Kind::Recovering,
            "daemon is replaying durable state after a restart; retry shortly",
        )
        .retry_after(1)
        .response(instance);
    }
    match (request.method.as_str(), segments) {
        ("GET", ["scenarios"]) => list_scenarios(state, tenant_id, request, instance),
        ("POST", ["scenarios"]) => upload_scenario(state, tenant_id, &request.body, instance),
        ("POST", ["scenarios", "validate"]) => validate_scenario(&request.body, instance),
        ("DELETE", ["scenarios", name]) => delete_scenario(state, tenant_id, name, instance),
        ("GET", ["sessions"]) => list_sessions(state, tenant_id, request, instance),
        ("POST", ["sessions"]) => start_session(state, tenant_id, &request.body, instance),
        ("GET", ["sessions", id]) => with_session_id(id, instance, |id| {
            session_status(state, tenant_id, id, instance)
        }),
        ("GET", ["sessions", id, "report"]) => with_session_id(id, instance, |id| {
            session_report(state, tenant_id, id, instance)
        }),
        ("GET", ["sessions", id, "trace"]) => with_session_id(id, instance, |id| {
            session_trace(state, tenant_id, id, instance)
        }),
        ("POST", ["sessions", id, action @ ("pause" | "resume" | "cancel")]) => {
            with_session_id(id, instance, |id| {
                control_session(state, tenant_id, id, action, instance)
            })
        }
        _ => problem(
            Kind::MethodNotAllowed,
            format!("method {} not allowed here", request.method),
            instance,
        ),
    }
}

/// `GET /api/v1`: the discovery document — supported versions and the
/// route table, so clients can probe capabilities instead of hardcoding.
fn discovery() -> Response {
    let routes: [(&str, &str, &str); 19] = [
        ("GET", "/api/v1", "This discovery document."),
        ("GET", "/api/v1/healthz", "Liveness probe."),
        ("GET", "/api/v1/metrics", "Prometheus text exposition."),
        ("GET", "/api/v1/version", "Build provenance."),
        (
            "GET",
            "/api/v1/recovery",
            "Startup recovery status and damage report.",
        ),
        (
            "GET",
            "/api/v1/debug/events?limit=N",
            "Flight-recorder tail (most recent events).",
        ),
        (
            "GET",
            "/api/v1/scenarios?limit=&offset=&name=",
            "List the tenant's scenarios (paginated envelope).",
        ),
        (
            "POST",
            "/api/v1/scenarios",
            "Upload a scenario spec (YAML or JSON body).",
        ),
        (
            "POST",
            "/api/v1/scenarios/validate",
            "Validate a spec without admitting it.",
        ),
        (
            "DELETE",
            "/api/v1/scenarios/{name}",
            "Delete a scenario with no live sessions.",
        ),
        (
            "GET",
            "/api/v1/sessions?limit=&offset=&status=&scenario=",
            "List the tenant's sessions (paginated envelope).",
        ),
        ("POST", "/api/v1/sessions", "Start a search session."),
        ("GET", "/api/v1/sessions/{id}", "Session status."),
        (
            "GET",
            "/api/v1/sessions/{id}/report",
            "Final report, byte-identical to the offline run.",
        ),
        (
            "GET",
            "/api/v1/sessions/{id}/trace",
            "Per-round convergence trace.",
        ),
        (
            "POST",
            "/api/v1/sessions/{id}/pause",
            "Pause between steps.",
        ),
        (
            "POST",
            "/api/v1/sessions/{id}/resume",
            "Resume a paused session.",
        ),
        (
            "POST",
            "/api/v1/sessions/{id}/cancel",
            "Cancel the session.",
        ),
        (
            "POST",
            "/api/v1/shutdown",
            "Stop admission, drain sessions, exit.",
        ),
    ];
    let doc = Value::Map(vec![
        ("api".to_owned(), Value::Str("aarc".to_owned())),
        (
            "versions".to_owned(),
            Value::Seq(vec![Value::Str("v1".to_owned())]),
        ),
        (
            "deprecated_aliases".to_owned(),
            Value::Str(
                "every route is also mounted at its bare legacy path and answers \
                 with a `Deprecation: true` header there"
                    .to_owned(),
            ),
        ),
        (
            "routes".to_owned(),
            Value::Seq(
                routes
                    .iter()
                    .map(|(method, path, summary)| {
                        Value::Map(vec![
                            ("method".to_owned(), Value::Str((*method).to_owned())),
                            ("path".to_owned(), Value::Str((*path).to_owned())),
                            ("summary".to_owned(), Value::Str((*summary).to_owned())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    json_response(200, &doc)
}

fn with_session_id(raw: &str, instance: &str, f: impl FnOnce(u64) -> Response) -> Response {
    match raw.parse::<u64>() {
        Ok(id) => f(id),
        Err(_) => problem(
            Kind::BadRequest,
            format!("session id `{raw}` is not a number"),
            instance,
        ),
    }
}

// ---------------------------------------------------------------------------
// Pagination
// ---------------------------------------------------------------------------

/// A parsed, bounded `limit`/`offset` pair.
struct Page {
    limit: usize,
    offset: usize,
}

/// Parses `limit`/`offset` query parameters. `limit` defaults to
/// [`DEFAULT_PAGE_LIMIT`] and is clamped into `[1, MAX_PAGE_LIMIT]`;
/// `offset` defaults to 0. Non-numeric values are a 400 problem.
fn parse_page(request: &Request, instance: &str) -> Result<Page, Response> {
    let limit = match request.query_param("limit") {
        None => DEFAULT_PAGE_LIMIT,
        Some(raw) => match raw.parse::<usize>() {
            Ok(value) => value.clamp(1, MAX_PAGE_LIMIT),
            Err(_) => {
                return Err(problem(
                    Kind::BadRequest,
                    format!("limit `{raw}` is not a non-negative integer"),
                    instance,
                ))
            }
        },
    };
    let offset = match request.query_param("offset") {
        None => 0,
        Some(raw) => match raw.parse::<usize>() {
            Ok(value) => value,
            Err(_) => {
                return Err(problem(
                    Kind::BadRequest,
                    format!("offset `{raw}` is not a non-negative integer"),
                    instance,
                ))
            }
        },
    };
    Ok(Page { limit, offset })
}

/// Renders the `{items, total, next_offset}` pagination envelope over the
/// filtered row set. `next_offset` is `null` on the last page (including
/// an offset past the end). Ordering is the caller's: scenario listings
/// come name-sorted, session listings id-sorted, both deterministic.
fn page_envelope<T: Serialize>(rows: &[T], page: &Page) -> Response {
    let total = rows.len();
    let items: Vec<Value> = rows
        .iter()
        .skip(page.offset)
        .take(page.limit)
        .map(serde_json::to_value)
        .collect();
    let next_offset = if page.offset + items.len() < total {
        Value::UInt((page.offset + items.len()) as u64)
    } else {
        Value::Null
    };
    let doc = Value::Map(vec![
        ("items".to_owned(), Value::Seq(items)),
        ("total".to_owned(), Value::UInt(total as u64)),
        ("next_offset".to_owned(), next_offset),
    ]);
    json_response(200, &doc)
}

// ---------------------------------------------------------------------------
// Scenario endpoints
// ---------------------------------------------------------------------------

/// Row of the `GET /scenarios` listing.
#[derive(Debug, Serialize)]
struct ScenarioSummary {
    name: String,
    functions: usize,
    edges: usize,
    slo_ms: f64,
}

/// `GET /scenarios?limit=&offset=&name=`: the tenant's scenarios in name
/// order, optionally filtered by a `name` substring, paginated.
fn list_scenarios(
    state: &ServeState<'_>,
    tenant_id: TenantId,
    request: &Request,
    instance: &str,
) -> Response {
    let page = match parse_page(request, instance) {
        Ok(page) => page,
        Err(response) => return response,
    };
    let filter = request.query_param("name");
    let scenarios = state.scenarios.lock().expect("scenario registry poisoned");
    let rows: Vec<ScenarioSummary> = scenarios
        .iter()
        .filter(|((tenant, _), _)| *tenant == tenant_id)
        .filter(|((_, name), _)| filter.is_none_or(|f| name.contains(f)))
        .map(|((_, name), e)| ScenarioSummary {
            name: name.clone(),
            functions: e.functions,
            edges: e.edges,
            slo_ms: e.slo_ms,
        })
        .collect();
    page_envelope(&rows, &page)
}

#[derive(Debug, Serialize)]
struct UploadReply {
    name: String,
    functions: usize,
    edges: usize,
    slo_ms: f64,
}

/// `POST /scenarios`: parse the body in memory (YAML or JSON, sniffed),
/// validate, compile, and admit the scenario into the tenant's namespace,
/// subject to the tenant's scenario quota.
fn upload_scenario(
    state: &ServeState<'_>,
    tenant_id: TenantId,
    body: &[u8],
    instance: &str,
) -> Response {
    let tenant = state.tenants.tenant(tenant_id);
    if state.shutting_down() {
        state.count_rejection(&tenant.name, "shutdown");
        return Problem::new(Kind::ShuttingDown, "daemon is shutting down")
            .retry_after(1)
            .response(instance);
    }
    let (spec, workload) = match parse_and_compile(body) {
        Ok(pair) => pair,
        Err((kind, message)) => return problem(kind, message, instance),
    };
    let name = workload.name().to_owned();
    // Names become URL path segments, JSON string values and Prometheus
    // label values; restrict them to a safe alphabet up front so every
    // later rendering is trivially well-formed.
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
    {
        return problem(
            Kind::ValidationFailed,
            format!(
                "scenario name `{name}` must be non-empty and use only [A-Za-z0-9._-] \
                 (it becomes a URL path segment and a metrics label)"
            ),
            instance,
        );
    }
    let mut scenarios = state.scenarios.lock().expect("scenario registry poisoned");
    // The duplicate check comes before the quota check: re-uploading an
    // existing name is a 409 conflict even for a tenant at quota (it
    // would not increase the count).
    if scenarios.contains_key(&(tenant_id, name.clone())) {
        return problem(
            Kind::Conflict,
            format!("scenario `{name}` already exists (delete it first)"),
            instance,
        );
    }
    let owned = scenarios
        .keys()
        .filter(|(tenant, _)| *tenant == tenant_id)
        .count() as u64;
    if owned >= tenant.quotas.max_scenarios {
        state.count_rejection(&tenant.name, "quota");
        return problem(
            Kind::QuotaExceeded,
            format!(
                "tenant `{}` is at its scenario quota ({owned}/{}); delete one first",
                tenant.name, tenant.quotas.max_scenarios
            ),
            instance,
        );
    }
    // Write-ahead: the upload is durable before the 201 leaves the
    // daemon. A failed append fails the request — never acknowledge
    // state that would not survive a crash.
    if let Some(persist) = &state.persist {
        let record = WalRecord {
            v: STATE_VERSION,
            op: "upload".to_owned(),
            tenant: tenant.name.clone(),
            scenario: name.clone(),
            // The canonical YAML re-export (not the raw body): recovery
            // re-compiles exactly what this daemon admitted.
            spec_yaml: Some(aarc_spec::to_string(&spec, aarc_spec::SpecFormat::Yaml)),
        };
        if let Err(e) = persist.append_wal(&record) {
            state.count_rejection(&tenant.name, "storage");
            return problem(
                Kind::StorageFailed,
                format!("write-ahead log append failed: {e}"),
                instance,
            );
        }
    }
    let reply = UploadReply {
        name: name.clone(),
        functions: spec.functions.len(),
        edges: spec.edges.len(),
        slo_ms: workload.slo_ms(),
    };
    scenarios.insert(
        (tenant_id, name),
        ScenarioEntry {
            functions: spec.functions.len(),
            edges: spec.edges.len(),
            slo_ms: workload.slo_ms(),
            workload,
            handles: BTreeMap::new(),
        },
    );
    let fields = vec![
        ("scenario", FieldValue::Str(reply.name.clone())),
        ("tenant", FieldValue::Str(tenant.name.clone())),
        ("functions", FieldValue::U64(reply.functions as u64)),
        ("edges", FieldValue::U64(reply.edges as u64)),
        ("slo_ms", FieldValue::F64(reply.slo_ms)),
    ];
    state
        .telemetry
        .flight
        .record("scenario_registered", fields.clone());
    state.telemetry.logger.info("scenario_registered", &fields);
    json_response(201, &reply)
}

#[derive(Debug, Serialize)]
struct ValidateReply {
    valid: bool,
    name: String,
    functions: usize,
    edges: usize,
    slo_ms: f64,
}

/// `POST /scenarios/validate`: parse + validate + compile without
/// admitting anything.
fn validate_scenario(body: &[u8], instance: &str) -> Response {
    match parse_and_compile(body) {
        Ok((spec, workload)) => json_response(
            200,
            &ValidateReply {
                valid: true,
                name: workload.name().to_owned(),
                functions: spec.functions.len(),
                edges: spec.edges.len(),
                slo_ms: workload.slo_ms(),
            },
        ),
        Err((kind, message)) => problem(kind, message, instance),
    }
}

/// The shared upload/validate pipeline: bytes → spec → semantic
/// validation → compiled workload. All in memory. An unparseable body is
/// a 400 ([`Kind::BadRequest`]); a body that parsed but failed semantic
/// validation or compilation is a 422 ([`Kind::ValidationFailed`]).
fn parse_and_compile(body: &[u8]) -> Result<(ScenarioSpec, Workload), (Kind, String)> {
    let spec = ScenarioSpec::from_slice(body).map_err(|e| (Kind::BadRequest, e.to_string()))?;
    validate(&spec).map_err(|e| (Kind::ValidationFailed, e.to_string()))?;
    let workload = aarc_spec::compile(&spec)
        .map_err(|e| (Kind::ValidationFailed, e.to_string()))?
        .into_workload();
    Ok((spec, workload))
}

/// `DELETE /scenarios/{name}`: refuse while the tenant has live sessions
/// on the scenario; otherwise drop it from the tenant's namespace. A
/// fingerprint is only unregistered from the service (purging its cache
/// entries) when no other entry — of any tenant — still references it:
/// the memo-cache is shared substrate below the namespaces.
fn delete_scenario(
    state: &ServeState<'_>,
    tenant_id: TenantId,
    name: &str,
    instance: &str,
) -> Response {
    let mut scenarios = state.scenarios.lock().expect("scenario registry poisoned");
    let key = (tenant_id, name.to_owned());
    if !scenarios.contains_key(&key) {
        return problem(
            Kind::NotFound,
            format!("no scenario named `{name}`"),
            instance,
        );
    }
    {
        let sessions = state.sessions.lock().expect("session table poisoned");
        let live = sessions
            .values()
            .filter(|s| s.tenant == tenant_id && s.scenario == name && s.phase.is_live())
            .count();
        if live > 0 {
            return problem(
                Kind::Conflict,
                format!("scenario `{name}` has {live} live session(s); cancel them first"),
                instance,
            );
        }
    }
    // Write-ahead: the delete is durable before the 200, mirroring
    // upload — a recovered daemon must never resurrect a deleted
    // scenario.
    if let Some(persist) = &state.persist {
        let record = WalRecord {
            v: STATE_VERSION,
            op: "delete".to_owned(),
            tenant: state.tenants.tenant(tenant_id).name.clone(),
            scenario: name.to_owned(),
            spec_yaml: None,
        };
        if let Err(e) = persist.append_wal(&record) {
            state.count_rejection(&state.tenants.tenant(tenant_id).name, "storage");
            return problem(
                Kind::StorageFailed,
                format!("write-ahead log append failed: {e}"),
                instance,
            );
        }
    }
    let entry = scenarios.remove(&key).expect("checked above");
    for handle in entry.handles.values() {
        let fingerprint = handle.fingerprint();
        let still_referenced = scenarios
            .values()
            .any(|e| e.handles.values().any(|h| h.fingerprint() == fingerprint));
        if !still_referenced {
            state.service.unregister(fingerprint);
        }
    }
    let fields = vec![
        ("scenario", FieldValue::Str(name.to_owned())),
        (
            "tenant",
            FieldValue::Str(state.tenants.tenant(tenant_id).name.clone()),
        ),
        ("classes", FieldValue::U64(entry.handles.len() as u64)),
    ];
    state
        .telemetry
        .flight
        .record("scenario_deleted", fields.clone());
    state.telemetry.logger.info("scenario_deleted", &fields);
    #[derive(Serialize)]
    struct DeleteReply {
        deleted: String,
    }
    json_response(
        200,
        &DeleteReply {
            deleted: name.to_owned(),
        },
    )
}

// ---------------------------------------------------------------------------
// Session endpoints
// ---------------------------------------------------------------------------

/// Body of `POST /sessions`.
#[derive(Debug, Deserialize)]
struct StartSessionBody {
    /// Name of an uploaded scenario.
    scenario: String,
    /// Method name (`aarc`, `bo`, `maff`, `random`); `aarc` when omitted.
    method: Option<String>,
    /// Input class (`nominal`, `light`, `middle`, `heavy`); `nominal`
    /// when omitted.
    class: Option<String>,
    /// SLO override, ms; the scenario's own SLO when omitted.
    slo_ms: Option<f64>,
    /// Admit the session directly into the paused phase (it still counts
    /// against live-session quotas). `POST .../resume` starts it. Used by
    /// `aarc loadtest --hold` to pin concurrency without racing the
    /// scheduler.
    paused: Option<bool>,
}

#[derive(Debug, Serialize)]
struct StartSessionReply {
    id: u64,
    scenario: String,
    method: String,
    class: String,
    slo_ms: f64,
    state: String,
}

/// `POST /sessions`: bind a strategy to the scenario's class environment
/// and hand the session to the scheduler. The class environment is
/// compiled and registered once per (tenant, scenario, class) — further
/// sessions clone the cached handle (an `Arc` bump). Admission is decided
/// under the session-table lock, so concurrent starts can never overshoot
/// a tenant's live-session quota or the global watermark: the tenant
/// quota answers `429`, the global watermark `503`, both with
/// `Retry-After` — never unbounded queuing.
fn start_session(
    state: &ServeState<'_>,
    tenant_id: TenantId,
    body: &[u8],
    instance: &str,
) -> Response {
    let tenant = state.tenants.tenant(tenant_id);
    if state.shutting_down() {
        state.count_rejection(&tenant.name, "shutdown");
        return Problem::new(Kind::ShuttingDown, "daemon is shutting down")
            .retry_after(1)
            .response(instance);
    }
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => return problem(Kind::BadRequest, "body is not valid utf-8", instance),
    };
    let body: StartSessionBody = match serde_json::from_str(text) {
        Ok(body) => body,
        Err(e) => {
            return problem(
                Kind::BadRequest,
                format!("invalid session request: {e}"),
                instance,
            )
        }
    };
    let class = match SweepClass::parse(body.class.as_deref().unwrap_or("nominal")) {
        Ok(class) => class,
        Err(message) => return problem(Kind::ValidationFailed, message, instance),
    };
    let method_name = body.method.as_deref().unwrap_or("aarc").to_owned();
    let method = match methods::build(&method_name) {
        Ok(method) => method,
        Err(message) => return problem(Kind::ValidationFailed, message, instance),
    };

    let mut scenarios = state.scenarios.lock().expect("scenario registry poisoned");
    let Some(entry) = scenarios.get_mut(&(tenant_id, body.scenario.clone())) else {
        return problem(
            Kind::NotFound,
            format!("no scenario named `{}`", body.scenario),
            instance,
        );
    };
    let slo_ms = body.slo_ms.unwrap_or(entry.slo_ms);
    let handle = match entry.handles.get(&class.label()) {
        Some(handle) => handle.clone(),
        None => {
            let handle = state.service.register(class.env(entry.workload.env()));
            entry.handles.insert(class.label(), handle.clone());
            handle
        }
    };
    let strategy = match method.strategy(handle.env(), slo_ms) {
        Ok(strategy) => strategy,
        Err(e) => {
            return problem(
                Kind::ValidationFailed,
                format!("cannot start search: {e}"),
                instance,
            )
        }
    };
    let mut session = SearchSession::with_slo(strategy, handle, slo_ms);
    let start_paused = body.paused.unwrap_or(false);
    if start_paused {
        session.pause();
    }

    let mut sessions = state.sessions.lock().expect("session table poisoned");
    let tenant_live = sessions
        .values()
        .filter(|s| s.tenant == tenant_id && s.phase.is_live())
        .count() as u64;
    if tenant_live >= tenant.quotas.max_live_sessions {
        state.count_rejection(&tenant.name, "quota");
        return Problem::new(
            Kind::QuotaExceeded,
            format!(
                "tenant `{}` is at its live-session quota ({tenant_live}/{})",
                tenant.name, tenant.quotas.max_live_sessions
            ),
        )
        .retry_after(1)
        .response(instance);
    }
    let live = sessions.values().filter(|s| s.phase.is_live()).count();
    if live >= state.max_live_sessions {
        state.count_rejection(&tenant.name, "saturated");
        return Problem::new(
            Kind::Saturated,
            format!(
                "daemon is at its global live-session watermark ({live}/{})",
                state.max_live_sessions
            ),
        )
        .retry_after(1)
        .response(instance);
    }
    let id = state.next_session_id.fetch_add(1, Ordering::SeqCst);
    let slot = Slot {
        id,
        tenant: tenant_id,
        scenario: body.scenario.clone(),
        method: method_name,
        class: class.label(),
        slo_ms,
        session: Some(session),
        phase: if start_paused {
            Phase::Paused
        } else {
            Phase::Running
        },
        want_pause: start_paused,
        want_cancel: false,
        progress: SessionProgress::default(),
        trace: Vec::new(),
        report_json: None,
        summary: None,
        error: None,
    };
    let reply = StartSessionReply {
        id,
        scenario: slot.scenario.clone(),
        method: slot.method.clone(),
        class: slot.class.clone(),
        slo_ms,
        state: slot.phase.label().to_owned(),
    };
    sessions.insert(id, slot);
    drop(sessions);
    drop(scenarios);
    let fields = vec![
        ("session", FieldValue::U64(id)),
        ("tenant", FieldValue::Str(tenant.name.clone())),
        ("scenario", FieldValue::Str(reply.scenario.clone())),
        ("method", FieldValue::Str(reply.method.clone())),
        ("class", FieldValue::Str(reply.class.clone())),
        ("slo_ms", FieldValue::F64(slo_ms)),
    ];
    state
        .telemetry
        .flight
        .record("session_started", fields.clone());
    state.telemetry.logger.info("session_started", &fields);
    json_response(201, &reply)
}

/// The status document of one session (`GET /sessions/{id}` and the rows
/// of `GET /sessions`).
#[derive(Debug, Serialize)]
struct SessionStatus {
    id: u64,
    scenario: String,
    method: String,
    class: String,
    slo_ms: f64,
    state: String,
    rounds: u64,
    evals: u64,
    incumbent: Option<aarc_core::Incumbent>,
    summary: Option<FinalSummary>,
    error: Option<String>,
}

impl SessionStatus {
    fn of(slot: &Slot<'_>) -> Self {
        SessionStatus {
            id: slot.id,
            scenario: slot.scenario.clone(),
            method: slot.method.clone(),
            class: slot.class.clone(),
            slo_ms: slot.slo_ms,
            state: slot.phase.label().to_owned(),
            rounds: slot.progress.rounds,
            evals: slot.progress.evals,
            incumbent: slot.progress.incumbent.clone(),
            summary: slot.summary.clone(),
            error: slot.error.clone(),
        }
    }
}

/// `GET /sessions?limit=&offset=&status=&scenario=`: the tenant's
/// sessions in id order, filterable by phase label and scenario name
/// (`name=` is accepted as an alias of `scenario=`), paginated.
fn list_sessions(
    state: &ServeState<'_>,
    tenant_id: TenantId,
    request: &Request,
    instance: &str,
) -> Response {
    let page = match parse_page(request, instance) {
        Ok(page) => page,
        Err(response) => return response,
    };
    let status = match request.query_param("status") {
        None => None,
        Some(raw) => {
            if !PHASE_LABELS.contains(&raw) {
                return problem(
                    Kind::BadRequest,
                    format!(
                        "unknown status filter `{raw}` (expected one of {})",
                        PHASE_LABELS.join("|")
                    ),
                    instance,
                );
            }
            Some(raw)
        }
    };
    let scenario = request
        .query_param("scenario")
        .or_else(|| request.query_param("name"));
    let sessions = state.sessions.lock().expect("session table poisoned");
    let rows: Vec<SessionStatus> = sessions
        .values()
        .filter(|s| s.tenant == tenant_id)
        .filter(|s| status.is_none_or(|wanted| s.phase.label() == wanted))
        .filter(|s| scenario.is_none_or(|wanted| s.scenario == wanted))
        .map(SessionStatus::of)
        .collect();
    page_envelope(&rows, &page)
}

fn session_status(
    state: &ServeState<'_>,
    tenant_id: TenantId,
    id: u64,
    instance: &str,
) -> Response {
    let sessions = state.sessions.lock().expect("session table poisoned");
    match sessions.get(&id).filter(|s| s.tenant == tenant_id) {
        Some(slot) => json_response(200, &SessionStatus::of(slot)),
        None => problem(Kind::NotFound, format!("no session {id}"), instance),
    }
}

/// `GET /sessions/{id}/report`: the stored final report, byte-identical
/// to `aarc run --format json` for the same spec/method/SLO.
fn session_report(
    state: &ServeState<'_>,
    tenant_id: TenantId,
    id: u64,
    instance: &str,
) -> Response {
    let sessions = state.sessions.lock().expect("session table poisoned");
    let Some(slot) = sessions.get(&id).filter(|s| s.tenant == tenant_id) else {
        return problem(Kind::NotFound, format!("no session {id}"), instance);
    };
    match slot.phase {
        Phase::Finished => Response::json(
            200,
            slot.report_json
                .clone()
                .expect("finished sessions store their report"),
        ),
        Phase::Failed => problem(
            Kind::Conflict,
            format!(
                "session {id} failed: {}",
                slot.error.as_deref().unwrap_or("unknown error")
            ),
            instance,
        ),
        Phase::Cancelled => problem(
            Kind::Conflict,
            format!("session {id} was cancelled"),
            instance,
        ),
        Phase::Running | Phase::Paused => problem(
            Kind::Conflict,
            format!("session {id} is still {}", slot.phase.label()),
            instance,
        ),
    }
}

/// Reply of `GET /sessions/{id}/trace`: the per-round convergence trace,
/// one point per completed ask/evaluate/tell round. Available while the
/// session runs (plot search progress live) and after it finished.
#[derive(Debug, Serialize)]
struct TraceReply {
    id: u64,
    scenario: String,
    method: String,
    class: String,
    state: String,
    rounds: Vec<RoundPoint>,
}

/// `GET /sessions/{id}/trace`.
fn session_trace(state: &ServeState<'_>, tenant_id: TenantId, id: u64, instance: &str) -> Response {
    let sessions = state.sessions.lock().expect("session table poisoned");
    let Some(slot) = sessions.get(&id).filter(|s| s.tenant == tenant_id) else {
        return problem(Kind::NotFound, format!("no session {id}"), instance);
    };
    json_response(
        200,
        &TraceReply {
            id: slot.id,
            scenario: slot.scenario.clone(),
            method: slot.method.clone(),
            class: slot.class.clone(),
            state: slot.phase.label().to_owned(),
            rounds: slot.trace.clone(),
        },
    )
}

/// `GET /debug/events?limit=N`: the flight recorder's tail (most recent
/// events, oldest first). `limit` defaults to 64 and is capped at the
/// ring's capacity.
fn debug_events(state: &ServeState<'_>, request: &Request, instance: &str) -> Response {
    let limit = match request.query_param("limit") {
        None => DEFAULT_EVENT_LIMIT,
        Some(raw) => match raw.parse::<usize>() {
            Ok(limit) => limit.min(FLIGHT_CAPACITY),
            Err(_) => {
                return problem(
                    Kind::BadRequest,
                    format!("limit `{raw}` is not a non-negative integer"),
                    instance,
                )
            }
        },
    };
    let flight = &state.telemetry.flight;
    let events = flight.tail(limit);
    let body = format!(
        "{{\"total\":{},\"capacity\":{},\"events\":{}}}\n",
        flight.total_recorded(),
        flight.capacity(),
        events_json(&events)
    );
    Response::json(200, body)
}

/// `POST /sessions/{id}/pause|resume|cancel`: record the request; the
/// scheduler applies it between steps.
fn control_session(
    state: &ServeState<'_>,
    tenant_id: TenantId,
    id: u64,
    action: &str,
    instance: &str,
) -> Response {
    let mut sessions = state.sessions.lock().expect("session table poisoned");
    let Some(slot) = sessions.get_mut(&id).filter(|s| s.tenant == tenant_id) else {
        return problem(Kind::NotFound, format!("no session {id}"), instance);
    };
    if !slot.phase.is_live() {
        return problem(
            Kind::Conflict,
            format!("session {id} already {}", slot.phase.label()),
            instance,
        );
    }
    match action {
        // A pause during shutdown would park the session and stall the
        // drain forever (the scheduler would force-cancel it anyway).
        "pause" if state.shutting_down() => {
            return Problem::new(
                Kind::ShuttingDown,
                "daemon is shutting down; pause is not accepted",
            )
            .retry_after(1)
            .response(instance)
        }
        "pause" => slot.want_pause = true,
        "resume" => slot.want_pause = false,
        "cancel" => slot.want_cancel = true,
        _ => unreachable!("router only passes pause/resume/cancel"),
    }
    apply_controls(slot);
    json_response(200, &SessionStatus::of(slot))
}

/// `GET /recovery`: whether this daemon persists state at all, whether
/// startup recovery is still running, and — once it finished — what it
/// recovered and what it had to quarantine.
fn recovery_status(state: &ServeState<'_>) -> Response {
    #[derive(Serialize)]
    struct RecoveryStatusDoc {
        enabled: bool,
        state_dir: Option<String>,
        in_progress: bool,
        report: Option<RecoveryReport>,
    }
    let report = state
        .recovery
        .lock()
        .expect("recovery report poisoned")
        .clone();
    json_response(
        200,
        &RecoveryStatusDoc {
            enabled: state.persist.is_some(),
            state_dir: state
                .persist
                .as_ref()
                .map(|p| p.root().display().to_string()),
            in_progress: state.recovering(),
            report,
        },
    )
}

/// `POST /shutdown`: stop admission, cancel paused sessions (they would
/// otherwise never drain) and let running ones finish; the process exits
/// 0 once the last session reaches a terminal phase. Idempotent: a
/// repeated call (a supervisor retrying, two supervisors racing) answers
/// 200 with the remaining drain count, never an error. With `--state-dir`
/// every live session's checkpoint is flushed here, so even a SIGKILL
/// that lands mid-drain loses at most the rounds since this call.
fn request_shutdown(state: &ServeState<'_>) -> Response {
    state.shutdown.store(true, Ordering::SeqCst);
    let mut sessions = state.sessions.lock().expect("session table poisoned");
    for slot in sessions.values_mut() {
        if slot.phase == Phase::Paused || (slot.phase.is_live() && slot.want_pause) {
            slot.want_pause = false;
            slot.want_cancel = true;
            apply_controls(slot);
        }
    }
    let draining = sessions.values().filter(|s| s.phase.is_live()).count();
    let checkpoints: Vec<SessionCheckpoint> = if state.persist.is_some() {
        sessions
            .values()
            .filter(|s| s.phase.is_live())
            .map(|s| checkpoint_of(state, s))
            .collect()
    } else {
        Vec::new()
    };
    drop(sessions);
    for checkpoint in &checkpoints {
        write_checkpoint(state, checkpoint);
    }
    Response::json(200, format!("{{\"draining\": {draining}}}\n"))
}

fn json_response<T: Serialize>(status: u16, value: &T) -> Response {
    let mut body = serde_json::to_string_pretty(value).expect("API replies serialize");
    body.push('\n');
    Response::json(status, body)
}

// ---------------------------------------------------------------------------
// /metrics
// ---------------------------------------------------------------------------

/// Escapes a Prometheus label value (`\` → `\\`, `"` → `\"`, newline →
/// `\n`, per the text exposition format).
fn metric_label(raw: &str) -> String {
    aarc_telemetry::prom::escape_label_value(raw)
}

/// Writes one `# HELP`/`# TYPE` header pair for a daemon-rendered family.
fn family_header(out: &mut String, name: &str, kind: &str, help: &str) {
    use std::fmt::Write;
    let _ = writeln!(
        out,
        "# HELP {name} {}\n# TYPE {name} {kind}",
        aarc_telemetry::prom::escape_help(help)
    );
}

/// Renders the Prometheus text exposition: eval-service counters from
/// [`EvalService::stats_snapshot`] (including the new inflight saturation
/// signals), per-tenant registry/eval/admission families, per-session
/// progress gauges (labelled with their tenant), build provenance, and
/// every instrument of the shared telemetry [`Recorder`] — latency
/// histograms, kernel counters, and the per-tenant request/rejection
/// counter families. Every family carries `# HELP`/`# TYPE` headers and
/// keeps its samples consecutive, as the exposition format requires.
fn render_metrics(state: &ServeState<'_>) -> String {
    use std::fmt::Write;
    let snapshot = state.service.stats_snapshot();
    // Per-tenant registry views, computed under the scenarios lock and
    // rendered after it is dropped (lock order: scenarios before
    // sessions, matching every other handler).
    let tenant_count = state.tenants.all().len();
    let mut tenant_scenarios = vec![0u64; tenant_count];
    let mut tenant_fingerprints: Vec<std::collections::BTreeSet<u64>> =
        vec![Default::default(); tenant_count];
    let scenario_count = {
        let scenarios = state.scenarios.lock().expect("scenario registry poisoned");
        for ((tenant, _), entry) in scenarios.iter() {
            tenant_scenarios[*tenant] += 1;
            tenant_fingerprints[*tenant].extend(entry.handles.values().map(|h| h.fingerprint()));
        }
        scenarios.len()
    };
    let fingerprint_stats: BTreeMap<u64, (u64, u64)> = snapshot
        .scenarios
        .iter()
        .map(|s| (s.fingerprint, (s.requests, s.cache_hits)))
        .collect();
    let mut out = String::with_capacity(8192);

    let build = VersionInfo::current();
    family_header(
        &mut out,
        "aarc_build_info",
        "gauge",
        "Build provenance; the value is always 1, the labels carry the data.",
    );
    let _ = writeln!(
        out,
        "aarc_build_info{{version=\"{}\",rustc=\"{}\",profile=\"{}\"}} 1",
        metric_label(&build.version),
        metric_label(&build.rustc),
        metric_label(&build.profile)
    );

    for (name, help, value) in [
        (
            "aarc_eval_requests_total",
            "Candidate evaluations requested (cache hits + misses).",
            snapshot.stats.requests,
        ),
        (
            "aarc_eval_cache_hits_total",
            "Evaluations answered from the memo-cache.",
            snapshot.stats.cache_hits,
        ),
        (
            "aarc_eval_cache_misses_total",
            "Evaluations that required simulation.",
            snapshot.stats.cache_misses,
        ),
        (
            "aarc_eval_evictions_total",
            "Memo-cache entries evicted under capacity pressure.",
            snapshot.stats.evictions,
        ),
    ] {
        family_header(&mut out, name, "counter", help);
        let _ = writeln!(out, "{name} {value}");
    }

    // Per-tenant eval-cache visibility: each tenant only ever sees the
    // aggregate over its own scenarios' fingerprints.
    let tenant_eval: Vec<(u64, u64)> = tenant_fingerprints
        .iter()
        .map(|fingerprints| {
            fingerprints
                .iter()
                .filter_map(|fp| fingerprint_stats.get(fp))
                .fold((0, 0), |(r, h), &(requests, hits)| (r + requests, h + hits))
        })
        .collect();
    family_header(
        &mut out,
        "aarc_tenant_eval_requests_total",
        "counter",
        "Candidate evaluations over the tenant's registered scenarios.",
    );
    for (tenant, &(requests, _)) in state.tenants.all().iter().zip(&tenant_eval) {
        let _ = writeln!(
            out,
            "aarc_tenant_eval_requests_total{{tenant=\"{}\"}} {requests}",
            metric_label(&tenant.name)
        );
    }
    family_header(
        &mut out,
        "aarc_tenant_eval_cache_hits_total",
        "counter",
        "Memo-cache hits over the tenant's registered scenarios.",
    );
    for (tenant, &(_, hits)) in state.tenants.all().iter().zip(&tenant_eval) {
        let _ = writeln!(
            out,
            "aarc_tenant_eval_cache_hits_total{{tenant=\"{}\"}} {hits}",
            metric_label(&tenant.name)
        );
    }

    for (name, help, value) in [
        (
            "aarc_eval_cached_entries",
            "Memo-cache entries currently resident.",
            snapshot.cached_entries as u64,
        ),
        (
            "aarc_eval_threads",
            "Worker threads of the shared evaluation pool.",
            snapshot.stats.threads as u64,
        ),
        (
            "aarc_eval_scenarios_registered",
            "Scenario environments registered with the evaluation service.",
            snapshot.registered_scenarios as u64,
        ),
        (
            "aarc_eval_inflight",
            "Evaluation calls executing right now (the saturation signal).",
            snapshot.inflight as u64,
        ),
        (
            "aarc_eval_inflight_peak",
            "High-water mark of concurrent evaluation calls since boot.",
            snapshot.inflight_peak as u64,
        ),
        (
            "aarc_admission_max_live_sessions",
            "Global live-session watermark enforced by admission control.",
            state.max_live_sessions as u64,
        ),
        (
            "aarc_scenarios",
            "Scenarios in the daemon's runtime registry (all tenants).",
            scenario_count as u64,
        ),
    ] {
        family_header(&mut out, name, "gauge", help);
        let _ = writeln!(out, "{name} {value}");
    }

    family_header(
        &mut out,
        "aarc_tenant_scenarios",
        "gauge",
        "Scenarios currently uploaded, per tenant.",
    );
    for (tenant, count) in state.tenants.all().iter().zip(&tenant_scenarios) {
        let _ = writeln!(
            out,
            "aarc_tenant_scenarios{{tenant=\"{}\"}} {count}",
            metric_label(&tenant.name)
        );
    }

    // Recovery families exist only when the daemon persists state, so a
    // daemon without `--state-dir` exposes byte-identical metric
    // families to before the persistence layer existed.
    if state.persist.is_some() {
        family_header(
            &mut out,
            "aarc_recovery_in_progress",
            "gauge",
            "1 while startup recovery is replaying durable state, 0 after.",
        );
        let _ = writeln!(
            out,
            "aarc_recovery_in_progress {}",
            u64::from(state.recovering())
        );
        let recovery = state.recovery.lock().expect("recovery report poisoned");
        if let Some(report) = recovery.as_ref() {
            for (name, help, value) in [
                (
                    "aarc_recovery_wal_records_applied",
                    "WAL records replayed on top of the registry snapshot at startup.",
                    report.wal_records_applied,
                ),
                (
                    "aarc_recovery_wal_lines_dropped",
                    "WAL lines dropped at startup as torn or unparseable.",
                    report.wal_lines_dropped,
                ),
                (
                    "aarc_recovery_scenarios_recovered",
                    "Scenarios re-registered from persisted specs at startup.",
                    report.scenarios_recovered,
                ),
                (
                    "aarc_recovery_sessions_resumed",
                    "Live sessions resumed by deterministic replay at startup.",
                    report.sessions_resumed,
                ),
                (
                    "aarc_recovery_sessions_restored",
                    "Terminal sessions restored from checkpoints at startup.",
                    report.sessions_restored,
                ),
                (
                    "aarc_recovery_files_quarantined",
                    "State files or registry entries quarantined as unusable at startup.",
                    report.quarantined.len() as u64,
                ),
            ] {
                family_header(&mut out, name, "gauge", help);
                let _ = writeln!(out, "{name} {value}");
            }
        }
    }

    let sessions = state.sessions.lock().expect("session table poisoned");
    let live = sessions.values().filter(|s| s.phase.is_live()).count();
    let mut tenant_live = vec![0u64; tenant_count];
    for slot in sessions.values().filter(|s| s.phase.is_live()) {
        tenant_live[slot.tenant] += 1;
    }
    family_header(
        &mut out,
        "aarc_sessions_total",
        "counter",
        "Search sessions started since daemon boot.",
    );
    let _ = writeln!(out, "aarc_sessions_total {}", sessions.len());
    family_header(
        &mut out,
        "aarc_sessions_live",
        "gauge",
        "Sessions currently running or paused (all tenants).",
    );
    let _ = writeln!(out, "aarc_sessions_live {live}");
    family_header(
        &mut out,
        "aarc_tenant_sessions_live",
        "gauge",
        "Sessions currently running or paused, per tenant.",
    );
    for (tenant, count) in state.tenants.all().iter().zip(&tenant_live) {
        let _ = writeln!(
            out,
            "aarc_tenant_sessions_live{{tenant=\"{}\"}} {count}",
            metric_label(&tenant.name)
        );
    }

    // Method/class/state come from fixed vocabularies; scenario and
    // tenant names are restricted at upload/config load, but escape
    // anyway so a future relaxation can never corrupt the exposition.
    // `session` stays the FIRST label (the CI smoke job greps for it);
    // `tenant` is appended last.
    let session_labels = |slot: &Slot<'_>| {
        format!(
            "session=\"{}\",scenario=\"{}\",method=\"{}\",class=\"{}\",state=\"{}\",tenant=\"{}\"",
            slot.id,
            metric_label(&slot.scenario),
            metric_label(&slot.method),
            metric_label(&slot.class),
            slot.phase.label(),
            metric_label(&state.tenants.tenant(slot.tenant).name)
        )
    };
    // One pass per family so each family's samples stay consecutive under
    // a single header, as the exposition format requires.
    if !sessions.is_empty() {
        family_header(
            &mut out,
            "aarc_session_rounds",
            "gauge",
            "Completed ask/evaluate/tell rounds of the session.",
        );
        for slot in sessions.values() {
            let _ = writeln!(
                out,
                "aarc_session_rounds{{{}}} {}",
                session_labels(slot),
                slot.progress.rounds
            );
        }
        family_header(
            &mut out,
            "aarc_session_evals",
            "gauge",
            "Candidate evaluations consumed by the session.",
        );
        for slot in sessions.values() {
            let _ = writeln!(
                out,
                "aarc_session_evals{{{}}} {}",
                session_labels(slot),
                slot.progress.evals
            );
        }
        if sessions.values().any(|s| s.progress.incumbent.is_some()) {
            family_header(
                &mut out,
                "aarc_session_incumbent_cost",
                "gauge",
                "Cost of the session's best configuration so far.",
            );
            for slot in sessions.values() {
                if let Some(incumbent) = &slot.progress.incumbent {
                    let _ = writeln!(
                        out,
                        "aarc_session_incumbent_cost{{{}}} {}",
                        session_labels(slot),
                        incumbent.cost
                    );
                }
            }
            family_header(
                &mut out,
                "aarc_session_incumbent_makespan_ms",
                "gauge",
                "End-to-end makespan of the session's best configuration, ms.",
            );
            for slot in sessions.values() {
                if let Some(incumbent) = &slot.progress.incumbent {
                    let _ = writeln!(
                        out,
                        "aarc_session_incumbent_makespan_ms{{{}}} {}",
                        session_labels(slot),
                        incumbent.makespan_ms
                    );
                }
            }
        }
    }
    drop(sessions);

    // Everything recorded through the shared telemetry recorder: latency
    // histograms (eval batch, queue wait, sim time, HTTP, session step),
    // kernel counters, the sims/sec gauge, and the per-tenant
    // request/rejection counter families.
    aarc_telemetry::prom::write_snapshot(&mut out, &state.telemetry.recorder.snapshot());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::PROBLEM_CONTENT_TYPE;

    fn chatbot_yaml() -> Vec<u8> {
        let (_, spec) = aarc_spec::builtin_specs()
            .into_iter()
            .find(|(name, _)| *name == "chatbot")
            .expect("chatbot is a builtin");
        aarc_spec::to_string(&spec, aarc_spec::SpecFormat::Yaml).into_bytes()
    }

    /// The chatbot spec renamed, for multi-scenario listings.
    fn named_yaml(name: &str) -> Vec<u8> {
        String::from_utf8(chatbot_yaml())
            .unwrap()
            .replace("name: chatbot", &format!("name: {name}"))
            .into_bytes()
    }

    /// Looks up a key in a parsed JSON map, panicking with the key name.
    fn field<'a>(doc: &'a serde::Value, key: &str) -> &'a serde::Value {
        doc.get(key)
            .unwrap_or_else(|| panic!("missing field `{key}` in {doc:?}"))
    }

    /// Reads a JSON number as u64 (the shim parses small ints as `Int`).
    fn uint(v: &serde::Value) -> u64 {
        match v {
            serde::Value::Int(i) if *i >= 0 => *i as u64,
            serde::Value::UInt(u) => *u,
            other => panic!("expected unsigned integer, got {other:?}"),
        }
    }

    fn request(method: &str, path: &str, body: &[u8]) -> Request {
        let (path, query) = match path.split_once('?') {
            Some((path, query)) => (path.to_owned(), query.to_owned()),
            None => (path.to_owned(), String::new()),
        };
        Request {
            method: method.to_owned(),
            path,
            query,
            headers: Vec::new(),
            body: body.to_vec(),
        }
    }

    /// A request carrying an `X-Api-Key` header.
    fn keyed_request(method: &str, path: &str, key: &str, body: &[u8]) -> Request {
        let mut request = request(method, path, body);
        request
            .headers
            .push(("x-api-key".to_owned(), key.to_owned()));
        request
    }

    fn anonymous_state<'s>(
        service: &'s EvalService,
        telemetry: &'s ServeTelemetry,
    ) -> ServeState<'s> {
        ServeState::new(
            service,
            telemetry,
            TenantRegistry::single_anonymous(),
            DEFAULT_MAX_LIVE_SESSIONS,
            None,
            crate::state::DEFAULT_CHECKPOINT_EVERY,
        )
    }

    /// Asserts a response is a valid RFC-7807 problem document of the
    /// given status, and returns the parsed document.
    fn assert_problem(reply: &Response, status: u16) -> serde::Value {
        assert_eq!(reply.status, status, "{}", reply.body);
        assert_eq!(
            reply.content_type, PROBLEM_CONTENT_TYPE,
            "non-2xx must be problem+json: {}",
            reply.body
        );
        let doc = serde_json::parse(&reply.body).unwrap();
        for key in ["type", "title", "status", "detail", "instance"] {
            field(&doc, key);
        }
        assert_eq!(uint(field(&doc, "status")), u64::from(status));
        assert!(field(&doc, "type")
            .as_str()
            .unwrap()
            .starts_with("/api/v1/problems/"));
        doc
    }

    /// Drives the router directly (no sockets) with a manual scheduler:
    /// steps every live session to completion between requests, exactly
    /// like the scheduler thread would.
    fn drain_sessions(state: &ServeState<'_>) {
        loop {
            let runnable: Vec<u64> = {
                let sessions = state.sessions.lock().unwrap();
                sessions
                    .iter()
                    .filter(|(_, s)| s.phase == Phase::Running && s.session.is_some())
                    .map(|(&id, _)| id)
                    .collect()
            };
            if runnable.is_empty() {
                break;
            }
            for id in runnable {
                let taken = {
                    let mut sessions = state.sessions.lock().unwrap();
                    sessions.get_mut(&id).and_then(|s| s.session.take())
                };
                let Some(mut session) = taken else { continue };
                let st = session.step();
                let mut sessions = state.sessions.lock().unwrap();
                let slot = sessions.get_mut(&id).unwrap();
                slot.progress = session.progress().clone();
                slot.trace
                    .extend_from_slice(&session.convergence()[slot.trace.len()..]);
                if st == SessionState::Finished {
                    finalize_slot(slot, session, state.telemetry);
                } else {
                    slot.session = Some(session);
                }
            }
        }
    }

    #[test]
    fn upload_list_delete_lifecycle() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = anonymous_state(&service, &telemetry);
        let yaml = chatbot_yaml();

        let created = route(&state, &request("POST", "/scenarios", &yaml));
        assert_eq!(created.status, 201, "{}", created.body);
        assert!(created.body.contains("\"chatbot\""));

        let duplicate = route(&state, &request("POST", "/scenarios", &yaml));
        assert_problem(&duplicate, 409);

        let listed = route(&state, &request("GET", "/scenarios", b""));
        assert_eq!(listed.status, 200);
        assert!(listed.body.contains("\"chatbot\""));

        let gone = route(&state, &request("DELETE", "/scenarios/nope", b""));
        assert_problem(&gone, 404);
        let deleted = route(&state, &request("DELETE", "/scenarios/chatbot", b""));
        assert_eq!(deleted.status, 200);
        let listed = route(&state, &request("GET", "/scenarios", b""));
        assert!(!listed.body.contains("chatbot"));
    }

    #[test]
    fn v1_prefix_is_canonical_and_legacy_paths_are_deprecated_aliases() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = anonymous_state(&service, &telemetry);

        // The discovery document only exists on the canonical surface.
        let discovery = route(&state, &request("GET", "/api/v1", b""));
        assert_eq!(discovery.status, 200, "{}", discovery.body);
        assert_eq!(discovery.header("Deprecation"), None);
        let doc = serde_json::parse(&discovery.body).unwrap();
        let versions = field(&doc, "versions").as_seq().unwrap();
        assert_eq!(versions[0].as_str(), Some("v1"));
        let routes = field(&doc, "routes").as_seq().unwrap();
        assert!(routes.len() >= 15, "discovery lists the whole surface");
        assert!(routes
            .iter()
            .all(|r| field(r, "path").as_str().unwrap().starts_with("/api/v1")));

        // Same handler under both mounts; only the legacy one is marked.
        let v1 = route(&state, &request("GET", "/api/v1/healthz", b""));
        assert_eq!(v1.status, 200);
        assert_eq!(v1.header("Deprecation"), None);
        let legacy = route(&state, &request("GET", "/healthz", b""));
        assert_eq!(legacy.status, 200);
        assert_eq!(legacy.header("Deprecation"), Some("true"));
        assert_eq!(v1.body, legacy.body);

        // The whole tenant surface works under the prefix.
        let created = route(
            &state,
            &request("POST", "/api/v1/scenarios", &chatbot_yaml()),
        );
        assert_eq!(created.status, 201, "{}", created.body);
        let listed = route(&state, &request("GET", "/api/v1/scenarios", b""));
        assert!(listed.body.contains("\"chatbot\""));
        assert_eq!(listed.header("Deprecation"), None);

        // Even errors on the legacy surface carry the deprecation marker,
        // and problem instances preserve the path the client used.
        let missing = route(&state, &request("GET", "/nope", b""));
        assert_eq!(missing.header("Deprecation"), Some("true"));
        let doc = assert_problem(&missing, 404);
        assert_eq!(field(&doc, "instance").as_str(), Some("/nope"));
        let v1_missing = route(&state, &request("GET", "/api/v1/nope", b""));
        assert_eq!(v1_missing.header("Deprecation"), None);
        let doc = assert_problem(&v1_missing, 404);
        assert_eq!(field(&doc, "instance").as_str(), Some("/api/v1/nope"));

        // `/api/v1garbage` is not the prefix — it is a legacy-shaped 404.
        let odd = route(&state, &request("GET", "/api/v1garbage", b""));
        assert_eq!(odd.status, 404);
        assert_eq!(odd.header("Deprecation"), Some("true"));
    }

    #[test]
    fn every_error_is_a_problem_document() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = anonymous_state(&service, &telemetry);
        route(&state, &request("POST", "/scenarios", &chatbot_yaml()));

        // 404: unknown endpoint, scenario, session.
        assert_problem(&route(&state, &request("GET", "/api/v1/nope", b"")), 404);
        assert_problem(
            &route(&state, &request("DELETE", "/api/v1/scenarios/ghost", b"")),
            404,
        );
        assert_problem(
            &route(&state, &request("GET", "/api/v1/sessions/99", b"")),
            404,
        );
        assert_problem(
            &route(
                &state,
                &request("POST", "/api/v1/sessions", b"{\"scenario\": \"ghost\"}"),
            ),
            404,
        );
        // 405: wrong method on operator and tenant endpoints.
        assert_problem(
            &route(&state, &request("POST", "/api/v1/version", b"")),
            405,
        );
        assert_problem(
            &route(&state, &request("PUT", "/api/v1/scenarios", b"")),
            405,
        );
        assert_problem(
            &route(&state, &request("DELETE", "/api/v1/sessions/1", b"")),
            405,
        );
        // 400: malformed ids, bodies and query parameters.
        assert_problem(
            &route(&state, &request("GET", "/api/v1/sessions/abc", b"")),
            400,
        );
        assert_problem(
            &route(
                &state,
                &request("POST", "/api/v1/scenarios", b"{ not a spec"),
            ),
            400,
        );
        assert_problem(
            &route(&state, &request("POST", "/api/v1/sessions", b"not json")),
            400,
        );
        assert_problem(
            &route(
                &state,
                &request("GET", "/api/v1/debug/events?limit=many", b""),
            ),
            400,
        );
        // 422: parsed but semantically invalid.
        let doc = assert_problem(
            &route(
                &state,
                &request(
                    "POST",
                    "/api/v1/sessions",
                    b"{\"scenario\": \"chatbot\", \"method\": \"alchemy\"}",
                ),
            ),
            422,
        );
        assert!(field(&doc, "detail").as_str().unwrap().contains("alchemy"));
        // 409: duplicate upload.
        assert_problem(
            &route(
                &state,
                &request("POST", "/api/v1/scenarios", &chatbot_yaml()),
            ),
            409,
        );
    }

    #[test]
    fn invalid_uploads_are_rejected_with_400() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = anonymous_state(&service, &telemetry);
        let garbage = route(&state, &request("POST", "/scenarios", b"{ not a spec"));
        assert_problem(&garbage, 400);
        let empty = route(&state, &request("POST", "/scenarios/validate", b""));
        assert_problem(&empty, 400);
        let ok = route(
            &state,
            &request("POST", "/scenarios/validate", &chatbot_yaml()),
        );
        assert_eq!(ok.status, 200, "{}", ok.body);
        assert!(ok.body.contains("\"valid\": true"));
        // Validation never admits anything.
        let listed = route(&state, &request("GET", "/scenarios", b""));
        assert!(!listed.body.contains("chatbot"));
    }

    #[test]
    fn scenario_names_outside_the_safe_alphabet_are_rejected() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = anonymous_state(&service, &telemetry);
        // Names become URL path segments, JSON values and metrics labels.
        // They parse fine, so this is a 422 (validation), not a 400.
        for bad in ["bad/name", "bad\"name", "bad name"] {
            let yaml = String::from_utf8(chatbot_yaml())
                .unwrap()
                .replace("name: chatbot", &format!("name: '{bad}'"));
            let reply = route(&state, &request("POST", "/scenarios", yaml.as_bytes()));
            assert_problem(&reply, 422);
            assert!(reply.body.contains("[A-Za-z0-9._-]"), "{}", reply.body);
        }
        assert_eq!(metric_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn listings_paginate_with_envelope_and_filters() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = anonymous_state(&service, &telemetry);
        for name in ["alpha", "beta", "gamma"] {
            let reply = route(&state, &request("POST", "/scenarios", &named_yaml(name)));
            assert_eq!(reply.status, 201, "{}", reply.body);
        }

        // Page 1 of 2: limit 2, next_offset points at the rest.
        let page = route(&state, &request("GET", "/api/v1/scenarios?limit=2", b""));
        assert_eq!(page.status, 200, "{}", page.body);
        let doc = serde_json::parse(&page.body).unwrap();
        assert_eq!(uint(field(&doc, "total")), 3);
        let items = field(&doc, "items").as_seq().unwrap();
        assert_eq!(items.len(), 2);
        // Deterministic name order.
        assert_eq!(field(&items[0], "name").as_str(), Some("alpha"));
        assert_eq!(field(&items[1], "name").as_str(), Some("beta"));
        assert_eq!(uint(field(&doc, "next_offset")), 2);

        // Page 2: the final page has a null next_offset.
        let page = route(
            &state,
            &request("GET", "/api/v1/scenarios?limit=2&offset=2", b""),
        );
        let doc = serde_json::parse(&page.body).unwrap();
        let items = field(&doc, "items").as_seq().unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(field(&items[0], "name").as_str(), Some("gamma"));
        assert!(matches!(field(&doc, "next_offset"), serde::Value::Null));

        // Offset past the end: empty page, total still correct.
        let page = route(&state, &request("GET", "/api/v1/scenarios?offset=99", b""));
        let doc = serde_json::parse(&page.body).unwrap();
        assert!(field(&doc, "items").as_seq().unwrap().is_empty());
        assert_eq!(uint(field(&doc, "total")), 3);
        assert!(matches!(field(&doc, "next_offset"), serde::Value::Null));

        // limit=0 clamps to 1; limit above the cap clamps to the cap.
        let page = route(&state, &request("GET", "/api/v1/scenarios?limit=0", b""));
        let doc = serde_json::parse(&page.body).unwrap();
        assert_eq!(field(&doc, "items").as_seq().unwrap().len(), 1);
        let page = route(
            &state,
            &request("GET", "/api/v1/scenarios?limit=99999", b""),
        );
        assert_eq!(page.status, 200);

        // Bad pagination parameters are 400 problems.
        assert_problem(
            &route(&state, &request("GET", "/api/v1/scenarios?limit=abc", b"")),
            400,
        );
        assert_problem(
            &route(&state, &request("GET", "/api/v1/scenarios?offset=-1", b"")),
            400,
        );

        // Substring name filter.
        let page = route(&state, &request("GET", "/api/v1/scenarios?name=amm", b""));
        let doc = serde_json::parse(&page.body).unwrap();
        let items = field(&doc, "items").as_seq().unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(field(&items[0], "name").as_str(), Some("gamma"));
        assert_eq!(uint(field(&doc, "total")), 1, "total counts filtered rows");
    }

    #[test]
    fn session_listings_filter_by_status_and_scenario() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = anonymous_state(&service, &telemetry);
        route(&state, &request("POST", "/scenarios", &named_yaml("one")));
        route(&state, &request("POST", "/scenarios", &named_yaml("two")));
        let start = |scenario: &str| {
            let body = format!("{{\"scenario\": \"{scenario}\", \"method\": \"random\"}}");
            let reply = route(
                &state,
                &request("POST", "/api/v1/sessions", body.as_bytes()),
            );
            assert_eq!(reply.status, 201, "{}", reply.body);
        };
        start("one");
        start("two");
        route(&state, &request("POST", "/api/v1/sessions/2/cancel", b""));
        drain_sessions(&state);
        // Session 1 finished; session 2 cancelled.

        let finished = route(
            &state,
            &request("GET", "/api/v1/sessions?status=finished", b""),
        );
        let doc = serde_json::parse(&finished.body).unwrap();
        assert_eq!(uint(field(&doc, "total")), 1);
        let items = field(&doc, "items").as_seq().unwrap();
        assert_eq!(uint(field(&items[0], "id")), 1);

        let cancelled = route(
            &state,
            &request("GET", "/api/v1/sessions?status=cancelled", b""),
        );
        let doc = serde_json::parse(&cancelled.body).unwrap();
        assert_eq!(uint(field(&doc, "total")), 1);

        // Scenario filter (exact), with `name=` accepted as an alias.
        for query in ["scenario=two", "name=two"] {
            let reply = route(
                &state,
                &request("GET", &format!("/api/v1/sessions?{query}"), b""),
            );
            let doc = serde_json::parse(&reply.body).unwrap();
            assert_eq!(uint(field(&doc, "total")), 1, "{query}");
            let items = field(&doc, "items").as_seq().unwrap();
            assert_eq!(field(&items[0], "scenario").as_str(), Some("two"));
        }

        // Unknown status values are 400 problems naming the vocabulary.
        let bad = route(
            &state,
            &request("GET", "/api/v1/sessions?status=bogus", b""),
        );
        let doc = assert_problem(&bad, 400);
        assert!(field(&doc, "detail").as_str().unwrap().contains("running"));
    }

    #[test]
    fn session_runs_to_completion_and_reports_offline_identical_bytes() {
        let service = EvalService::with_threads(2);
        let telemetry = ServeTelemetry::quiet();
        let state = anonymous_state(&service, &telemetry);
        route(&state, &request("POST", "/scenarios", &chatbot_yaml()));

        let started = route(
            &state,
            &request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}"),
        );
        assert_eq!(started.status, 201, "{}", started.body);
        assert!(started.body.contains("\"id\": 1"));

        drain_sessions(&state);
        let status = route(&state, &request("GET", "/sessions/1", b""));
        assert_eq!(status.status, 200);
        assert!(status.body.contains("\"finished\""), "{}", status.body);
        assert!(status.body.contains("\"incumbent\""));

        let report = route(&state, &request("GET", "/sessions/1/report", b""));
        assert_eq!(report.status, 200);

        // Bit-identical to the offline path: same strategy driven by
        // SearchDriver::run on a private engine.
        let workload = {
            let anonymous = state.tenants.resolve(None).unwrap();
            let scenarios = state.scenarios.lock().unwrap();
            scenarios[&(anonymous, "chatbot".to_owned())]
                .workload
                .clone()
        };
        let method = methods::build("aarc").unwrap();
        let engine = aarc_simulator::EvalEngine::with_threads(workload.env().clone(), 2);
        let outcome = method.search_with(&engine, workload.slo_ms()).unwrap();
        let offline = ConfigurationReport::new(
            workload.env(),
            &outcome.best_configs,
            &outcome.final_report,
            Some(workload.slo_ms()),
        );
        let mut offline_json = serde_json::to_string_pretty(&offline).unwrap();
        offline_json.push('\n');
        assert_eq!(
            report.body, offline_json,
            "served report must match offline run bytes"
        );
    }

    #[test]
    fn tenants_cannot_observe_each_other() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let registry = TenantRegistry::from_file_contents(
            "tenants:\n  - name: alpha\n    api_key: ka\n  - name: beta\n    api_key: kb\n",
        )
        .unwrap();
        let state = ServeState::new(
            &service,
            &telemetry,
            registry,
            DEFAULT_MAX_LIVE_SESSIONS,
            None,
            crate::state::DEFAULT_CHECKPOINT_EVERY,
        );

        // Keyless requests are refused outright (no anonymous entry).
        let doc = assert_problem(
            &route(&state, &request("GET", "/api/v1/scenarios", b"")),
            401,
        );
        assert!(field(&doc, "detail")
            .as_str()
            .unwrap()
            .contains("X-Api-Key"));
        assert_problem(
            &route(
                &state,
                &keyed_request("GET", "/api/v1/scenarios", "wrong", b""),
            ),
            401,
        );

        // Both tenants may use the same scenario name: separate namespaces.
        for key in ["ka", "kb"] {
            let reply = route(
                &state,
                &keyed_request("POST", "/api/v1/scenarios", key, &chatbot_yaml()),
            );
            assert_eq!(reply.status, 201, "{key}: {}", reply.body);
        }
        // ...while the identical environment is registered once below the
        // namespaces (shared memo-cache substrate).
        let start = route(
            &state,
            &keyed_request(
                "POST",
                "/api/v1/sessions",
                "ka",
                b"{\"scenario\": \"chatbot\", \"method\": \"random\"}",
            ),
        );
        assert_eq!(start.status, 201, "{}", start.body);

        // Cross-tenant lookups answer 404, never 403: existence must not
        // leak across namespaces.
        let listed = route(&state, &keyed_request("GET", "/api/v1/sessions", "kb", b""));
        let doc = serde_json::parse(&listed.body).unwrap();
        assert_eq!(uint(field(&doc, "total")), 0, "beta sees no alpha sessions");
        assert_problem(
            &route(
                &state,
                &keyed_request("GET", "/api/v1/sessions/1", "kb", b""),
            ),
            404,
        );
        assert_problem(
            &route(
                &state,
                &keyed_request("POST", "/api/v1/sessions/1/cancel", "kb", b""),
            ),
            404,
        );

        route(
            &state,
            &keyed_request("POST", "/api/v1/sessions/1/cancel", "ka", b""),
        );
        drain_sessions(&state);

        // Alpha compiled the only live handle for this class env; its
        // delete unregisters the fingerprint (beta's entry never compiled
        // one, so nothing dangles). Beta's first session simply
        // re-registers it.
        let shared_env_registered = || service.stats_snapshot().registered_scenarios;
        assert_eq!(shared_env_registered(), 1, "one class env was compiled");
        let deleted = route(
            &state,
            &keyed_request("DELETE", "/api/v1/scenarios/chatbot", "ka", b""),
        );
        assert_eq!(deleted.status, 200, "{}", deleted.body);
        assert_eq!(shared_env_registered(), 0, "alpha held the only handle");
        let start = route(
            &state,
            &keyed_request(
                "POST",
                "/api/v1/sessions",
                "kb",
                b"{\"scenario\": \"chatbot\", \"method\": \"random\"}",
            ),
        );
        assert_eq!(start.status, 201, "{}", start.body);
        assert_eq!(shared_env_registered(), 1, "beta's session re-registers");
        let id = uint(field(&serde_json::parse(&start.body).unwrap(), "id"));
        route(
            &state,
            &keyed_request("POST", &format!("/api/v1/sessions/{id}/cancel"), "kb", b""),
        );
        drain_sessions(&state);
        let deleted = route(
            &state,
            &keyed_request("DELETE", "/api/v1/scenarios/chatbot", "kb", b""),
        );
        assert_eq!(deleted.status, 200, "{}", deleted.body);
        assert_eq!(shared_env_registered(), 0, "last reference unregisters");
    }

    #[test]
    fn tenant_quotas_reject_with_429_and_recover() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let registry = TenantRegistry::from_file_contents(
            "tenants:\n  - name: small\n    api_key: ks\n    max_scenarios: 1\n    max_live_sessions: 1\n",
        )
        .unwrap();
        let state = ServeState::new(
            &service,
            &telemetry,
            registry,
            DEFAULT_MAX_LIVE_SESSIONS,
            None,
            crate::state::DEFAULT_CHECKPOINT_EVERY,
        );

        let first = route(
            &state,
            &keyed_request("POST", "/api/v1/scenarios", "ks", &chatbot_yaml()),
        );
        assert_eq!(first.status, 201, "{}", first.body);
        let over = route(
            &state,
            &keyed_request("POST", "/api/v1/scenarios", "ks", &named_yaml("second")),
        );
        let doc = assert_problem(&over, 429);
        assert!(field(&doc, "detail").as_str().unwrap().contains("quota"));

        let start = |body: &[u8]| {
            route(
                &state,
                &keyed_request("POST", "/api/v1/sessions", "ks", body),
            )
        };
        let first = start(b"{\"scenario\": \"chatbot\", \"method\": \"random\"}");
        assert_eq!(first.status, 201, "{}", first.body);
        let over = start(b"{\"scenario\": \"chatbot\", \"method\": \"random\"}");
        let doc = assert_problem(&over, 429);
        assert!(field(&doc, "detail")
            .as_str()
            .unwrap()
            .contains("live-session"));
        assert_eq!(over.header("Retry-After"), Some("1"));

        // The quota frees as soon as the live session reaches a terminal
        // phase.
        route(
            &state,
            &keyed_request("POST", "/api/v1/sessions/1/cancel", "ks", b""),
        );
        drain_sessions(&state);
        let again = start(b"{\"scenario\": \"chatbot\", \"method\": \"random\"}");
        assert_eq!(again.status, 201, "{}", again.body);
        route(
            &state,
            &keyed_request("POST", "/api/v1/sessions/2/cancel", "ks", b""),
        );
        drain_sessions(&state);
    }

    #[test]
    fn rate_limited_tenants_get_429_with_retry_after() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let registry = TenantRegistry::from_file_contents(
            "tenants:\n  - name: slow\n    api_key: kr\n    requests_per_sec: 1\n    burst: 1\n",
        )
        .unwrap();
        let state = ServeState::new(
            &service,
            &telemetry,
            registry,
            DEFAULT_MAX_LIVE_SESSIONS,
            None,
            crate::state::DEFAULT_CHECKPOINT_EVERY,
        );
        let first = route(
            &state,
            &keyed_request("GET", "/api/v1/scenarios", "kr", b""),
        );
        assert_eq!(first.status, 200, "{}", first.body);
        let limited = route(
            &state,
            &keyed_request("GET", "/api/v1/scenarios", "kr", b""),
        );
        let doc = assert_problem(&limited, 429);
        assert!(field(&doc, "detail")
            .as_str()
            .unwrap()
            .contains("rate limit"));
        let retry: u64 = limited.header("Retry-After").unwrap().parse().unwrap();
        assert!(retry >= 1);
        // Operator endpoints are exempt from tenant rate limits.
        assert_eq!(
            route(&state, &request("GET", "/api/v1/healthz", b"")).status,
            200
        );
        assert_eq!(
            route(&state, &request("GET", "/api/v1/metrics", b"")).status,
            200
        );
    }

    #[test]
    fn global_watermark_saturates_with_503() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = ServeState::new(
            &service,
            &telemetry,
            TenantRegistry::single_anonymous(),
            1,
            None,
            crate::state::DEFAULT_CHECKPOINT_EVERY,
        );
        route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
        let first = route(
            &state,
            &request(
                "POST",
                "/api/v1/sessions",
                b"{\"scenario\": \"chatbot\", \"method\": \"random\"}",
            ),
        );
        assert_eq!(first.status, 201, "{}", first.body);
        let saturated = route(
            &state,
            &request(
                "POST",
                "/api/v1/sessions",
                b"{\"scenario\": \"chatbot\", \"method\": \"random\"}",
            ),
        );
        let doc = assert_problem(&saturated, 503);
        assert!(field(&doc, "detail")
            .as_str()
            .unwrap()
            .contains("watermark"));
        assert_eq!(saturated.header("Retry-After"), Some("1"));
        // Draining the one live session frees the watermark.
        route(&state, &request("POST", "/api/v1/sessions/1/cancel", b""));
        drain_sessions(&state);
        let again = route(
            &state,
            &request(
                "POST",
                "/api/v1/sessions",
                b"{\"scenario\": \"chatbot\", \"method\": \"random\"}",
            ),
        );
        assert_eq!(again.status, 201, "{}", again.body);
        route(&state, &request("POST", "/api/v1/sessions/2/cancel", b""));
        drain_sessions(&state);
    }

    #[test]
    fn unknown_sessions_scenarios_and_routes_are_404() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = anonymous_state(&service, &telemetry);
        assert_eq!(
            route(&state, &request("GET", "/sessions/7", b"")).status,
            404
        );
        assert_eq!(
            route(&state, &request("GET", "/sessions/7/report", b"")).status,
            404
        );
        assert_eq!(
            route(
                &state,
                &request("POST", "/sessions", b"{\"scenario\": \"ghost\"}")
            )
            .status,
            404
        );
        assert_eq!(route(&state, &request("GET", "/nope", b"")).status, 404);
        assert_eq!(
            route(&state, &request("PUT", "/scenarios", b"")).status,
            405
        );
        assert_eq!(
            route(&state, &request("GET", "/sessions/abc", b"")).status,
            400
        );
    }

    #[test]
    fn pause_cancel_and_delete_conflicts() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = anonymous_state(&service, &telemetry);
        route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
        let started = route(
            &state,
            &request(
                "POST",
                "/sessions",
                b"{\"scenario\": \"chatbot\", \"method\": \"random\"}",
            ),
        );
        assert_eq!(started.status, 201, "{}", started.body);

        // Pause before any scheduling: the session must report paused and
        // deleting its scenario must conflict.
        let paused = route(&state, &request("POST", "/sessions/1/pause", b""));
        assert_eq!(paused.status, 200);
        assert!(paused.body.contains("\"paused\""), "{}", paused.body);
        let conflict = route(&state, &request("DELETE", "/scenarios/chatbot", b""));
        assert_problem(&conflict, 409);
        // A paused session does not advance.
        drain_sessions(&state);
        let status = route(&state, &request("GET", "/sessions/1", b""));
        assert!(status.body.contains("\"paused\""), "{}", status.body);

        // Cancel finishes it with the cancelled phase; its report is 409.
        let cancelled = route(&state, &request("POST", "/sessions/1/cancel", b""));
        assert_eq!(cancelled.status, 200);
        drain_sessions(&state);
        let status = route(&state, &request("GET", "/sessions/1", b""));
        assert!(status.body.contains("\"cancelled\""), "{}", status.body);
        assert_problem(
            &route(&state, &request("GET", "/sessions/1/report", b"")),
            409,
        );
        // Controls on a terminal session conflict.
        assert_problem(
            &route(&state, &request("POST", "/sessions/1/resume", b"")),
            409,
        );
        // With the session terminal, the scenario can be deleted.
        assert_eq!(
            route(&state, &request("DELETE", "/scenarios/chatbot", b"")).status,
            200
        );
    }

    #[test]
    fn sessions_can_start_directly_paused_and_resume() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = anonymous_state(&service, &telemetry);
        route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
        let started = route(
            &state,
            &request(
                "POST",
                "/sessions",
                b"{\"scenario\": \"chatbot\", \"paused\": true}",
            ),
        );
        assert_eq!(started.status, 201, "{}", started.body);
        assert!(started.body.contains("\"paused\""), "{}", started.body);
        // A held session never advances on its own...
        drain_sessions(&state);
        let status = route(&state, &request("GET", "/sessions/1", b""));
        assert!(status.body.contains("\"paused\""), "{}", status.body);
        // ...but still counts as live: its scenario cannot be deleted.
        assert_problem(
            &route(&state, &request("DELETE", "/scenarios/chatbot", b"")),
            409,
        );
        // Resume runs it to completion like any other session.
        let resumed = route(&state, &request("POST", "/sessions/1/resume", b""));
        assert_eq!(resumed.status, 200, "{}", resumed.body);
        drain_sessions(&state);
        let status = route(&state, &request("GET", "/sessions/1", b""));
        assert!(status.body.contains("\"finished\""), "{}", status.body);
    }

    #[test]
    fn metrics_exposes_service_session_and_tenant_series() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = anonymous_state(&service, &telemetry);
        route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
        route(
            &state,
            &request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}"),
        );
        drain_sessions(&state);
        let metrics = route(&state, &request("GET", "/metrics", b""));
        assert_eq!(metrics.status, 200);
        for needle in [
            "aarc_eval_requests_total ",
            "aarc_eval_cache_hits_total ",
            "aarc_eval_cached_entries ",
            "aarc_eval_inflight ",
            "aarc_eval_inflight_peak ",
            "aarc_admission_max_live_sessions ",
            "aarc_scenarios 1",
            "aarc_sessions_total 1",
            "aarc_tenant_scenarios{tenant=\"anonymous\"} 1",
            "aarc_tenant_sessions_live{tenant=\"anonymous\"} 0",
            "aarc_tenant_eval_requests_total{tenant=\"anonymous\"}",
            "aarc_tenant_http_requests_total{tenant=\"anonymous\"}",
            "aarc_session_rounds{session=\"1\"",
            "aarc_session_incumbent_cost{",
            "tenant=\"anonymous\"} ",
        ] {
            assert!(
                metrics.body.contains(needle),
                "missing `{needle}` in:\n{}",
                metrics.body
            );
        }
        // Session series put the session label first (the CI smoke greps
        // for it) and the tenant label last.
        let line = metrics
            .body
            .lines()
            .find(|l| l.starts_with("aarc_session_rounds{"))
            .unwrap();
        assert!(
            line.starts_with("aarc_session_rounds{session=\"1\","),
            "{line}"
        );
        assert!(line.contains(",tenant=\"anonymous\"}"), "{line}");
    }

    #[test]
    fn version_endpoint_reports_build_provenance() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = anonymous_state(&service, &telemetry);
        let reply = route(&state, &request("GET", "/version", b""));
        assert_eq!(reply.status, 200, "{}", reply.body);
        let info: VersionInfo = serde_json::from_str(&reply.body).unwrap();
        assert_eq!(info.name, "aarc");
        assert_eq!(info, VersionInfo::current());
        // Wrong method on /version is 405, not 404.
        assert_eq!(route(&state, &request("POST", "/version", b"")).status, 405);
    }

    #[test]
    fn debug_events_serves_the_flight_recorder_tail() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = anonymous_state(&service, &telemetry);
        route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
        route(
            &state,
            &request(
                "POST",
                "/sessions",
                b"{\"scenario\": \"chatbot\", \"method\": \"random\"}",
            ),
        );
        drain_sessions(&state);

        let reply = route(&state, &request("GET", "/debug/events", b""));
        assert_eq!(reply.status, 200, "{}", reply.body);
        let doc = serde_json::parse(&reply.body).unwrap();
        assert_eq!(uint(field(&doc, "capacity")) as usize, FLIGHT_CAPACITY);
        assert!(uint(field(&doc, "total")) > 0);
        let events = field(&doc, "events").as_seq().unwrap();
        assert!(!events.is_empty());
        let kinds: Vec<&str> = events
            .iter()
            .map(|e| field(e, "kind").as_str().unwrap())
            .collect();
        assert!(kinds.contains(&"scenario_registered"), "{kinds:?}");
        assert!(kinds.contains(&"session_started"), "{kinds:?}");
        assert!(kinds.contains(&"session_finished"), "{kinds:?}");
        // Events arrive oldest first with strictly increasing sequence
        // numbers.
        let seqs: Vec<u64> = events.iter().map(|e| uint(field(e, "seq"))).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "{seqs:?}");

        let limited = route(&state, &request("GET", "/debug/events?limit=2", b""));
        let doc = serde_json::parse(&limited.body).unwrap();
        let tail = field(&doc, "events").as_seq().unwrap();
        assert_eq!(tail.len(), 2);
        // The limited reply is the TAIL: its last event matches the
        // unlimited reply's last event.
        assert_eq!(
            uint(field(tail.last().unwrap(), "seq")),
            *seqs.last().unwrap()
        );

        let bad = route(&state, &request("GET", "/debug/events?limit=many", b""));
        assert_problem(&bad, 400);
    }

    #[test]
    fn session_trace_returns_per_round_convergence() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = anonymous_state(&service, &telemetry);
        route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
        route(
            &state,
            &request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}"),
        );
        assert_eq!(
            route(&state, &request("GET", "/sessions/9/trace", b"")).status,
            404
        );
        drain_sessions(&state);

        let reply = route(&state, &request("GET", "/sessions/1/trace", b""));
        assert_eq!(reply.status, 200, "{}", reply.body);
        let doc = serde_json::parse(&reply.body).unwrap();
        assert_eq!(uint(field(&doc, "id")), 1);
        assert_eq!(field(&doc, "scenario").as_str(), Some("chatbot"));
        assert_eq!(field(&doc, "state").as_str(), Some("finished"));
        let rounds = field(&doc, "rounds").as_seq().unwrap();
        assert!(!rounds.is_empty(), "finished session has a trace");
        // Rounds are strictly increasing, evals non-decreasing, and the
        // last point agrees with the session's final progress.
        let progress = {
            let sessions = state.sessions.lock().unwrap();
            sessions[&1].progress.clone()
        };
        let last = rounds.last().unwrap();
        assert_eq!(uint(field(last, "round")), progress.rounds);
        assert_eq!(uint(field(last, "evals")), progress.evals);
        assert!(
            !matches!(field(last, "incumbent_cost"), serde::Value::Null),
            "final point carries the incumbent"
        );
        for pair in rounds.windows(2) {
            assert!(uint(field(&pair[0], "round")) < uint(field(&pair[1], "round")));
            assert!(uint(field(&pair[0], "evals")) <= uint(field(&pair[1], "evals")));
        }
    }

    /// Validates the full text exposition: every sample belongs to a
    /// family announced by exactly one `# HELP` + `# TYPE` pair, family
    /// samples are consecutive, histogram buckets are cumulative with
    /// `+Inf` equal to `_count`, and the latency histograms of the
    /// telemetry recorder are present.
    #[test]
    fn metrics_exposition_is_well_formed() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        service
            .attach_telemetry(telemetry.eval_telemetry())
            .unwrap();
        let state = anonymous_state(&service, &telemetry);
        route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
        route(
            &state,
            &request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}"),
        );
        drain_sessions(&state);
        let metrics = route(&state, &request("GET", "/metrics", b""));
        assert_eq!(metrics.status, 200);
        let body = &metrics.body;

        let mut types: std::collections::BTreeMap<String, String> = Default::default();
        let mut helps: std::collections::BTreeSet<String> = Default::default();
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split(' ');
                let (name, kind) = (it.next().unwrap(), it.next().unwrap());
                assert!(
                    types.insert(name.to_owned(), kind.to_owned()).is_none(),
                    "duplicate TYPE for {name}"
                );
            } else if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap();
                assert!(helps.insert(name.to_owned()), "duplicate HELP for {name}");
            }
        }
        assert_eq!(
            types.keys().collect::<Vec<_>>(),
            helps.iter().collect::<Vec<_>>(),
            "every TYPE has a HELP and vice versa"
        );

        // Resolve each sample line to its family; histogram samples use
        // the _bucket/_sum/_count suffixes of the family name.
        let family_of = |sample_name: &str| -> String {
            for suffix in ["_bucket", "_sum", "_count"] {
                if let Some(base) = sample_name.strip_suffix(suffix) {
                    if types.get(base).map(String::as_str) == Some("histogram") {
                        return base.to_owned();
                    }
                }
            }
            sample_name.to_owned()
        };
        let mut order: Vec<String> = Vec::new();
        let mut bucket_runs: std::collections::BTreeMap<String, Vec<(f64, u64)>> =
            Default::default();
        let mut counts: std::collections::BTreeMap<String, u64> = Default::default();
        for line in body
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let name_end = line.find(['{', ' ']).unwrap();
            let name = &line[..name_end];
            let family = family_of(name);
            assert!(
                types.contains_key(&family),
                "sample `{name}` has no TYPE header"
            );
            if order.last() != Some(&family) {
                assert!(
                    !order.contains(&family),
                    "family {family} samples are not consecutive"
                );
                order.push(family.clone());
            }
            let value = line.rsplit(' ').next().unwrap();
            if name.ends_with("_bucket") && types[&family] == "histogram" {
                let le = line
                    .split("le=\"")
                    .nth(1)
                    .and_then(|s| s.split('"').next())
                    .expect("bucket has le label");
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>().unwrap()
                };
                bucket_runs
                    .entry(family.clone())
                    .or_default()
                    .push((bound, value.parse().unwrap()));
            } else if name.ends_with("_count") && types[&family] == "histogram" {
                counts.insert(family.clone(), value.parse().unwrap());
            }
        }

        let histogram_families: Vec<&String> = types
            .iter()
            .filter(|(_, kind)| *kind == "histogram")
            .map(|(name, _)| name)
            .collect();
        assert!(
            histogram_families.len() >= 3,
            "expected at least 3 histogram families, got {histogram_families:?}"
        );
        for family in &histogram_families {
            let buckets = &bucket_runs[*family];
            assert!(
                buckets
                    .windows(2)
                    .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1),
                "{family} buckets must be cumulative with increasing bounds"
            );
            let (last_bound, last_value) = *buckets.last().unwrap();
            assert!(last_bound.is_infinite(), "{family} is missing +Inf");
            assert_eq!(last_value, counts[*family], "{family} +Inf != _count");
        }
        // The session actually recorded into the eval histograms (the
        // method decides whether it probes or batches, so accept either).
        assert!(counts["aarc_eval_batch_seconds"] + counts["aarc_eval_probe_seconds"] > 0);
        assert!(body.contains("aarc_kernel_simulations_total "));
        assert!(body.contains("aarc_build_info{"));
        assert!(body.contains("aarc_session_rounds{session=\"1\""));
        assert!(body.contains("aarc_tenant_eval_requests_total{tenant=\"anonymous\"}"));
    }

    #[test]
    fn shutdown_blocks_admission_and_cancels_paused_sessions() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = anonymous_state(&service, &telemetry);
        route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
        route(
            &state,
            &request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}"),
        );
        route(&state, &request("POST", "/sessions/1/pause", b""));

        let reply = route(&state, &request("POST", "/shutdown", b""));
        assert_eq!(reply.status, 200);
        assert!(reply.body.contains("\"draining\""));
        let refused = route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
        assert_problem(&refused, 503);
        assert_eq!(refused.header("Retry-After"), Some("1"));
        let refused = route(
            &state,
            &request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}"),
        );
        let doc = assert_problem(&refused, 503);
        assert!(field(&doc, "detail")
            .as_str()
            .unwrap()
            .contains("shutting down"));
        // The paused session was marked for cancellation so the drain
        // completes.
        drain_sessions(&state);
        assert!(state.drained());
    }

    #[test]
    fn pause_after_shutdown_cannot_stall_the_drain() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = anonymous_state(&service, &telemetry);
        route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
        route(
            &state,
            &request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}"),
        );
        route(&state, &request("POST", "/shutdown", b""));
        // A pause landing after /shutdown is refused outright — it would
        // park the session and the daemon would never exit.
        let late_pause = route(&state, &request("POST", "/sessions/1/pause", b""));
        assert_problem(&late_pause, 503);
        // Even a pause that slipped in as a pending flag (e.g. while the
        // scheduler held the session) is converted to a cancellation by
        // the scheduler's shutdown sweep.
        {
            let mut sessions = state.sessions.lock().unwrap();
            sessions.get_mut(&1).unwrap().want_pause = true;
        }
        {
            let mut sessions = state.sessions.lock().unwrap();
            for slot in sessions.values_mut() {
                apply_controls_with_shutdown(slot, state.shutting_down());
            }
        }
        drain_sessions(&state);
        assert!(state.drained(), "pending pause must not park the session");
    }

    // -----------------------------------------------------------------
    // Durable state: WAL replay, checkpoints, crash recovery
    // -----------------------------------------------------------------

    /// A fresh, unique state directory for one persistence test.
    fn temp_state_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("aarc-serve-state-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// An anonymous-tenant state persisting into `dir`.
    fn persisted_state<'s>(
        service: &'s EvalService,
        telemetry: &'s ServeTelemetry,
        dir: &std::path::Path,
        checkpoint_every: u64,
    ) -> ServeState<'s> {
        ServeState::new(
            service,
            telemetry,
            TenantRegistry::single_anonymous(),
            DEFAULT_MAX_LIVE_SESSIONS,
            Some(StateDir::open(dir).unwrap()),
            checkpoint_every,
        )
    }

    /// Steps session `id` exactly `rounds` rounds (it must not finish),
    /// mirroring one scheduler round per step.
    fn step_rounds(state: &ServeState<'_>, id: u64, rounds: u64) {
        for _ in 0..rounds {
            let mut session = {
                let mut sessions = state.sessions.lock().unwrap();
                sessions.get_mut(&id).unwrap().session.take().unwrap()
            };
            let st = session.step();
            let mut sessions = state.sessions.lock().unwrap();
            let slot = sessions.get_mut(&id).unwrap();
            slot.progress = session.progress().clone();
            slot.trace
                .extend_from_slice(&session.convergence()[slot.trace.len()..]);
            assert_eq!(st, SessionState::Running, "session finished prematurely");
            slot.session = Some(session);
        }
    }

    #[test]
    fn tenant_routes_answer_503_while_recovering() {
        let dir = temp_state_dir("recovering-gate");
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = persisted_state(&service, &telemetry, &dir, 4);

        // Recovery has not run yet: tenant routes hold with a retryable
        // problem, operator endpoints stay up.
        let refused = route(&state, &request("GET", "/api/v1/scenarios", b""));
        let doc = assert_problem(&refused, 503);
        assert!(
            field(&doc, "type")
                .as_str()
                .unwrap()
                .ends_with("/recovering"),
            "{}",
            refused.body
        );
        assert_eq!(refused.header("Retry-After"), Some("1"));
        assert_eq!(route(&state, &request("GET", "/healthz", b"")).status, 200);
        let status = route(&state, &request("GET", "/api/v1/recovery", b""));
        assert_eq!(status.status, 200);
        assert!(status.body.contains("\"enabled\": true"), "{}", status.body);
        assert!(
            status.body.contains("\"in_progress\": true"),
            "{}",
            status.body
        );

        run_recovery(&state);
        assert!(!state.recovering());
        let listed = route(&state, &request("GET", "/api/v1/scenarios", b""));
        assert_eq!(listed.status, 200, "{}", listed.body);
        let status = route(&state, &request("GET", "/api/v1/recovery", b""));
        assert!(
            status.body.contains("\"in_progress\": false"),
            "{}",
            status.body
        );
        assert!(status.body.contains("\"report\""), "{}", status.body);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_endpoint_reports_disabled_without_state_dir() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = anonymous_state(&service, &telemetry);
        assert!(!state.recovering(), "no state dir, nothing to recover");
        let status = route(&state, &request("GET", "/api/v1/recovery", b""));
        assert_eq!(status.status, 200);
        assert!(
            status.body.contains("\"enabled\": false"),
            "{}",
            status.body
        );
        assert!(status.body.contains("\"report\": null"), "{}", status.body);
    }

    #[test]
    fn registry_wal_survives_restart_and_deletes_stay_deleted() {
        let dir = temp_state_dir("wal-restart");
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        {
            let state = persisted_state(&service, &telemetry, &dir, 4);
            run_recovery(&state);
            let created = route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
            assert_eq!(created.status, 201, "{}", created.body);
            // Simulated kill -9: the state is dropped without shutdown.
        }
        let state = persisted_state(&service, &telemetry, &dir, 4);
        run_recovery(&state);
        let report = state.recovery.lock().unwrap().clone().unwrap();
        assert_eq!(report.scenarios_recovered, 1, "{report:?}");
        assert!(report.quarantined.is_empty(), "{report:?}");
        let listed = route(&state, &request("GET", "/scenarios", b""));
        assert!(listed.body.contains("chatbot"), "{}", listed.body);

        // A durable delete must never resurrect.
        let deleted = route(&state, &request("DELETE", "/scenarios/chatbot", b""));
        assert_eq!(deleted.status, 200, "{}", deleted.body);
        drop(state);
        let state = persisted_state(&service, &telemetry, &dir, 4);
        run_recovery(&state);
        let report = state.recovery.lock().unwrap().clone().unwrap();
        assert_eq!(report.scenarios_recovered, 0, "{report:?}");
        let listed = route(&state, &request("GET", "/scenarios", b""));
        let doc = serde_json::parse(&listed.body).unwrap();
        assert_eq!(uint(field(&doc, "total")), 0, "{}", listed.body);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_session_resumes_bit_identical_after_restart() {
        let service = EvalService::with_threads(2);
        let telemetry = ServeTelemetry::quiet();
        // The uninterrupted reference run, no persistence involved.
        let reference = {
            let state = anonymous_state(&service, &telemetry);
            route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
            route(
                &state,
                &request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}"),
            );
            drain_sessions(&state);
            let report = route(&state, &request("GET", "/sessions/1/report", b""));
            assert_eq!(report.status, 200, "{}", report.body);
            report.body
        };

        // The interrupted run: a few rounds, a checkpoint, then a
        // simulated kill -9 (drop without shutdown).
        let dir = temp_state_dir("resume");
        {
            let state = persisted_state(&service, &telemetry, &dir, 4);
            run_recovery(&state);
            route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
            route(
                &state,
                &request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}"),
            );
            step_rounds(&state, 1, 3);
            let checkpoint = {
                let sessions = state.sessions.lock().unwrap();
                checkpoint_of(&state, &sessions[&1])
            };
            write_checkpoint(&state, &checkpoint);
        }

        // Restart: the session is resumed by deterministic replay and,
        // run to completion, must reproduce the uninterrupted bytes.
        let state = persisted_state(&service, &telemetry, &dir, 4);
        run_recovery(&state);
        let report = state.recovery.lock().unwrap().clone().unwrap();
        assert_eq!(report.sessions_resumed, 1, "{report:?}");
        assert!(report.quarantined.is_empty(), "{report:?}");
        {
            let sessions = state.sessions.lock().unwrap();
            let slot = &sessions[&1];
            assert_eq!(slot.phase, Phase::Running);
            assert_eq!(slot.progress.rounds, 3, "resumed at the checkpoint");
        }
        drain_sessions(&state);
        let resumed = route(&state, &request("GET", "/sessions/1/report", b""));
        assert_eq!(resumed.status, 200, "{}", resumed.body);
        assert_eq!(
            resumed.body, reference,
            "resumed session must be byte-identical to the uninterrupted run"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finished_sessions_are_restored_without_replay() {
        let dir = temp_state_dir("restore-terminal");
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let reference = {
            let state = persisted_state(&service, &telemetry, &dir, 4);
            run_recovery(&state);
            route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
            route(
                &state,
                &request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}"),
            );
            drain_sessions(&state);
            // The terminal checkpoint the scheduler (or the final drain
            // flush) would write.
            let checkpoint = {
                let sessions = state.sessions.lock().unwrap();
                checkpoint_of(&state, &sessions[&1])
            };
            write_checkpoint(&state, &checkpoint);
            route(&state, &request("GET", "/sessions/1/report", b"")).body
        };
        let state = persisted_state(&service, &telemetry, &dir, 4);
        run_recovery(&state);
        let report = state.recovery.lock().unwrap().clone().unwrap();
        assert_eq!(report.sessions_restored, 1, "{report:?}");
        assert_eq!(report.sessions_resumed, 0, "{report:?}");
        let restored = route(&state, &request("GET", "/sessions/1/report", b""));
        assert_eq!(restored.status, 200, "{}", restored.body);
        assert_eq!(restored.body, reference, "restored report bytes");
        // A new session must not collide with the recovered id.
        let started = route(
            &state,
            &request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}"),
        );
        assert_eq!(started.status, 201, "{}", started.body);
        assert!(started.body.contains("\"id\": 2"), "{}", started.body);
        drain_sessions(&state);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_state_files_are_quarantined_never_fatal() {
        let dir = temp_state_dir("corrupt");
        std::fs::create_dir_all(dir.join("checkpoints")).unwrap();
        std::fs::write(dir.join("checkpoints/session-0000000001.json"), b"{ torn").unwrap();
        std::fs::write(dir.join("checkpoints/session-0000000002.json"), b"").unwrap();
        std::fs::write(dir.join("registry.snapshot"), b"not json at all").unwrap();
        std::fs::write(dir.join("registry.wal"), b"garbage line\n").unwrap();

        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = persisted_state(&service, &telemetry, &dir, 4);
        run_recovery(&state);
        assert!(!state.recovering(), "recovery must complete");
        let report = state.recovery.lock().unwrap().clone().unwrap();
        assert_eq!(report.wal_lines_dropped, 1, "{report:?}");
        // The snapshot and both checkpoints are quarantined, with the
        // files moved out of the live layout.
        assert_eq!(report.quarantined.len(), 3, "{report:?}");
        assert!(!dir.join("checkpoints/session-0000000001.json").exists());
        assert!(dir.join("quarantine").read_dir().unwrap().count() >= 3);

        // Damage is degradation, not death: the daemon serves normally
        // and reports what it set aside.
        let created = route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
        assert_eq!(created.status, 201, "{}", created.body);
        let status = route(&state, &request("GET", "/api/v1/recovery", b""));
        assert!(status.body.contains("\"quarantined\""), "{}", status.body);
        let metrics = route(&state, &request("GET", "/metrics", b"")).body;
        assert!(
            metrics.contains("aarc_recovery_files_quarantined 3"),
            "recovery metrics must expose the damage"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_is_idempotent_and_flushes_live_checkpoints() {
        let dir = temp_state_dir("shutdown-flush");
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = persisted_state(&service, &telemetry, &dir, 1_000_000);
        run_recovery(&state);
        route(&state, &request("POST", "/scenarios", &chatbot_yaml()));
        route(
            &state,
            &request("POST", "/sessions", b"{\"scenario\": \"chatbot\"}"),
        );
        // The cadence is huge, so nothing has been checkpointed yet.
        step_rounds(&state, 1, 2);
        assert!(!dir.join("checkpoints/session-0000000001.json").exists());

        let first = route(&state, &request("POST", "/shutdown", b""));
        assert_eq!(first.status, 200, "{}", first.body);
        assert!(first.body.contains("\"draining\": 1"), "{}", first.body);
        // Shutdown flushed the live session's checkpoint.
        assert!(dir.join("checkpoints/session-0000000001.json").exists());
        // A retrying supervisor gets 200 again, never an error.
        let second = route(&state, &request("POST", "/shutdown", b""));
        assert_eq!(second.status, 200, "{}", second.body);
        drain_sessions(&state);
        assert!(state.drained());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_omit_recovery_families_without_state_dir() {
        let service = EvalService::with_threads(1);
        let telemetry = ServeTelemetry::quiet();
        let state = anonymous_state(&service, &telemetry);
        let metrics = route(&state, &request("GET", "/metrics", b"")).body;
        assert!(
            !metrics.contains("aarc_recovery_"),
            "recovery families must not appear without --state-dir"
        );
    }
}
