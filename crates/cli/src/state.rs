//! Durable daemon state: the `--state-dir` persistence layer of
//! `aarc serve`.
//!
//! Layout of a state directory:
//!
//! ```text
//! <state-dir>/
//!   registry.wal        # JSON-lines write-ahead log of scenario ops
//!   registry.snapshot   # compacted registry (atomic-rename JSON)
//!   tenants.cfg         # verbatim copy of the --tenants file
//!   checkpoints/        # one session-<id>.json per session
//!   quarantine/         # unreadable state files moved aside at recovery
//! ```
//!
//! Every file is written through [`aarc_spec::atomic_write`] (temp +
//! fsync + rename) except the WAL, which is append-only and fsynced per
//! record — a scenario upload or delete is durable *before* the 2xx
//! leaves the daemon. Recovery never trusts a file: torn WAL tails are
//! dropped and counted, corrupt snapshots and checkpoints are moved to
//! `quarantine/` and surfaced through `GET /api/v1/recovery`,
//! `aarc_recovery_*` metrics and the flight recorder — the daemon
//! degrades, it does not crash.
//!
//! Session checkpoints are **provenance records, not memory dumps**: the
//! search state machines (`PathConfigState`, the BO surrogate, the RNG
//! streams) are deliberately not serialized. Because every strategy's
//! ask sequence is a pure function of the results it was told — the
//! determinism contract the byte-golden suite pins — a restarted daemon
//! rebuilds the strategy from the persisted spec and replays the
//! checkpointed number of rounds through the (memoized) evaluation
//! service, then verifies the replayed progress and convergence trace
//! match the checkpoint before re-admitting the session. A resumed
//! session therefore finishes **bit-identically** to one that was never
//! interrupted.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use aarc_core::{RoundPoint, SessionProgress};
use aarc_spec::atomic_write;

/// Version stamped into every WAL record, registry snapshot and session
/// checkpoint. Readers accept their own version only; newer or older
/// files are quarantined, never guessed at.
pub const STATE_VERSION: u64 = 1;

/// Default `--checkpoint-every`: a live session's checkpoint is
/// refreshed after every this-many completed rounds (and always at a
/// terminal phase and on shutdown).
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 8;

/// One scenario-registry operation, appended to `registry.wal` as a
/// single JSON line before the mutation's 2xx is sent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalRecord {
    /// Format version ([`STATE_VERSION`]).
    pub v: u64,
    /// `"upload"` or `"delete"`.
    pub op: String,
    /// Owning tenant, by name (names are stable across restarts; ids
    /// are positional in the registry of the moment).
    pub tenant: String,
    /// Scenario name within the tenant's namespace.
    pub scenario: String,
    /// Canonical YAML re-export of the uploaded spec; present on
    /// `upload`, absent on `delete`.
    #[serde(default)]
    pub spec_yaml: Option<String>,
}

/// One recovered (or to-be-persisted) scenario: the WAL/snapshot payload
/// the registry is rebuilt from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersistedScenario {
    pub tenant: String,
    pub scenario: String,
    pub spec_yaml: String,
}

/// The compacted registry written to `registry.snapshot` at startup
/// (after WAL replay) so the WAL never grows without bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    pub v: u64,
    #[serde(default)]
    pub scenarios: Vec<PersistedScenario>,
}

/// Terminal summary embedded in a finished session's checkpoint
/// (mirrors the serve layer's session summary document).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointSummary {
    pub final_cost: f64,
    pub final_makespan_ms: f64,
    pub meets_slo: bool,
    pub samples: u64,
}

/// One session's durable state: identity + provenance (enough to rebuild
/// the strategy and replay it) + the progress/trace the replay is
/// verified against + the terminal result, if any.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionCheckpoint {
    /// Format version ([`STATE_VERSION`]).
    pub v: u64,
    pub id: u64,
    /// Owning tenant, by name.
    pub tenant: String,
    pub scenario: String,
    pub method: String,
    pub class: String,
    pub slo_ms: f64,
    /// Phase label (`running`/`paused`/`finished`/`failed`/`cancelled`).
    pub phase: String,
    /// Completed rounds — the number of steps recovery replays.
    pub rounds: u64,
    /// Progress snapshot at checkpoint time; the replay must reproduce
    /// it exactly or the checkpoint is quarantined.
    pub progress: SessionProgress,
    /// Convergence trace at checkpoint time; verified like `progress`.
    #[serde(default)]
    pub trace: Vec<RoundPoint>,
    /// Exact final-report bytes of a finished session.
    #[serde(default)]
    pub report_json: Option<String>,
    #[serde(default)]
    pub summary: Option<CheckpointSummary>,
    #[serde(default)]
    pub error: Option<String>,
}

/// One state file recovery could not use, moved to `quarantine/`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QuarantinedFile {
    /// File name (relative to the state dir) at quarantine time.
    pub file: String,
    /// Why it was set aside.
    pub reason: String,
}

/// Result of reading the registry back: the surviving scenarios plus the
/// damage report.
#[derive(Debug, Default)]
pub struct RegistryLoad {
    /// Scenarios in (re)upload order after snapshot + WAL replay.
    pub scenarios: Vec<PersistedScenario>,
    /// WAL records applied on top of the snapshot.
    pub records_applied: u64,
    /// WAL lines dropped as torn or unparseable.
    pub lines_dropped: u64,
    /// Files (snapshot, WAL) moved to quarantine wholesale.
    pub quarantined: Vec<QuarantinedFile>,
}

/// A `--state-dir` opened for the lifetime of one daemon: path layout
/// plus the append handle of the write-ahead log.
pub struct StateDir {
    root: PathBuf,
    wal: Mutex<File>,
}

impl StateDir {
    /// Opens (creating if needed) a state directory and its WAL.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory tree or the
    /// WAL cannot be created — a daemon explicitly asked for durability
    /// it cannot provide should fail loudly at startup, not degrade.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        std::fs::create_dir_all(root.join("checkpoints"))?;
        std::fs::create_dir_all(root.join("quarantine"))?;
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(root.join("registry.wal"))?;
        Ok(StateDir {
            root,
            wal: Mutex::new(wal),
        })
    }

    /// The directory this state lives in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn wal_path(&self) -> PathBuf {
        self.root.join("registry.wal")
    }

    fn snapshot_path(&self) -> PathBuf {
        self.root.join("registry.snapshot")
    }

    fn tenants_path(&self) -> PathBuf {
        self.root.join("tenants.cfg")
    }

    fn checkpoints_dir(&self) -> PathBuf {
        self.root.join("checkpoints")
    }

    fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    fn checkpoint_path(&self, id: u64) -> PathBuf {
        self.checkpoints_dir()
            .join(format!("session-{id:010}.json"))
    }

    /// Appends one record to the WAL and fsyncs it — the durability
    /// point of a scenario upload/delete, reached *before* the 2xx.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; the caller must then fail the
    /// request instead of acknowledging it.
    pub fn append_wal(&self, record: &WalRecord) -> std::io::Result<()> {
        let mut line = serde_json::to_string(record)
            .map_err(|e| std::io::Error::other(format!("WAL record serialization: {e}")))?;
        line.push('\n');
        let mut wal = self.wal.lock().expect("WAL handle poisoned");
        wal.write_all(line.as_bytes())?;
        wal.sync_data()
    }

    /// Reads the registry back: snapshot first (quarantined if corrupt),
    /// then the WAL replayed over it line by line. Unparseable or
    /// wrong-version lines — a torn tail after a crash mid-append is the
    /// expected case — are dropped and counted, never fatal.
    pub fn load_registry(&self) -> RegistryLoad {
        let mut load = RegistryLoad::default();
        match std::fs::read_to_string(self.snapshot_path()) {
            Err(_) => {} // no snapshot yet — first boot
            Ok(text) => match serde_json::from_str::<RegistrySnapshot>(&text) {
                Ok(snapshot) if snapshot.v == STATE_VERSION => {
                    load.scenarios = snapshot.scenarios;
                }
                Ok(snapshot) => {
                    self.quarantine_file(
                        &self.snapshot_path(),
                        format!(
                            "registry.snapshot has version {} (reader: {STATE_VERSION})",
                            snapshot.v
                        ),
                        &mut load.quarantined,
                    );
                }
                Err(e) => {
                    self.quarantine_file(
                        &self.snapshot_path(),
                        format!("registry.snapshot is corrupt: {e}"),
                        &mut load.quarantined,
                    );
                }
            },
        }
        let Ok(wal_text) = std::fs::read_to_string(self.wal_path()) else {
            return load;
        };
        for line in wal_text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let record = match serde_json::from_str::<WalRecord>(line) {
                Ok(record) if record.v == STATE_VERSION => record,
                _ => {
                    load.lines_dropped += 1;
                    continue;
                }
            };
            match (record.op.as_str(), record.spec_yaml) {
                ("upload", Some(spec_yaml)) => {
                    load.scenarios
                        .retain(|s| !(s.tenant == record.tenant && s.scenario == record.scenario));
                    load.scenarios.push(PersistedScenario {
                        tenant: record.tenant,
                        scenario: record.scenario,
                        spec_yaml,
                    });
                    load.records_applied += 1;
                }
                ("delete", _) => {
                    load.scenarios
                        .retain(|s| !(s.tenant == record.tenant && s.scenario == record.scenario));
                    load.records_applied += 1;
                }
                _ => load.lines_dropped += 1,
            }
        }
        load
    }

    /// Compacts the registry: writes `scenarios` as the new snapshot
    /// (atomic rename) and truncates the WAL. Run once per startup,
    /// after [`load_registry`](Self::load_registry) replayed the old log.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error of the snapshot write or WAL
    /// truncation.
    pub fn compact(&self, scenarios: &[PersistedScenario]) -> std::io::Result<()> {
        let snapshot = RegistrySnapshot {
            v: STATE_VERSION,
            scenarios: scenarios.to_vec(),
        };
        let mut text = serde_json::to_string_pretty(&snapshot)
            .map_err(|e| std::io::Error::other(format!("snapshot serialization: {e}")))?;
        text.push('\n');
        atomic_write(self.snapshot_path(), text.as_bytes())?;
        // Only truncate the log once the snapshot that subsumes it is
        // durable on disk.
        let mut wal = self.wal.lock().expect("WAL handle poisoned");
        let fresh = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(self.wal_path())?;
        fresh.sync_all()?;
        *wal = OpenOptions::new().append(true).open(self.wal_path())?;
        Ok(())
    }

    /// Writes (or refreshes) one session checkpoint atomically.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write_checkpoint(&self, checkpoint: &SessionCheckpoint) -> std::io::Result<()> {
        let mut text = serde_json::to_string_pretty(checkpoint)
            .map_err(|e| std::io::Error::other(format!("checkpoint serialization: {e}")))?;
        text.push('\n');
        atomic_write(self.checkpoint_path(checkpoint.id), text.as_bytes())
    }

    /// Reads every checkpoint file back, in session-id (= file name)
    /// order. Each entry is the file path plus either the parsed
    /// checkpoint or the reason it could not be used — the caller
    /// decides whether to replay or [`quarantine`](Self::quarantine).
    pub fn load_checkpoints(&self) -> Vec<(PathBuf, Result<SessionCheckpoint, String>)> {
        let Ok(entries) = std::fs::read_dir(self.checkpoints_dir()) else {
            return Vec::new();
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_file())
            .collect();
        paths.sort();
        paths
            .into_iter()
            .map(|path| {
                let parsed = std::fs::read_to_string(&path)
                    .map_err(|e| format!("unreadable: {e}"))
                    .and_then(|text| {
                        if text.trim().is_empty() {
                            return Err("empty file".to_owned());
                        }
                        serde_json::from_str::<SessionCheckpoint>(&text)
                            .map_err(|e| format!("corrupt: {e}"))
                    })
                    .and_then(|cp| {
                        if cp.v == STATE_VERSION {
                            Ok(cp)
                        } else {
                            Err(format!("version {} (reader: {STATE_VERSION})", cp.v))
                        }
                    });
                (path, parsed)
            })
            .collect()
    }

    /// Moves a file into `quarantine/`, recording why. Best-effort: if
    /// even the move fails, the file is reported as quarantined anyway
    /// (recovery will not touch it again this boot).
    pub fn quarantine(&self, path: &Path, reason: impl Into<String>) -> QuarantinedFile {
        let mut quarantined = Vec::with_capacity(1);
        self.quarantine_file(path, reason.into(), &mut quarantined);
        quarantined.pop().expect("quarantine_file always reports")
    }

    fn quarantine_file(&self, path: &Path, reason: String, out: &mut Vec<QuarantinedFile>) {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let mut dest = self.quarantine_dir().join(&name);
        // Never overwrite an earlier quarantined generation.
        let mut suffix = 1u32;
        while dest.exists() {
            dest = self.quarantine_dir().join(format!("{name}.{suffix}"));
            suffix += 1;
        }
        let _ = std::fs::rename(path, &dest);
        out.push(QuarantinedFile { file: name, reason });
    }

    /// Persists a verbatim copy of the tenants config so a restart
    /// without `--tenants` keeps the same namespaces and quotas.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn save_tenants(&self, raw: &[u8]) -> std::io::Result<()> {
        atomic_write(self.tenants_path(), raw)
    }

    /// The persisted tenants config, if one exists.
    pub fn load_tenants(&self) -> Option<String> {
        std::fs::read_to_string(self.tenants_path()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_state_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("aarc-state-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn upload(tenant: &str, scenario: &str, yaml: &str) -> WalRecord {
        WalRecord {
            v: STATE_VERSION,
            op: "upload".to_owned(),
            tenant: tenant.to_owned(),
            scenario: scenario.to_owned(),
            spec_yaml: Some(yaml.to_owned()),
        }
    }

    fn delete(tenant: &str, scenario: &str) -> WalRecord {
        WalRecord {
            v: STATE_VERSION,
            op: "delete".to_owned(),
            tenant: tenant.to_owned(),
            scenario: scenario.to_owned(),
            spec_yaml: None,
        }
    }

    fn checkpoint(id: u64) -> SessionCheckpoint {
        SessionCheckpoint {
            v: STATE_VERSION,
            id,
            tenant: "anonymous".to_owned(),
            scenario: "chatbot".to_owned(),
            method: "aarc".to_owned(),
            class: "nominal".to_owned(),
            slo_ms: 900.0,
            phase: "running".to_owned(),
            rounds: 3,
            progress: SessionProgress {
                rounds: 3,
                evals: 11,
                incumbent: None,
            },
            trace: vec![RoundPoint {
                round: 3,
                evals: 11,
                incumbent_cost: Some(1.25),
                incumbent_makespan_ms: Some(812.0),
            }],
            report_json: None,
            summary: None,
            error: None,
        }
    }

    #[test]
    fn wal_replay_rebuilds_uploads_and_deletes_in_order() {
        let root = temp_state_dir("replay");
        let state = StateDir::open(&root).unwrap();
        state.append_wal(&upload("acme", "a", "spec-a")).unwrap();
        state.append_wal(&upload("acme", "b", "spec-b")).unwrap();
        state.append_wal(&upload("other", "a", "spec-a2")).unwrap();
        state.append_wal(&delete("acme", "a")).unwrap();
        let load = state.load_registry();
        assert_eq!(load.records_applied, 4);
        assert_eq!(load.lines_dropped, 0);
        assert!(load.quarantined.is_empty());
        let names: Vec<(&str, &str)> = load
            .scenarios
            .iter()
            .map(|s| (s.tenant.as_str(), s.scenario.as_str()))
            .collect();
        assert_eq!(names, vec![("acme", "b"), ("other", "a")]);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn torn_wal_tail_is_dropped_not_fatal() {
        let root = temp_state_dir("torn");
        let state = StateDir::open(&root).unwrap();
        state.append_wal(&upload("t", "keep", "spec")).unwrap();
        // Simulate a crash mid-append: a truncated JSON prefix with no
        // trailing newline.
        {
            let mut wal = OpenOptions::new()
                .append(true)
                .open(root.join("registry.wal"))
                .unwrap();
            wal.write_all(b"{\"v\":1,\"op\":\"upload\",\"tena").unwrap();
        }
        let load = state.load_registry();
        assert_eq!(load.records_applied, 1);
        assert_eq!(load.lines_dropped, 1);
        assert_eq!(load.scenarios.len(), 1);
        assert_eq!(load.scenarios[0].scenario, "keep");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn empty_and_garbage_wal_lines_never_crash() {
        let root = temp_state_dir("garbage");
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(
            root.join("registry.wal"),
            "\n\nnot json at all\n{\"v\": 99, \"op\": \"upload\"}\n\x00\x01\x02\n",
        )
        .unwrap();
        let state = StateDir::open(&root).unwrap();
        let load = state.load_registry();
        assert_eq!(load.records_applied, 0);
        assert_eq!(load.lines_dropped, 3);
        assert!(load.scenarios.is_empty());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_snapshot_is_quarantined_and_wal_still_replays() {
        let root = temp_state_dir("corrupt-snapshot");
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join("registry.snapshot"), "{ definitely not json").unwrap();
        let state = StateDir::open(&root).unwrap();
        state.append_wal(&upload("t", "s", "spec")).unwrap();
        let load = state.load_registry();
        assert_eq!(load.quarantined.len(), 1);
        assert!(load.quarantined[0].reason.contains("corrupt"));
        assert_eq!(load.scenarios.len(), 1);
        // The corrupt file moved aside and will not poison the next boot.
        assert!(!root.join("registry.snapshot").exists());
        assert!(root.join("quarantine/registry.snapshot").exists());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn future_snapshot_version_is_quarantined_not_guessed() {
        let root = temp_state_dir("future-snapshot");
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(
            root.join("registry.snapshot"),
            "{\"v\": 2, \"scenarios\": []}",
        )
        .unwrap();
        let state = StateDir::open(&root).unwrap();
        let load = state.load_registry();
        assert_eq!(load.quarantined.len(), 1);
        assert!(load.quarantined[0].reason.contains("version 2"));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn compact_subsumes_wal_into_snapshot() {
        let root = temp_state_dir("compact");
        let state = StateDir::open(&root).unwrap();
        state.append_wal(&upload("t", "a", "spec-a")).unwrap();
        state.append_wal(&upload("t", "b", "spec-b")).unwrap();
        state.append_wal(&delete("t", "a")).unwrap();
        let load = state.load_registry();
        state.compact(&load.scenarios).unwrap();
        assert_eq!(
            std::fs::read_to_string(root.join("registry.wal")).unwrap(),
            ""
        );
        // A fresh reader sees the compacted state, and new appends land
        // in the truncated WAL.
        state.append_wal(&upload("t", "c", "spec-c")).unwrap();
        let reloaded = StateDir::open(&root).unwrap().load_registry();
        let names: Vec<&str> = reloaded
            .scenarios
            .iter()
            .map(|s| s.scenario.as_str())
            .collect();
        assert_eq!(names, vec!["b", "c"]);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn checkpoints_round_trip_in_id_order() {
        let root = temp_state_dir("checkpoints");
        let state = StateDir::open(&root).unwrap();
        state.write_checkpoint(&checkpoint(12)).unwrap();
        state.write_checkpoint(&checkpoint(2)).unwrap();
        let loaded = state.load_checkpoints();
        let ids: Vec<u64> = loaded
            .iter()
            .map(|(_, cp)| cp.as_ref().unwrap().id)
            .collect();
        assert_eq!(ids, vec![2, 12], "padded file names keep id order");
        assert_eq!(*loaded[1].1.as_ref().unwrap(), checkpoint(12));
        // Refreshing a checkpoint replaces it (atomic rename, same path).
        let mut updated = checkpoint(2);
        updated.rounds = 9;
        state.write_checkpoint(&updated).unwrap();
        assert_eq!(state.load_checkpoints().len(), 2);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_truncated_and_empty_checkpoints_report_reasons() {
        let root = temp_state_dir("bad-checkpoints");
        let state = StateDir::open(&root).unwrap();
        state.write_checkpoint(&checkpoint(1)).unwrap();
        std::fs::write(root.join("checkpoints/session-0000000002.json"), "").unwrap();
        std::fs::write(
            root.join("checkpoints/session-0000000003.json"),
            "{\"v\": 1, \"id\": 3,",
        )
        .unwrap();
        let mut future = checkpoint(4);
        future.v = 2;
        state.write_checkpoint(&future).unwrap();
        let loaded = state.load_checkpoints();
        assert_eq!(loaded.len(), 4);
        assert!(loaded[0].1.is_ok());
        assert_eq!(loaded[1].1.as_ref().unwrap_err(), "empty file");
        assert!(loaded[2].1.as_ref().unwrap_err().starts_with("corrupt"));
        assert!(loaded[3].1.as_ref().unwrap_err().contains("version 2"));
        // Quarantining the bad ones leaves only the good checkpoint.
        for (path, result) in &loaded {
            if let Err(reason) = result {
                state.quarantine(path, reason.clone());
            }
        }
        assert_eq!(state.load_checkpoints().len(), 1);
        assert_eq!(
            std::fs::read_dir(root.join("quarantine")).unwrap().count(),
            3
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn quarantine_never_overwrites_earlier_generations() {
        let root = temp_state_dir("quarantine-gen");
        let state = StateDir::open(&root).unwrap();
        for generation in 0..3 {
            let path = root.join("victim.json");
            std::fs::write(&path, format!("gen {generation}")).unwrap();
            let entry = state.quarantine(&path, "test");
            assert_eq!(entry.file, "victim.json");
        }
        assert_eq!(
            std::fs::read_dir(root.join("quarantine")).unwrap().count(),
            3
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn tenants_config_round_trips() {
        let root = temp_state_dir("tenants");
        let state = StateDir::open(&root).unwrap();
        assert!(state.load_tenants().is_none());
        state.save_tenants(b"tenants:\n  - name: acme\n").unwrap();
        assert_eq!(
            state.load_tenants().as_deref(),
            Some("tenants:\n  - name: acme\n")
        );
        std::fs::remove_dir_all(&root).ok();
    }

    /// The bench-schema evolution discipline, applied to checkpoints: a
    /// v1 checkpoint with optional keys stripped (simulating an older
    /// writer read by this, newer, reader) still parses, with defaults.
    #[test]
    fn v1_checkpoint_with_stripped_optional_keys_parses_under_this_reader() {
        fn strip_key(v: &mut serde::Value, key: &str) {
            match v {
                serde::Value::Map(entries) => {
                    entries.retain(|(k, _)| k != key);
                    for (_, child) in entries.iter_mut() {
                        strip_key(child, key);
                    }
                }
                serde::Value::Seq(items) => {
                    for item in items.iter_mut() {
                        strip_key(item, key);
                    }
                }
                _ => {}
            }
        }
        let full = checkpoint(7);
        for optional in ["trace", "report_json", "summary", "error"] {
            let mut value = serde_json::to_value(&full);
            strip_key(&mut value, optional);
            let text = serde_json::to_string(&value).unwrap();
            let reparsed: SessionCheckpoint = serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("checkpoint without `{optional}` must parse: {e}"));
            assert_eq!(reparsed.id, 7);
            assert_eq!(reparsed.progress, full.progress);
        }
        // Same for the WAL record's optional payload.
        let mut value = serde_json::to_value(&upload("t", "s", "spec"));
        strip_key(&mut value, "spec_yaml");
        let record: WalRecord =
            serde_json::from_str(&serde_json::to_string(&value).unwrap()).unwrap();
        assert_eq!(record.spec_yaml, None);
        // And the registry snapshot's scenario list.
        let mut value = serde_json::to_value(&RegistrySnapshot {
            v: STATE_VERSION,
            scenarios: vec![],
        });
        strip_key(&mut value, "scenarios");
        let snapshot: RegistrySnapshot =
            serde_json::from_str(&serde_json::to_string(&value).unwrap()).unwrap();
        assert!(snapshot.scenarios.is_empty());
    }
}
