//! A minimal blocking HTTP/1.1 client for talking to `aarc serve` — the
//! mirror image of [`crate::http`], used by the loadtest harness and by
//! integration tests. One request per connection (`Connection: close`, the
//! daemon's contract), bodies sized by `Content-Length`, responses read to
//! EOF and parsed just enough to recover the status line, headers and
//! body.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code from the status line.
    pub status: u16,
    /// Response headers as `(lowercase-name, trimmed-value)` pairs.
    pub headers: Vec<(String, String)>,
    /// Response body bytes, decoded as UTF-8 (the daemon only ever sends
    /// JSON or text).
    pub body: String,
}

impl HttpReply {
    /// The first value of a header, if present (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the full response. `api_key`, when given,
/// is sent as `X-Api-Key`. The timeout bounds both the connect and each
/// read/write.
///
/// # Errors
///
/// Returns a message on connect/read/write failure or an unparseable
/// response; non-2xx statuses are NOT errors (callers inspect `status`).
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    api_key: Option<&str>,
    body: &[u8],
    timeout: Duration,
) -> Result<HttpReply, String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, timeout).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    if let Some(key) = api_key {
        head.push_str("X-Api-Key: ");
        head.push_str(key);
        head.push_str("\r\n");
    }
    head.push_str(&format!(
        "Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    ));
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("write {method} {path}: {e}"))?;
    let mut raw = Vec::with_capacity(1024);
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read {method} {path}: {e}"))?;
    parse_reply(&raw).map_err(|e| format!("{method} {path}: {e}"))
}

/// Parses a full `Connection: close` response held in memory.
fn parse_reply(raw: &[u8]) -> Result<HttpReply, String> {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("response has no header terminator")?;
    let header_text =
        std::str::from_utf8(&raw[..header_end]).map_err(|_| "response headers are not utf-8")?;
    let mut lines = header_text.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    // `HTTP/1.1 200 OK` — the code is the second token.
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line `{status_line}`"))?;
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(name, value)| (name.trim().to_ascii_lowercase(), value.trim().to_owned()))
        .collect();
    let body = String::from_utf8(raw[header_end + 4..].to_vec())
        .map_err(|_| "response body is not utf-8")?;
    Ok(HttpReply {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/problem+json\r\nRetry-After: 2\r\nConnection: close\r\n\r\n{\"status\":429}";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 429);
        assert_eq!(reply.header("retry-after"), Some("2"));
        assert_eq!(reply.header("Retry-After"), Some("2"));
        assert_eq!(reply.body, "{\"status\":429}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_reply(b"not http").is_err());
        assert!(parse_reply(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }

    #[test]
    fn round_trips_against_the_daemon_contract() {
        // A tiny one-shot server speaking the daemon's exact wire format.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let request = crate::http::read_request(&mut stream).unwrap().unwrap();
            assert_eq!(request.method, "POST");
            assert_eq!(request.path, "/api/v1/sessions");
            assert_eq!(request.header("x-api-key"), Some("k1"));
            assert_eq!(request.body, b"{\"scenario\":\"s\"}");
            crate::http::Response::json(201, "{\"id\":1}".to_owned())
                .write_to(&mut stream)
                .unwrap();
        });
        let reply = http_request(
            addr,
            "POST",
            "/api/v1/sessions",
            Some("k1"),
            b"{\"scenario\":\"s\"}",
            Duration::from_secs(5),
        )
        .unwrap();
        server.join().unwrap();
        assert_eq!(reply.status, 201);
        assert_eq!(reply.body, "{\"id\":1}");
    }
}
