//! A minimal blocking HTTP/1.1 client for talking to `aarc serve` — the
//! mirror image of [`crate::http`], used by the loadtest harness and by
//! integration tests. One request per connection (`Connection: close`, the
//! daemon's contract), bodies sized by `Content-Length`, responses read to
//! EOF and parsed just enough to recover the status line, headers and
//! body.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code from the status line.
    pub status: u16,
    /// Response headers as `(lowercase-name, trimmed-value)` pairs.
    pub headers: Vec<(String, String)>,
    /// Response body bytes, decoded as UTF-8 (the daemon only ever sends
    /// JSON or text).
    pub body: String,
}

impl HttpReply {
    /// The first value of a header, if present (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the full response. `api_key`, when given,
/// is sent as `X-Api-Key`. The timeout bounds both the connect and each
/// read/write.
///
/// # Errors
///
/// Returns a message on connect/read/write failure or an unparseable
/// response; non-2xx statuses are NOT errors (callers inspect `status`).
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    api_key: Option<&str>,
    body: &[u8],
    timeout: Duration,
) -> Result<HttpReply, String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, timeout).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    if let Some(key) = api_key {
        head.push_str("X-Api-Key: ");
        head.push_str(key);
        head.push_str("\r\n");
    }
    head.push_str(&format!(
        "Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    ));
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("write {method} {path}: {e}"))?;
    let mut raw = Vec::with_capacity(1024);
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read {method} {path}: {e}"))?;
    parse_reply(&raw).map_err(|e| format!("{method} {path}: {e}"))
}

/// Backoff policy of [`http_request_retrying`]: how many times to retry
/// a retryable (429/503) reply and how long to wait between attempts.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Extra attempts after the first (0 disables retrying).
    pub max_retries: u32,
    /// Base delay of the exponential schedule (retry 0 waits ~`base`,
    /// retry 1 ~`2*base`, ...), used when the server sends no
    /// `Retry-After`.
    pub base: Duration,
    /// Hard cap on any single delay — including a server-suggested
    /// `Retry-After`, so a `Retry-After: 60` cannot stall a caller that
    /// budgeted milliseconds.
    pub cap: Duration,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

/// A reply that may have taken several attempts to obtain.
#[derive(Debug, Clone)]
pub struct RetriedReply {
    /// The final reply (the first non-retryable one, or the last attempt).
    pub reply: HttpReply,
    /// Retries performed after the first attempt.
    pub retries: u32,
}

/// SplitMix64 — the deterministic jitter source (no RNG state to carry).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Computes the delay before retry `attempt` (0-based). The server's
/// `Retry-After` suggestion wins over the exponential schedule when
/// present; either way the delay is capped at `policy.cap` and spread
/// with deterministic half-jitter (uniform in `[d/2, d]`) so a fleet of
/// rejected clients does not retry in lockstep.
pub fn backoff_delay(
    policy: &RetryPolicy,
    attempt: u32,
    retry_after: Option<Duration>,
) -> Duration {
    let raw = match retry_after {
        Some(suggested) => suggested,
        None => policy.base.saturating_mul(1u32 << attempt.min(16)),
    };
    let capped = raw.min(policy.cap);
    let nanos = capped.as_nanos().min(u64::MAX as u128) as u64;
    if nanos == 0 {
        return Duration::ZERO;
    }
    let spread = nanos / 2;
    let jitter =
        splitmix64(policy.seed ^ u64::from(attempt).wrapping_mul(0x100_0000_01b3)) % (spread + 1);
    Duration::from_nanos(nanos - spread + jitter)
}

/// [`http_request`] with admission-control awareness: a 429 or 503 reply
/// is retried up to `policy.max_retries` times, honoring the daemon's
/// `Retry-After` header (capped and jittered per [`backoff_delay`]).
/// Transport errors are NOT retried — the caller decides whether a dead
/// daemon is fatal. Any other status (2xx, 4xx) is final.
///
/// # Errors
///
/// Returns a message on connect/read/write failure or an unparseable
/// response, exactly like [`http_request`].
pub fn http_request_retrying(
    addr: SocketAddr,
    method: &str,
    path: &str,
    api_key: Option<&str>,
    body: &[u8],
    timeout: Duration,
    policy: &RetryPolicy,
) -> Result<RetriedReply, String> {
    let mut attempt = 0u32;
    loop {
        let reply = http_request(addr, method, path, api_key, body, timeout)?;
        let retryable = reply.status == 429 || reply.status == 503;
        if !retryable || attempt >= policy.max_retries {
            return Ok(RetriedReply {
                reply,
                retries: attempt,
            });
        }
        let retry_after = reply
            .header("retry-after")
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(Duration::from_secs);
        std::thread::sleep(backoff_delay(policy, attempt, retry_after));
        attempt += 1;
    }
}

/// Parses a full `Connection: close` response held in memory.
fn parse_reply(raw: &[u8]) -> Result<HttpReply, String> {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("response has no header terminator")?;
    let header_text =
        std::str::from_utf8(&raw[..header_end]).map_err(|_| "response headers are not utf-8")?;
    let mut lines = header_text.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    // `HTTP/1.1 200 OK` — the code is the second token.
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line `{status_line}`"))?;
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(name, value)| (name.trim().to_ascii_lowercase(), value.trim().to_owned()))
        .collect();
    let body = String::from_utf8(raw[header_end + 4..].to_vec())
        .map_err(|_| "response body is not utf-8")?;
    Ok(HttpReply {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/problem+json\r\nRetry-After: 2\r\nConnection: close\r\n\r\n{\"status\":429}";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 429);
        assert_eq!(reply.header("retry-after"), Some("2"));
        assert_eq!(reply.header("Retry-After"), Some("2"));
        assert_eq!(reply.body, "{\"status\":429}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_reply(b"not http").is_err());
        assert!(parse_reply(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }

    #[test]
    fn round_trips_against_the_daemon_contract() {
        // A tiny one-shot server speaking the daemon's exact wire format.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let request = crate::http::read_request(&mut stream).unwrap().unwrap();
            assert_eq!(request.method, "POST");
            assert_eq!(request.path, "/api/v1/sessions");
            assert_eq!(request.header("x-api-key"), Some("k1"));
            assert_eq!(request.body, b"{\"scenario\":\"s\"}");
            crate::http::Response::json(201, "{\"id\":1}".to_owned())
                .write_to(&mut stream)
                .unwrap();
        });
        let reply = http_request(
            addr,
            "POST",
            "/api/v1/sessions",
            Some("k1"),
            b"{\"scenario\":\"s\"}",
            Duration::from_secs(5),
        )
        .unwrap();
        server.join().unwrap();
        assert_eq!(reply.status, 201);
        assert_eq!(reply.body, "{\"id\":1}");
    }

    fn test_policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(20),
            seed: 7,
        }
    }

    #[test]
    fn backoff_honors_retry_after_and_caps_it() {
        let policy = test_policy();
        // The server's suggestion wins over the schedule but never the cap.
        let suggested = backoff_delay(&policy, 0, Some(Duration::from_secs(60)));
        assert!(suggested <= policy.cap, "{suggested:?}");
        assert!(
            suggested >= policy.cap / 2,
            "half-jitter floor: {suggested:?}"
        );
        // Without a suggestion the schedule grows exponentially until the
        // cap takes over.
        let first = backoff_delay(&policy, 0, None);
        assert!(first <= Duration::from_millis(2), "{first:?}");
        let late = backoff_delay(&policy, 10, None);
        assert!(late <= policy.cap, "{late:?}");
        // Deterministic: same policy and attempt, same delay.
        assert_eq!(
            backoff_delay(&policy, 2, None),
            backoff_delay(&policy, 2, None)
        );
        // A zero-cap policy never sleeps.
        let zero = RetryPolicy {
            max_retries: 0,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            seed: 0,
        };
        assert_eq!(
            backoff_delay(&zero, 0, Some(Duration::from_secs(1))),
            Duration::ZERO
        );
    }

    #[test]
    fn retrying_client_retries_429_until_accepted() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // Two rate-limited refusals, then acceptance.
            for _ in 0..2 {
                let (mut stream, _) = listener.accept().unwrap();
                let _ = crate::http::read_request(&mut stream).unwrap();
                crate::http::Response::json(429, "{\"status\":429}".to_owned())
                    .with_header("Retry-After", "1".to_owned())
                    .write_to(&mut stream)
                    .unwrap();
            }
            let (mut stream, _) = listener.accept().unwrap();
            let _ = crate::http::read_request(&mut stream).unwrap();
            crate::http::Response::json(201, "{\"id\":1}".to_owned())
                .write_to(&mut stream)
                .unwrap();
        });
        let retried = http_request_retrying(
            addr,
            "POST",
            "/api/v1/sessions",
            None,
            b"{}",
            Duration::from_secs(5),
            &test_policy(),
        )
        .unwrap();
        server.join().unwrap();
        assert_eq!(retried.reply.status, 201);
        assert_eq!(retried.retries, 2);
    }

    #[test]
    fn retrying_client_gives_up_after_the_budget() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let policy = RetryPolicy {
            max_retries: 1,
            ..test_policy()
        };
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (mut stream, _) = listener.accept().unwrap();
                let _ = crate::http::read_request(&mut stream).unwrap();
                crate::http::Response::json(503, "{\"status\":503}".to_owned())
                    .write_to(&mut stream)
                    .unwrap();
            }
        });
        let retried = http_request_retrying(
            addr,
            "GET",
            "/api/v1/scenarios",
            None,
            b"",
            Duration::from_secs(5),
            &policy,
        )
        .unwrap();
        server.join().unwrap();
        assert_eq!(retried.reply.status, 503, "last reply is surfaced");
        assert_eq!(retried.retries, 1);
    }

    #[test]
    fn retrying_client_treats_4xx_as_final() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = crate::http::read_request(&mut stream).unwrap();
            crate::http::Response::json(404, "{\"status\":404}".to_owned())
                .write_to(&mut stream)
                .unwrap();
        });
        let retried = http_request_retrying(
            addr,
            "GET",
            "/api/v1/scenarios/none",
            None,
            b"",
            Duration::from_secs(5),
            &test_policy(),
        )
        .unwrap();
        server.join().unwrap();
        assert_eq!(retried.reply.status, 404);
        assert_eq!(retried.retries, 0, "a plain 4xx must not be retried");
    }
}
