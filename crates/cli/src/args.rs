//! Minimal flag parser: `--flag value` / `--flag=value` pairs plus
//! positional arguments.

use std::collections::HashMap;

/// Parsed command-line arguments after the subcommand.
#[derive(Debug, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    positional: Vec<String>,
}

impl Args {
    /// Parses `--name value` / `--name=value` pairs and positionals;
    /// `known` lists the accepted flag names (without `--`).
    pub fn parse(argv: &[String], known: &[&str]) -> Result<Args, String> {
        Args::parse_with_switches(argv, known, &[])
    }

    /// Like [`Args::parse`], with `switches` naming valueless boolean
    /// flags: `--name` alone means true (`--name=true|false` also works,
    /// so scripts can template the value).
    pub fn parse_with_switches(
        argv: &[String],
        known: &[&str],
        switches: &[&str],
    ) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if let Some(flag) = a.strip_prefix("--") {
                // `--name=value` carries its value inline; `--name` takes
                // the next argument (switches take none).
                let (name, inline) = match flag.split_once('=') {
                    Some((name, value)) => (name, Some(value.to_owned())),
                    None => (flag, None),
                };
                if !known.contains(&name) && !switches.contains(&name) {
                    return Err(format!(
                        "unknown flag `--{name}` (accepted: {})",
                        known
                            .iter()
                            .chain(switches)
                            .map(|k| format!("--{k}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
                let value = match inline {
                    Some(value) if switches.contains(&name) => match value.as_str() {
                        "true" | "false" => value,
                        other => {
                            return Err(format!(
                                "switch `--{name}` accepts only true or false (got `{other}`)"
                            ))
                        }
                    },
                    Some(value) => value,
                    None if switches.contains(&name) => "true".to_owned(),
                    None => it
                        .next()
                        .ok_or_else(|| format!("flag `--{name}` needs a value"))?
                        .clone(),
                };
                if args.flags.insert(name.to_owned(), value).is_some() {
                    return Err(format!("flag `--{name}` given twice"));
                }
            } else {
                args.positional.push(a.clone());
            }
        }
        Ok(args)
    }

    /// Whether a boolean switch (declared via [`Args::parse_with_switches`])
    /// is on.
    pub fn switch(&self, name: &str) -> bool {
        self.get(name) == Some("true")
    }

    /// A string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A required string flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required flag `--{name}`"))
    }

    /// A flag parsed into any `FromStr` type.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("flag `--{name}`: cannot parse `{raw}`")),
        }
    }

    /// The positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(
            &argv(&["--spec", "x.yaml", "pos1", "--method", "bo"]),
            &["spec", "method"],
        )
        .unwrap();
        assert_eq!(a.get("spec"), Some("x.yaml"));
        assert_eq!(a.get("method"), Some("bo"));
        assert_eq!(a.positional(), &["pos1".to_string()]);
        assert_eq!(a.get_parsed::<f64>("missing").unwrap(), None);
    }

    #[test]
    fn rejects_unknown_duplicate_and_valueless_flags() {
        assert!(Args::parse(&argv(&["--nope", "1"]), &["spec"]).is_err());
        assert!(Args::parse(&argv(&["--spec", "a", "--spec", "b"]), &["spec"]).is_err());
        assert!(Args::parse(&argv(&["--spec"]), &["spec"]).is_err());
    }

    #[test]
    fn parses_equals_syntax() {
        let a = Args::parse(
            &argv(&["--spec=x.yaml", "pos1", "--method=bo", "--slo=1500.5"]),
            &["spec", "method", "slo"],
        )
        .unwrap();
        assert_eq!(a.get("spec"), Some("x.yaml"));
        assert_eq!(a.get("method"), Some("bo"));
        assert_eq!(a.get_parsed::<f64>("slo").unwrap(), Some(1500.5));
        assert_eq!(a.positional(), &["pos1".to_string()]);
        // Values may themselves contain `=` — only the first splits.
        let b = Args::parse(&argv(&["--out=a=b.json"]), &["out"]).unwrap();
        assert_eq!(b.get("out"), Some("a=b.json"));
        // An empty inline value is a value, not a missing one.
        let c = Args::parse(&argv(&["--out="]), &["out"]).unwrap();
        assert_eq!(c.get("out"), Some(""));
    }

    #[test]
    fn equals_syntax_keeps_unknown_and_duplicate_errors() {
        let err = Args::parse(&argv(&["--nope=1"]), &["spec"]).unwrap_err();
        assert!(err.contains("unknown flag `--nope`"), "{err}");
        assert!(Args::parse(&argv(&["--spec=a", "--spec", "b"]), &["spec"]).is_err());
        assert!(Args::parse(&argv(&["--spec", "a", "--spec=b"]), &["spec"]).is_err());
        assert!(Args::parse(&argv(&["--spec=a", "--spec=b"]), &["spec"]).is_err());
    }

    #[test]
    fn switches_are_valueless_booleans() {
        let a = Args::parse_with_switches(
            &argv(&["--hold", "--concurrent", "10"]),
            &["concurrent"],
            &["hold"],
        )
        .unwrap();
        assert!(a.switch("hold"));
        assert_eq!(a.get_parsed::<usize>("concurrent").unwrap(), Some(10));
        let b = Args::parse_with_switches(&argv(&["--hold=false"]), &[], &["hold"]).unwrap();
        assert!(!b.switch("hold"));
        assert!(!b.switch("absent"));
        assert!(Args::parse_with_switches(&argv(&["--hold=maybe"]), &[], &["hold"]).is_err());
    }

    #[test]
    fn parse_errors_mention_the_flag() {
        let a = Args::parse(&argv(&["--slo", "abc"]), &["slo"]).unwrap();
        let err = a.get_parsed::<f64>("slo").unwrap_err();
        assert!(err.contains("--slo") && err.contains("abc"));
    }
}
