//! Build provenance in serialisable form: the telemetry crate's
//! [`aarc_telemetry::BuildInfo`] is dependency-free and cannot implement
//! `Serialize`, so the CLI mirrors it into a serde-enabled struct shared
//! by `GET /version`, the `aarc_build_info` metric labels and the bench
//! report.

use serde::{Deserialize, Serialize};

/// Crate version plus toolchain metadata, as served by `GET /version` and
/// embedded in `BENCH_*.json` for provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VersionInfo {
    /// Binary name (`aarc`).
    pub name: String,
    /// Workspace crate version.
    pub version: String,
    /// `rustc --version` captured at build time.
    pub rustc: String,
    /// Cargo build profile (`debug` or `release`).
    pub profile: String,
}

impl VersionInfo {
    /// The provenance of the running binary.
    pub fn current() -> Self {
        let info = aarc_telemetry::build_info();
        VersionInfo {
            name: "aarc".to_owned(),
            version: info.crate_version.to_owned(),
            rustc: info.rustc.to_owned(),
            profile: info.profile.to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_is_populated_and_serialisable() {
        let info = VersionInfo::current();
        assert_eq!(info.name, "aarc");
        assert!(!info.version.is_empty());
        assert!(!info.rustc.is_empty());
        let json = serde_json::to_string(&info).unwrap();
        let back: VersionInfo = serde_json::from_str(&json).unwrap();
        assert_eq!(back, info);
    }
}
