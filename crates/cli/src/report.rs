//! The `aarc compare` report: per-method cost, SLO attainment and search
//! effort, serializable as JSON (full detail, including per-function rows
//! via [`aarc_core::report::ConfigurationReport`]) or CSV (totals only).

use serde::Serialize;

use aarc_core::report::ConfigurationReport;
use aarc_core::{AarcError, ConfigurationSearch};
use aarc_simulator::{EvalService, EvalStats};
use aarc_workloads::Workload;

/// RFC 4180 quoting for a CSV field: wrap in quotes when the value contains
/// a comma, quote or line break, doubling embedded quotes. Shared with the
/// sweep report's CSV rendering.
pub(crate) fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// One method's outcome on a scenario.
#[derive(Debug, Clone, Serialize)]
pub struct MethodResult {
    /// CLI method name (`aarc`, `bo`, `maff`, `random`).
    pub method: String,
    /// The engine's display name ("AARC", "BO", ...).
    pub display_name: String,
    /// Cost of the best configuration found.
    pub final_cost: f64,
    /// End-to-end runtime of the best configuration, ms.
    pub final_makespan_ms: f64,
    /// Whether the best configuration meets the SLO.
    pub meets_slo: bool,
    /// Number of sampled workflow executions the search spent.
    pub samples: usize,
    /// Total billed cost of all sampled executions (Fig. 5b).
    pub search_cost: f64,
    /// Total runtime of all sampled executions, ms (Fig. 5a).
    pub search_runtime_ms: f64,
    /// Per-function configuration breakdown.
    pub configuration: ConfigurationReport,
}

/// Evaluation-engine statistics of one comparison run, accumulated across
/// all methods (they share one engine, so e.g. the base configuration is
/// simulated once and answered from the cache three times).
///
/// Deliberately excludes the thread count: the numbers are invariant under
/// it, which is what keeps `aarc compare` output byte-identical for
/// `--threads 1` and `--threads 8`.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct EvalSummary {
    /// Simulations actually executed (cache misses).
    pub simulations: u64,
    /// Candidate evaluations answered from the memo-cache.
    pub cache_hits: u64,
    /// Candidate evaluations that required a simulation.
    pub cache_misses: u64,
    /// Fraction of evaluations served from the cache.
    pub cache_hit_rate: f64,
}

impl From<EvalStats> for EvalSummary {
    fn from(stats: EvalStats) -> Self {
        EvalSummary {
            simulations: stats.simulations(),
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            cache_hit_rate: stats.hit_rate(),
        }
    }
}

/// The full comparison of every method on one scenario.
#[derive(Debug, Clone, Serialize)]
pub struct CompareReport {
    /// Scenario name.
    pub scenario: String,
    /// The SLO every method searched under, ms.
    pub slo_ms: f64,
    /// Number of workflow functions.
    pub functions: usize,
    /// Shared evaluation-service statistics over the whole comparison.
    pub eval: EvalSummary,
    /// One entry per method, in [`crate::methods::METHOD_NAMES`] order.
    pub methods: Vec<MethodResult>,
}

impl CompareReport {
    /// Runs every `(name, method)` pair on the workload through one
    /// caller-provided shared [`EvalService`] (one handle shared by all
    /// methods), so repeated candidate simulations are answered from the
    /// memo-cache. Methods run sequentially, which keeps the statistics —
    /// and therefore the report bytes — identical to the historical
    /// per-scenario engine.
    ///
    /// # Errors
    ///
    /// Propagates the first search failure.
    pub fn run_on(
        service: &EvalService,
        workload: &Workload,
        methods: Vec<(&'static str, Box<dyn ConfigurationSearch>)>,
        slo_ms: f64,
    ) -> Result<Self, AarcError> {
        let handle = service.register(workload.env().clone());
        let env = handle.env();
        let mut results = Vec::with_capacity(methods.len());
        for (cli_name, method) in methods {
            let outcome = method.search_on(&handle, slo_ms)?;
            results.push(MethodResult {
                method: cli_name.to_owned(),
                display_name: method.name().to_owned(),
                final_cost: outcome.best_cost(),
                final_makespan_ms: outcome.best_runtime_ms(),
                meets_slo: outcome.final_report.meets_slo(slo_ms),
                samples: outcome.trace.sample_count(),
                search_cost: outcome.trace.total_cost(),
                search_runtime_ms: outcome.trace.total_runtime_ms(),
                configuration: ConfigurationReport::new(
                    env,
                    &outcome.best_configs,
                    &outcome.final_report,
                    Some(slo_ms),
                ),
            });
        }
        Ok(CompareReport {
            scenario: workload.name().to_owned(),
            slo_ms,
            functions: workload.len(),
            eval: handle.stats().into(),
            methods: results,
        })
    }

    /// Renders the totals as CSV (header + one row per method).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "scenario,method,final_cost,final_makespan_ms,meets_slo,samples,search_cost,search_runtime_ms\n",
        );
        for m in &self.methods {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                csv_field(&self.scenario),
                m.method,
                m.final_cost,
                m.final_makespan_ms,
                m.meets_slo,
                m.samples,
                m.search_cost,
                m.search_runtime_ms
            ));
        }
        out
    }

    /// Renders a compact fixed-width text table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "comparison on `{}` ({} functions, slo {:.1} ms)\n{:<8} {:>14} {:>16} {:>9} {:>8} {:>16}\n",
            self.scenario, self.functions, self.slo_ms, "method", "final cost", "makespan (ms)", "slo", "samples", "search cost"
        );
        for m in &self.methods {
            out.push_str(&format!(
                "{:<8} {:>14.1} {:>16.1} {:>9} {:>8} {:>16.1}\n",
                m.method,
                m.final_cost,
                m.final_makespan_ms,
                if m.meets_slo { "met" } else { "VIOLATED" },
                m.samples,
                m.search_cost
            ));
        }
        out.push_str(&format!(
            "eval: {} simulations, {} cache hits ({:.1}% hit rate)\n",
            self.eval.simulations,
            self.eval.cache_hits,
            self.eval.cache_hit_rate * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods;

    #[test]
    fn csv_fields_with_separators_are_quoted() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a, b"), "\"a, b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn compare_runs_all_methods_and_serializes() {
        let spec = aarc_spec::synthetic_spec(aarc_spec::SynthParams {
            seed: 11,
            layers: 2,
            max_width: 2,
            ..aarc_spec::SynthParams::default()
        });
        let workload = aarc_spec::compile(&spec).unwrap().into_workload();
        let service = EvalService::with_threads(1);
        let report =
            CompareReport::run_on(&service, &workload, methods::all(), workload.slo_ms()).unwrap();
        assert_eq!(report.methods.len(), 4);
        for m in &report.methods {
            assert!(m.final_cost > 0.0);
            assert!(m.samples > 0);
        }
        // The four methods share one engine: at minimum, the base
        // configuration re-executions of the later methods hit the cache.
        assert!(report.eval.cache_hits > 0);
        assert!(report.eval.simulations > 0);
        assert!(report.eval.cache_hit_rate > 0.0);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"final_cost\""));
        assert!(json.contains("\"meets_slo\""));
        assert!(json.contains("\"cache_hits\""));
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("scenario,method"));
        let table = report.to_table();
        assert!(table.contains("aarc") && table.contains("random"));
    }
}
