//! Subcommand implementations.

use std::path::{Path, PathBuf};

use aarc_core::report::ConfigurationReport;
use aarc_spec::{compile, load, validate, SpecFormat, SynthParams};

use crate::args::Args;
use crate::methods;
use crate::report::CompareReport;

const USAGE: &str = "\
aarc — declarative scenario runner for the AARC reproduction

USAGE:
    aarc validate <spec>...                     check scenario files
    aarc run --spec FILE [--method NAME]        search one scenario
             [--slo MS] [--format text|json] [--out FILE]
    aarc compare --spec FILE [--format json|csv|table] [--out FILE]
                                                all methods on one scenario
    aarc export-builtin [--dir DIR] [--format yaml|json]
                                                write the three paper workloads as specs
    aarc generate --seed N [--layers N] [--max-width N] [--edge-prob P]
                  [--headroom H] --out FILE     mint a synthetic scenario spec

METHODS: aarc (graph-centric scheduler), bo (Bayesian optimization),
         maff (coupled gradient descent), random (uniform sampling)
";

/// Runs the subcommand named by `argv[0]`.
///
/// # Errors
///
/// Returns a user-facing message; `main` prints it and exits non-zero.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    match argv.first().map(String::as_str) {
        Some("validate") => cmd_validate(&argv[1..]),
        Some("run") => cmd_run(&argv[1..]),
        Some("compare") => cmd_compare(&argv[1..]),
        Some("export-builtin") => cmd_export_builtin(&argv[1..]),
        Some("generate") => cmd_generate(&argv[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    }
}

fn write_or_print(text: &str, out: Option<&str>) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("{path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn cmd_validate(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    if args.positional().is_empty() {
        return Err("validate needs at least one spec file".to_string());
    }
    let mut failures = 0usize;
    for path in args.positional() {
        match load(path).and_then(|spec| validate(&spec).map(|()| spec)) {
            Ok(spec) => {
                println!(
                    "{path}: ok ({} functions, {} edges, slo {:.1} ms)",
                    spec.functions.len(),
                    spec.edges.len(),
                    spec.slo_ms
                );
            }
            Err(e) => {
                failures += 1;
                eprintln!("{path}: {e}");
            }
        }
    }
    if failures > 0 {
        Err(format!(
            "{failures} of {} spec(s) invalid",
            args.positional().len()
        ))
    } else {
        Ok(())
    }
}

fn cmd_run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["spec", "method", "slo", "format", "out"])?;
    let spec = load(args.require("spec")?).map_err(|e| e.to_string())?;
    let scenario = compile(&spec).map_err(|e| e.to_string())?;
    let workload = scenario.workload();
    let slo_ms = args
        .get_parsed::<f64>("slo")?
        .unwrap_or_else(|| workload.slo_ms());
    let method = methods::build(args.get("method").unwrap_or("aarc"))?;

    let outcome = method
        .search(workload.env(), slo_ms)
        .map_err(|e| format!("search failed: {e}"))?;
    let report = ConfigurationReport::new(
        workload.env(),
        &outcome.best_configs,
        &outcome.final_report,
        Some(slo_ms),
    );
    let text = match args.get("format").unwrap_or("text") {
        "text" => format!(
            "{report}\nsearch: {} samples, total cost {:.1}, total runtime {:.1} ms\n",
            outcome.trace.sample_count(),
            outcome.trace.total_cost(),
            outcome.trace.total_runtime_ms()
        ),
        "json" => {
            let mut s =
                serde_json::to_string_pretty(&report).expect("report serialization is infallible");
            s.push('\n');
            s
        }
        other => return Err(format!("unknown format `{other}` (accepted: text, json)")),
    };
    write_or_print(&text, args.get("out"))
}

fn cmd_compare(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["spec", "slo", "format", "out"])?;
    let spec = load(args.require("spec")?).map_err(|e| e.to_string())?;
    let scenario = compile(&spec).map_err(|e| e.to_string())?;
    let workload = scenario.workload();
    let slo_ms = args
        .get_parsed::<f64>("slo")?
        .unwrap_or_else(|| workload.slo_ms());

    let report = CompareReport::run(workload, methods::all(), slo_ms)
        .map_err(|e| format!("comparison failed: {e}"))?;
    let text = match args.get("format").unwrap_or("json") {
        "json" => {
            let mut s =
                serde_json::to_string_pretty(&report).expect("report serialization is infallible");
            s.push('\n');
            s
        }
        "csv" => report.to_csv(),
        "table" => report.to_table(),
        other => {
            return Err(format!(
                "unknown format `{other}` (accepted: json, csv, table)"
            ))
        }
    };
    write_or_print(&text, args.get("out"))
}

fn cmd_export_builtin(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["dir", "format"])?;
    let dir = PathBuf::from(args.get("dir").unwrap_or("specs"));
    let format = match args.get("format").unwrap_or("yaml") {
        "yaml" => SpecFormat::Yaml,
        "json" => SpecFormat::Json,
        other => return Err(format!("unknown format `{other}` (accepted: yaml, json)")),
    };
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for (name, spec) in aarc_spec::builtin_specs() {
        let path = dir.join(format!("{name}.{}", format.extension()));
        aarc_spec::save(&spec, &path).map_err(|e| e.to_string())?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

fn cmd_generate(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(
        argv,
        &[
            "seed",
            "layers",
            "max-width",
            "edge-prob",
            "headroom",
            "out",
        ],
    )?;
    let defaults = SynthParams::default();
    let params = SynthParams {
        seed: args.get_parsed("seed")?.unwrap_or(defaults.seed),
        layers: args.get_parsed("layers")?.unwrap_or(defaults.layers),
        max_width: args.get_parsed("max-width")?.unwrap_or(defaults.max_width),
        edge_probability: args
            .get_parsed("edge-prob")?
            .unwrap_or(defaults.edge_probability),
        slo_headroom: args
            .get_parsed("headroom")?
            .unwrap_or(defaults.slo_headroom),
    };
    if params.layers == 0 || params.max_width == 0 {
        return Err("--layers and --max-width must be at least 1".to_string());
    }
    let spec = aarc_spec::synthetic_spec(params);
    let out = args.require("out")?;
    aarc_spec::save(&spec, Path::new(out)).map_err(|e| e.to_string())?;
    println!(
        "wrote {out} ({} functions, {} edges, slo {:.1} ms)",
        spec.functions.len(),
        spec.edges.len(),
        spec.slo_ms
    );
    Ok(())
}
