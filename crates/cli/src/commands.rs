//! Subcommand implementations.

use std::path::{Path, PathBuf};

use aarc_core::report::ConfigurationReport;
use aarc_simulator::{EvalEngine, EvalService};
use aarc_spec::{compile, load, validate, SpecFormat, SynthParams};
use aarc_telemetry::{LogFormat, LogLevel, Logger};

use crate::args::Args;
use crate::bench;
use crate::methods;
use crate::report::CompareReport;
use crate::sweep::{self, SweepClass};
use crate::tenant::TenantRegistry;

const USAGE: &str = "\
aarc — declarative scenario runner for the AARC reproduction

USAGE:
    aarc validate <spec>...                     check scenario files
    aarc run --spec FILE [--method NAME]        search one scenario
             [--slo MS] [--threads N] [--format text|json] [--out FILE]
    aarc compare --spec FILE [--threads N] [--format json|csv|table]
                 [--out FILE] [--eval-detail on]
                                                all methods on one scenario
    aarc sweep <spec|dir>... [--methods a,b,c] [--classes nominal,light,...]
               [--threads N] [--slo MS] [--format json|csv] [--out FILE]
                                                many scenarios x methods x input
                                                classes on one shared pool
    aarc bench <spec>... [--threads N] [--batch N] [--out FILE]
               [--baseline FILE] [--max-regress F] [--min-speedup X]
               [--min-incremental-speedup X] [--max-allocs-per-sim F]
                                                emit BENCH_*.json perf measurements
                                                (thread-scaling curve, incremental
                                                resim, batch dedup, search) and gate
                                                against a committed baseline
    aarc serve [--addr HOST:PORT] [--threads N]
               [--tenants FILE] [--max-live-sessions N]
               [--state-dir DIR] [--checkpoint-every N]
               [--log-level error|warn|info|debug] [--log-format text|json]
                                                long-running, multi-tenant configuration
                                                daemon: upload/validate/list/delete
                                                scenarios, start/poll/pause/cancel search
                                                sessions, fetch reports, scrape /metrics,
                                                /version, /debug/events and per-session
                                                convergence traces over a versioned JSON
                                                HTTP API mounted at /api/v1 (bare legacy
                                                paths stay as deprecated aliases).
                                                --tenants FILE maps X-Api-Key headers to
                                                tenant namespaces with per-tenant quotas
                                                and rate limits; without it a single
                                                unlimited anonymous tenant is assumed.
                                                Admission control rejects (429/503
                                                problem+json with Retry-After) instead
                                                of queuing. (default addr 127.0.0.1:7411;
                                                port 0 = ephemeral). Structured logs go
                                                to stderr. POST /shutdown drains sessions
                                                and exits 0 (SIGTERM cannot be trapped
                                                in this no-libc build).
                                                --state-dir DIR makes the registry and
                                                sessions durable: uploads/deletes are
                                                write-ahead logged before the 2xx, live
                                                sessions checkpoint every N rounds
                                                (--checkpoint-every, default 8), and a
                                                restarted daemon replays the WAL and
                                                resumes checkpointed sessions
                                                bit-identically, quarantining anything
                                                corrupt (see GET /api/v1/recovery)
    aarc loadtest [--concurrent N] [--tenants N] [--clients N] [--threads N]
                  [--rps R] [--hold] [--min-concurrent N] [--method NAME]
                  [--out FILE] [--bench FILE]
                                                spawn an in-process daemon and drive N
                                                concurrent sessions against it through
                                                real sockets; reports p50/p99 request
                                                latency, admission 2xx/429/503 counts and
                                                client retries after Retry-After (any 5xx
                                                fails the run). --hold pauses
                                                sessions to pin peak concurrency;
                                                --bench merges a `serve` phase into an
                                                `aarc bench` JSON report (schema v4)
    aarc export-builtin [--dir DIR] [--format yaml|json]
                                                write the three paper workloads as specs
    aarc generate --seed N [--layers N] [--max-width N] [--edge-prob P]
                  [--headroom H] --out FILE     mint a synthetic scenario spec

METHODS: aarc (graph-centric scheduler), bo (Bayesian optimization),
         maff (coupled gradient descent), random (uniform sampling)

All flags also accept --flag=value. Candidate executions go through the
shared evaluation service: --threads N fans batches out over N workers
(results are bit-identical for any N) and a fingerprint-keyed memo-cache
short-circuits repeated simulations across methods, input classes and
scenarios. --threads defaults to the host's available parallelism when
omitted and must be at least 1.
";

/// Runs the subcommand named by `argv[0]`.
///
/// # Errors
///
/// Returns a user-facing message; `main` prints it and exits non-zero.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    match argv.first().map(String::as_str) {
        Some("validate") => cmd_validate(&argv[1..]),
        Some("run") => cmd_run(&argv[1..]),
        Some("compare") => cmd_compare(&argv[1..]),
        Some("sweep") => cmd_sweep(&argv[1..]),
        Some("bench") => cmd_bench(&argv[1..]),
        Some("serve") => cmd_serve(&argv[1..]),
        Some("loadtest") => cmd_loadtest(&argv[1..]),
        Some("export-builtin") => cmd_export_builtin(&argv[1..]),
        Some("generate") => cmd_generate(&argv[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    }
}

fn write_or_print(text: &str, out: Option<&str>) -> Result<(), String> {
    match out {
        Some(path) => {
            aarc_spec::atomic_write(path, text.as_bytes()).map_err(|e| format!("{path}: {e}"))
        }
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn cmd_validate(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    if args.positional().is_empty() {
        return Err("validate needs at least one spec file".to_string());
    }
    let mut failures = 0usize;
    for path in args.positional() {
        match load(path).and_then(|spec| validate(&spec).map(|()| spec)) {
            Ok(spec) => {
                println!(
                    "{path}: ok ({} functions, {} edges, slo {:.1} ms)",
                    spec.functions.len(),
                    spec.edges.len(),
                    spec.slo_ms
                );
            }
            Err(e) => {
                failures += 1;
                eprintln!("{path}: {e}");
            }
        }
    }
    if failures > 0 {
        Err(format!(
            "{failures} of {} spec(s) invalid",
            args.positional().len()
        ))
    } else {
        Ok(())
    }
}

/// The host's available parallelism (1 when it cannot be determined).
fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses `--threads`: defaults to the host's available parallelism when
/// omitted, and rejects 0 with a clear error before any pool is built.
/// Shared by `run`/`compare`/`sweep`/`bench`/`serve` — results are
/// bit-identical for any accepted value, so the default only affects
/// wall-clock.
fn parse_threads(args: &Args) -> Result<usize, String> {
    match args.get_parsed::<usize>("threads")? {
        Some(0) => Err(format!(
            "--threads must be at least 1 (got 0); omit the flag to use all {} host cores",
            host_parallelism()
        )),
        Some(threads) => Ok(threads),
        None => Ok(host_parallelism()),
    }
}

fn cmd_serve(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(
        argv,
        &[
            "addr",
            "threads",
            "tenants",
            "max-live-sessions",
            "log-level",
            "log-format",
            "state-dir",
            "checkpoint-every",
        ],
    )?;
    if !args.positional().is_empty() {
        return Err(format!(
            "serve takes no positional arguments (got `{}`)",
            args.positional().join(" ")
        ));
    }
    let addr = args.get("addr").unwrap_or("127.0.0.1:7411").to_owned();
    let threads = parse_threads(&args)?;
    let mut tenants_config = None;
    let tenants = match args.get("tenants") {
        None => TenantRegistry::single_anonymous(),
        Some(path) => {
            let contents =
                std::fs::read_to_string(path).map_err(|e| format!("--tenants {path}: {e}"))?;
            let registry = TenantRegistry::from_file_contents(&contents)
                .map_err(|e| format!("--tenants {path}: {e}"))?;
            tenants_config = Some(contents);
            registry
        }
    };
    let state_dir = args.get("state-dir").map(std::path::PathBuf::from);
    let checkpoint_every = match args.get_parsed::<u64>("checkpoint-every")? {
        Some(0) => return Err("--checkpoint-every must be at least 1 (got 0)".to_owned()),
        Some(n) => n,
        None => crate::state::DEFAULT_CHECKPOINT_EVERY,
    };
    if checkpoint_every != crate::state::DEFAULT_CHECKPOINT_EVERY && state_dir.is_none() {
        return Err("--checkpoint-every requires --state-dir".to_owned());
    }
    let max_live_sessions = match args.get_parsed::<usize>("max-live-sessions")? {
        Some(0) => return Err("--max-live-sessions must be at least 1 (got 0)".to_owned()),
        Some(n) => n,
        None => crate::serve::DEFAULT_MAX_LIVE_SESSIONS,
    };
    let level = match args.get("log-level") {
        None => LogLevel::Info,
        Some(raw) => LogLevel::parse(raw).map_err(|e| format!("--log-level: {e}"))?,
    };
    let format = match args.get("log-format") {
        None => LogFormat::Text,
        Some(raw) => LogFormat::parse(raw).map_err(|e| format!("--log-format: {e}"))?,
    };
    let config = crate::serve::ServeConfig {
        addr,
        threads,
        tenants,
        max_live_sessions,
        logger: Logger::new(level, format),
        state_dir,
        checkpoint_every,
        tenants_config,
    };
    crate::serve::run_serve(config, None)
}

fn cmd_loadtest(argv: &[String]) -> Result<(), String> {
    let args = Args::parse_with_switches(
        argv,
        &[
            "concurrent",
            "tenants",
            "clients",
            "threads",
            "rps",
            "min-concurrent",
            "method",
            "out",
            "bench",
        ],
        &["hold"],
    )?;
    if !args.positional().is_empty() {
        return Err(format!(
            "loadtest takes no positional arguments (got `{}`)",
            args.positional().join(" ")
        ));
    }
    let options = crate::loadtest::LoadtestOptions {
        concurrent: args.get_parsed::<usize>("concurrent")?.unwrap_or(1000),
        tenants: args.get_parsed::<usize>("tenants")?.unwrap_or(8),
        clients: args.get_parsed::<usize>("clients")?.unwrap_or(32),
        threads: parse_threads(&args)?,
        rps: args.get_parsed::<f64>("rps")?,
        hold: args.switch("hold"),
        min_concurrent: args.get_parsed::<usize>("min-concurrent")?.unwrap_or(0),
        method: args.get("method").unwrap_or("aarc").to_owned(),
        out: args.get("out").map(str::to_owned),
        bench: args.get("bench").map(str::to_owned),
    };
    crate::loadtest::run_loadtest(&options)
}

fn cmd_run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["spec", "method", "slo", "threads", "format", "out"])?;
    let spec = load(args.require("spec")?).map_err(|e| e.to_string())?;
    let scenario = compile(&spec).map_err(|e| e.to_string())?;
    let workload = scenario.workload();
    let slo_ms = args
        .get_parsed::<f64>("slo")?
        .unwrap_or_else(|| workload.slo_ms());
    let threads = parse_threads(&args)?;
    let method = methods::build(args.get("method").unwrap_or("aarc"))?;

    let engine = EvalEngine::with_threads(workload.env().clone(), threads);
    let outcome = method
        .search_with(&engine, slo_ms)
        .map_err(|e| format!("search failed: {e}"))?;
    let report = ConfigurationReport::new(
        workload.env(),
        &outcome.best_configs,
        &outcome.final_report,
        Some(slo_ms),
    );
    let stats = engine.stats();
    let text = match args.get("format").unwrap_or("text") {
        "text" => {
            // The search itself only ever sees lean `SimResult`s; the full
            // report with the event trace is materialised here, once, for
            // the winner.
            let full = outcome
                .materialize_report(&engine)
                .map_err(|e| format!("materialising the winning report failed: {e}"))?;
            format!(
                "{report}\nsearch: {} samples, total cost {:.1}, total runtime {:.1} ms\neval: {} simulations, {} cache hits ({:.1}% hit rate)\ntrace: {} events recorded for the winning execution\n",
                outcome.trace.sample_count(),
                outcome.trace.total_cost(),
                outcome.trace.total_runtime_ms(),
                stats.simulations(),
                stats.cache_hits,
                stats.hit_rate() * 100.0,
                full.trace().len()
            )
        }
        "json" => {
            let mut s =
                serde_json::to_string_pretty(&report).expect("report serialization is infallible");
            s.push('\n');
            s
        }
        other => return Err(format!("unknown format `{other}` (accepted: text, json)")),
    };
    write_or_print(&text, args.get("out"))
}

fn cmd_compare(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(
        argv,
        &["spec", "slo", "threads", "format", "out", "eval-detail"],
    )?;
    let spec = load(args.require("spec")?).map_err(|e| e.to_string())?;
    let scenario = compile(&spec).map_err(|e| e.to_string())?;
    let workload = scenario.workload();
    let slo_ms = args
        .get_parsed::<f64>("slo")?
        .unwrap_or_else(|| workload.slo_ms());
    let threads = parse_threads(&args)?;

    let service = EvalService::with_threads(threads);
    let report = CompareReport::run_on(&service, workload, methods::all(), slo_ms)
        .map_err(|e| format!("comparison failed: {e}"))?;
    let text = match args.get("format").unwrap_or("json") {
        "json" => {
            let mut s =
                serde_json::to_string_pretty(&report).expect("report serialization is infallible");
            s.push('\n');
            s
        }
        "csv" => report.to_csv(),
        "table" => report.to_table(),
        other => {
            return Err(format!(
                "unknown format `{other}` (accepted: json, csv, table)"
            ))
        }
    };
    // The per-fingerprint breakdown goes to stderr so the primary report
    // stays byte-stable (and `cmp`-pinnable) with and without the flag.
    let eval_detail = match args.get("eval-detail") {
        None | Some("off") | Some("false") | Some("0") => false,
        Some("on") | Some("true") | Some("1") => true,
        Some(other) => return Err(format!("--eval-detail: expected on|off, got `{other}`")),
    };
    if eval_detail {
        for s in service.scenario_stats() {
            eprintln!(
                "eval[{:016x}]: {} simulations, {} hits, {} misses, {} evictions ({:.1}% hit rate)",
                s.fingerprint,
                s.simulations(),
                s.cache_hits,
                s.cache_misses,
                s.evictions,
                s.hit_rate() * 100.0
            );
        }
    }
    write_or_print(&text, args.get("out"))
}

fn cmd_sweep(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(
        argv,
        &["methods", "classes", "threads", "slo", "format", "out"],
    )?;
    let spec_paths = sweep::expand_spec_args(args.positional())?;
    let threads = parse_threads(&args)?;
    let slo_override = args.get_parsed::<f64>("slo")?;

    let method_names: Vec<&'static str> = match args.get("methods") {
        None => methods::METHOD_NAMES.to_vec(),
        Some(list) => list
            .split(',')
            .map(|name| {
                // Resolve through the builder so unknown names fail with
                // the same message as `run --method`.
                methods::build(name.trim())?;
                Ok(methods::METHOD_NAMES
                    .iter()
                    .copied()
                    .find(|&n| n == name.trim())
                    .expect("build succeeded, so the name is known"))
            })
            .collect::<Result<Vec<_>, String>>()?,
    };
    let classes: Vec<SweepClass> = match args.get("classes") {
        None => vec![SweepClass::Nominal],
        Some(list) => list
            .split(',')
            .map(|c| SweepClass::parse(c.trim()))
            .collect::<Result<Vec<_>, String>>()?,
    };

    let report = sweep::run_sweep(&spec_paths, &method_names, &classes, threads, slo_override)?;
    let text = match args.get("format").unwrap_or("json") {
        "json" => {
            let mut s =
                serde_json::to_string_pretty(&report).expect("report serialization is infallible");
            s.push('\n');
            s
        }
        "csv" => report.to_csv(),
        other => return Err(format!("unknown format `{other}` (accepted: json, csv)")),
    };
    // Human-readable summary on stderr; stdout/--out stay machine-pure.
    for s in &report.scenarios {
        eprintln!(
            "{}: {} runs, {} simulations, cache hit rate {:.1}%",
            s.scenario,
            s.runs.len(),
            s.eval.simulations,
            s.eval.cache_hit_rate * 100.0
        );
    }
    eprintln!(
        "sweep total: {} scenarios, {} simulations, {} cache hits ({:.1}% hit rate)",
        report.scenarios.len(),
        report.eval.simulations,
        report.eval.cache_hits,
        report.eval.cache_hit_rate * 100.0
    );
    write_or_print(&text, args.get("out"))
}

fn cmd_bench(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(
        argv,
        &[
            "threads",
            "batch",
            "out",
            "baseline",
            "max-regress",
            "min-speedup",
            "min-incremental-speedup",
            "max-allocs-per-sim",
        ],
    )?;
    if args.positional().is_empty() {
        return Err("bench needs at least one spec file".to_string());
    }
    let threads = parse_threads(&args)?;
    let batch = args.get_parsed::<usize>("batch")?.unwrap_or(1_024);
    if batch == 0 {
        return Err("--batch must be at least 1".to_string());
    }
    let max_regress = args.get_parsed::<f64>("max-regress")?.unwrap_or(0.20);
    if !(0.0..10.0).contains(&max_regress) {
        return Err(format!("--max-regress {max_regress} out of range"));
    }
    let min_speedup = args.get_parsed::<f64>("min-speedup")?;
    let min_incremental = args.get_parsed::<f64>("min-incremental-speedup")?;
    let max_allocs_per_sim = args.get_parsed::<f64>("max-allocs-per-sim")?;
    if let Some(max) = max_allocs_per_sim {
        if max.is_nan() || max <= 0.0 {
            return Err(format!("--max-allocs-per-sim {max} must be positive"));
        }
    }

    let report = bench::run_bench(args.positional(), threads, batch)?;
    let mut json = serde_json::to_string_pretty(&report)
        .map_err(|e| format!("bench serialization failed: {e}"))?;
    json.push('\n');
    match args.get("out") {
        Some(path) => {
            aarc_spec::atomic_write(path, json.as_bytes()).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
    // The human-readable summary goes to stderr so stdout stays pure JSON
    // (pipeable into jq) when --out is omitted.
    for s in &report.scenarios {
        let curve = s
            .thread_scaling
            .iter()
            .map(|p| format!("{:.0}@{}t", p.sims_per_sec, p.threads))
            .collect::<Vec<_>>()
            .join(" ");
        eprintln!(
            "{}: sims/s [{curve}] (speedup {:.2}x), search {:.1} ms, cache hit rate {:.1}%",
            s.scenario,
            s.speedup,
            s.search.wall_ms,
            s.search.cache_hit_rate * 100.0
        );
        if let Some(inc) = &s.incremental_resim {
            eprintln!(
                "  incremental resim: {:.2}x over the event loop \
                 ({} of {} chain sims incremental, {} node outcomes reused)",
                inc.speedup,
                inc.incremental_sims,
                inc.probes * inc.rounds.max(1),
                inc.nodes_reused
            );
        }
        if let Some(dedup) = &s.batch_dedup {
            eprintln!(
                "  batch dedup: {}/{} duplicates fanned out ({:.0} candidates/s @1t)",
                dedup.dedup_hits,
                dedup.batch - dedup.unique,
                dedup.candidates_per_sec
            );
        }
    }
    if let Some(aggregate) = &report.aggregate {
        eprintln!(
            "aggregate shared pool: {} simulations in {:.1} ms ({:.0} sims/s @{}t)",
            aggregate.simulations, aggregate.wall_ms, aggregate.sims_per_sec, report.threads
        );
    }

    let baseline = match args.get("baseline") {
        Some(path) => {
            let raw = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Some(
                serde_json::from_str::<bench::BenchReport>(&raw)
                    .map_err(|e| format!("{path}: invalid baseline: {e}"))?,
            )
        }
        None => None,
    };
    let failures = bench::gate_failures(
        &report,
        baseline.as_ref(),
        max_regress,
        min_speedup,
        min_incremental,
        max_allocs_per_sim,
    );
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!("perf gate failed:\n  {}", failures.join("\n  ")))
    }
}

fn cmd_export_builtin(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["dir", "format"])?;
    let dir = PathBuf::from(args.get("dir").unwrap_or("specs"));
    let format = match args.get("format").unwrap_or("yaml") {
        "yaml" => SpecFormat::Yaml,
        "json" => SpecFormat::Json,
        other => return Err(format!("unknown format `{other}` (accepted: yaml, json)")),
    };
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for (name, spec) in aarc_spec::builtin_specs() {
        let path = dir.join(format!("{name}.{}", format.extension()));
        aarc_spec::save(&spec, &path).map_err(|e| e.to_string())?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

fn cmd_generate(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(
        argv,
        &[
            "seed",
            "layers",
            "max-width",
            "edge-prob",
            "headroom",
            "out",
        ],
    )?;
    let defaults = SynthParams::default();
    let params = SynthParams {
        seed: args.get_parsed("seed")?.unwrap_or(defaults.seed),
        layers: args.get_parsed("layers")?.unwrap_or(defaults.layers),
        max_width: args.get_parsed("max-width")?.unwrap_or(defaults.max_width),
        edge_probability: args
            .get_parsed("edge-prob")?
            .unwrap_or(defaults.edge_probability),
        slo_headroom: args
            .get_parsed("headroom")?
            .unwrap_or(defaults.slo_headroom),
    };
    if params.layers == 0 || params.max_width == 0 {
        return Err("--layers and --max-width must be at least 1".to_string());
    }
    let spec = aarc_spec::synthetic_spec(params);
    let out = args.require("out")?;
    aarc_spec::save(&spec, Path::new(out)).map_err(|e| e.to_string())?;
    println!(
        "wrote {out} ({} functions, {} edges, slo {:.1} ms)",
        spec.functions.len(),
        spec.edges.len(),
        spec.slo_ms
    );
    Ok(())
}
