//! Tenant configuration for `aarc serve`: API-key resolution, per-tenant
//! quotas and token-bucket rate limits.
//!
//! A tenant is a named namespace. Requests carry an `X-Api-Key` header
//! that maps to exactly one tenant; requests without the header resolve
//! to the *anonymous* tenant when one is configured (the default when no
//! `--tenants` file is given, which keeps the single-tenant API fully
//! backward compatible). Scenario names, sessions, cache-statistics
//! visibility and metric labels are all partitioned by the resolved
//! tenant in `serve.rs`; this module only owns identity and admission
//! arithmetic.
//!
//! The `--tenants` file is YAML (or JSON — YAML is a superset here):
//!
//! ```yaml
//! tenants:
//!   - name: acme
//!     api_key: acme-key-1
//!     max_scenarios: 8
//!     max_live_sessions: 64
//!     requests_per_sec: 50
//!   - name: anonymous          # entry without api_key = keyless access
//!     max_scenarios: 2
//!     max_live_sessions: 4
//! ```
//!
//! Omitted quota fields mean *unlimited*. When a file is given and no
//! entry is keyless, anonymous access is disabled and keyless requests
//! get `401` problem documents.

use std::sync::Mutex;
use std::time::Instant;

use serde::Deserialize;

/// Identifies a tenant inside a [`TenantRegistry`] (a plain index).
pub type TenantId = usize;

/// Characters allowed in tenant names (they become Prometheus label
/// values and appear in log fields).
fn name_is_valid(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// One tenant entry as it appears in the `--tenants` file.
#[derive(Debug, Clone, Deserialize)]
pub struct TenantSpec {
    /// Tenant name: `[A-Za-z0-9._-]{1,64}`, unique across the file.
    pub name: String,
    /// The API key clients present in `X-Api-Key`. Omitted = this entry
    /// serves keyless (anonymous) requests; at most one entry may omit it.
    pub api_key: Option<String>,
    /// Most scenarios the tenant may have uploaded at once (unlimited
    /// when omitted).
    pub max_scenarios: Option<u64>,
    /// Most live (running or paused) sessions at once (unlimited when
    /// omitted).
    pub max_live_sessions: Option<u64>,
    /// Sustained request rate across the tenant's whole API surface;
    /// unlimited when omitted or zero.
    pub requests_per_sec: Option<f64>,
    /// Token-bucket burst capacity (defaults to one second's worth of
    /// tokens, minimum 1).
    pub burst: Option<f64>,
}

/// The whole `--tenants` file.
#[derive(Debug, Clone, Deserialize)]
pub struct TenantsFile {
    /// All configured tenants.
    pub tenants: Vec<TenantSpec>,
}

/// Effective per-tenant limits after defaulting.
#[derive(Debug, Clone, Copy)]
pub struct Quotas {
    /// Most uploaded scenarios at once.
    pub max_scenarios: u64,
    /// Most live sessions at once.
    pub max_live_sessions: u64,
    /// Sustained requests/sec (0 = unlimited). The burst capacity lives
    /// in the token bucket itself.
    pub requests_per_sec: f64,
}

/// A classic token bucket: `capacity` tokens, refilled continuously at
/// `rate` tokens/sec; each admitted request takes one token.
#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    capacity: f64,
    rate: f64,
    last_refill: Instant,
}

impl TokenBucket {
    fn new(rate: f64, capacity: f64, now: Instant) -> Self {
        TokenBucket {
            tokens: capacity,
            capacity,
            rate,
            last_refill: now,
        }
    }

    /// Takes one token, or reports how many whole seconds until one will
    /// be available (suitable for `Retry-After`, always ≥ 1).
    fn try_take(&mut self, now: Instant) -> Result<(), u64> {
        let elapsed = now
            .saturating_duration_since(self.last_refill)
            .as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed * self.rate).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let wait = (1.0 - self.tokens) / self.rate;
            Err((wait.ceil() as u64).max(1))
        }
    }
}

/// One resolved tenant with its admission state.
#[derive(Debug)]
pub struct Tenant {
    /// Tenant name (used as the metric label and in logs).
    pub name: String,
    /// The key that resolves to this tenant (`None` = anonymous entry).
    pub api_key: Option<String>,
    /// Effective limits.
    pub quotas: Quotas,
    /// Rate-limit state; `None` when `requests_per_sec` is unlimited.
    bucket: Option<Mutex<TokenBucket>>,
}

impl Tenant {
    fn from_spec(spec: &TenantSpec, now: Instant) -> Result<Self, String> {
        if !name_is_valid(&spec.name) {
            return Err(format!(
                "tenant name `{}` is invalid (allowed: [A-Za-z0-9._-], 1-64 chars)",
                spec.name
            ));
        }
        if let Some(key) = &spec.api_key {
            if key.is_empty() {
                return Err(format!("tenant `{}` has an empty api_key", spec.name));
            }
        }
        let rate = spec.requests_per_sec.unwrap_or(0.0);
        if !rate.is_finite() || rate < 0.0 {
            return Err(format!(
                "tenant `{}`: requests_per_sec must be a finite non-negative number",
                spec.name
            ));
        }
        let burst = spec.burst.unwrap_or_else(|| rate.max(1.0));
        if !burst.is_finite() || burst < 1.0 {
            return Err(format!("tenant `{}`: burst must be ≥ 1", spec.name));
        }
        let quotas = Quotas {
            max_scenarios: spec.max_scenarios.unwrap_or(u64::MAX),
            max_live_sessions: spec.max_live_sessions.unwrap_or(u64::MAX),
            requests_per_sec: rate,
        };
        let bucket = (rate > 0.0).then(|| Mutex::new(TokenBucket::new(rate, burst, now)));
        Ok(Tenant {
            name: spec.name.clone(),
            api_key: spec.api_key.clone(),
            quotas,
            bucket,
        })
    }

    /// Admits one request through the rate limiter, or returns the
    /// `Retry-After` seconds. Unlimited tenants always admit.
    pub fn admit_request(&self, now: Instant) -> Result<(), u64> {
        match &self.bucket {
            None => Ok(()),
            Some(bucket) => bucket.lock().expect("token bucket lock").try_take(now),
        }
    }
}

/// All tenants the daemon serves, with key → tenant resolution.
#[derive(Debug)]
pub struct TenantRegistry {
    tenants: Vec<Tenant>,
    /// Index of the keyless entry, if any.
    anonymous: Option<TenantId>,
}

/// Why a request failed tenant resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// The presented key matches no tenant.
    UnknownKey,
    /// No key was presented and anonymous access is disabled.
    AnonymousDisabled,
}

impl AuthError {
    /// The problem `detail` sentence for this failure.
    pub fn detail(&self) -> &'static str {
        match self {
            AuthError::UnknownKey => "the presented X-Api-Key matches no tenant",
            AuthError::AnonymousDisabled => {
                "anonymous access is disabled on this daemon; send X-Api-Key"
            }
        }
    }
}

impl TenantRegistry {
    /// The back-compat registry: one keyless tenant named `anonymous`
    /// with unlimited quotas.
    pub fn single_anonymous() -> Self {
        TenantRegistry::from_specs(&[TenantSpec {
            name: "anonymous".to_owned(),
            api_key: None,
            max_scenarios: None,
            max_live_sessions: None,
            requests_per_sec: None,
            burst: None,
        }])
        .expect("built-in anonymous tenant is valid")
    }

    /// Builds a registry from parsed specs, validating names, keys and
    /// the at-most-one-anonymous rule.
    pub fn from_specs(specs: &[TenantSpec]) -> Result<Self, String> {
        if specs.is_empty() {
            return Err("tenants file defines no tenants".to_owned());
        }
        let now = Instant::now();
        let mut tenants = Vec::with_capacity(specs.len());
        let mut anonymous = None;
        for spec in specs {
            let tenant = Tenant::from_spec(spec, now)?;
            if tenants.iter().any(|t: &Tenant| t.name == tenant.name) {
                return Err(format!("duplicate tenant name `{}`", tenant.name));
            }
            if let Some(key) = &tenant.api_key {
                if tenants
                    .iter()
                    .any(|t: &Tenant| t.api_key.as_deref() == Some(key))
                {
                    return Err(format!(
                        "tenants `{}` share an api_key with an earlier entry",
                        tenant.name
                    ));
                }
            } else {
                if anonymous.is_some() {
                    return Err("more than one tenant entry omits api_key".to_owned());
                }
                anonymous = Some(tenants.len());
            }
            tenants.push(tenant);
        }
        Ok(TenantRegistry { tenants, anonymous })
    }

    /// Parses a `--tenants` file (YAML or JSON).
    pub fn from_file_contents(contents: &str) -> Result<Self, String> {
        // A file whose document starts with `{` is JSON; everything else
        // goes through the YAML reader.
        let file: TenantsFile = if contents.trim_start().starts_with('{') {
            serde_json::from_str(contents)
                .map_err(|e| format!("tenants file did not parse: {e}"))?
        } else {
            serde_yaml::from_str(contents)
                .map_err(|e| format!("tenants file did not parse: {e}"))?
        };
        TenantRegistry::from_specs(&file.tenants)
    }

    /// Resolves the `X-Api-Key` header value to a tenant.
    ///
    /// # Errors
    ///
    /// [`AuthError::UnknownKey`] for an unrecognised key,
    /// [`AuthError::AnonymousDisabled`] for a keyless request when no
    /// anonymous tenant is configured.
    pub fn resolve(&self, api_key: Option<&str>) -> Result<TenantId, AuthError> {
        match api_key {
            Some(key) => self
                .tenants
                .iter()
                .position(|t| t.api_key.as_deref() == Some(key))
                .ok_or(AuthError::UnknownKey),
            None => self.anonymous.ok_or(AuthError::AnonymousDisabled),
        }
    }

    /// The tenant behind an id (ids come from [`TenantRegistry::resolve`]
    /// and are always in range).
    pub fn tenant(&self, id: TenantId) -> &Tenant {
        &self.tenants[id]
    }

    /// All tenants, in file order (used for metrics rendering).
    pub fn all(&self) -> &[Tenant] {
        &self.tenants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spec(name: &str, key: Option<&str>) -> TenantSpec {
        TenantSpec {
            name: name.to_owned(),
            api_key: key.map(str::to_owned),
            max_scenarios: None,
            max_live_sessions: None,
            requests_per_sec: None,
            burst: None,
        }
    }

    #[test]
    fn default_registry_resolves_keyless_to_anonymous() {
        let registry = TenantRegistry::single_anonymous();
        let id = registry.resolve(None).unwrap();
        assert_eq!(registry.tenant(id).name, "anonymous");
        assert_eq!(registry.tenant(id).quotas.max_scenarios, u64::MAX);
        assert_eq!(registry.resolve(Some("nope")), Err(AuthError::UnknownKey));
    }

    #[test]
    fn file_without_keyless_entry_disables_anonymous() {
        let registry = TenantRegistry::from_file_contents(
            "tenants:\n  - name: acme\n    api_key: k1\n    max_scenarios: 8\n",
        )
        .unwrap();
        assert_eq!(registry.resolve(None), Err(AuthError::AnonymousDisabled));
        let id = registry.resolve(Some("k1")).unwrap();
        assert_eq!(registry.tenant(id).name, "acme");
        assert_eq!(registry.tenant(id).quotas.max_scenarios, 8);
        assert_eq!(registry.tenant(id).quotas.max_live_sessions, u64::MAX);
    }

    #[test]
    fn json_is_accepted_too() {
        let registry = TenantRegistry::from_file_contents(
            r#"{"tenants": [{"name": "a", "api_key": "ka", "requests_per_sec": 5}]}"#,
        )
        .unwrap();
        let id = registry.resolve(Some("ka")).unwrap();
        assert_eq!(registry.tenant(id).quotas.requests_per_sec, 5.0);
    }

    #[test]
    fn invalid_files_are_rejected_with_reasons() {
        for (contents, needle) in [
            ("tenants: []", "no tenants"),
            (
                "tenants:\n  - name: a\n  - name: b\n",
                "more than one tenant entry omits api_key",
            ),
            (
                "tenants:\n  - name: a\n    api_key: k\n  - name: a\n    api_key: k2\n",
                "duplicate tenant name",
            ),
            (
                "tenants:\n  - name: a\n    api_key: k\n  - name: b\n    api_key: k\n",
                "share an api_key",
            ),
            ("tenants:\n  - name: 'bad name'\n", "invalid"),
            ("tenants:\n  - name: a\n    api_key: ''\n", "empty api_key"),
            (
                "tenants:\n  - name: a\n    requests_per_sec: -1\n",
                "non-negative",
            ),
            ("tenants:\n  - name: a\n    burst: 0.5\n", "burst"),
        ] {
            let err = TenantRegistry::from_file_contents(contents).unwrap_err();
            assert!(err.contains(needle), "`{contents}` → `{err}`");
        }
    }

    #[test]
    fn token_bucket_admits_burst_then_meters() {
        let now = Instant::now();
        let mut bucket = TokenBucket::new(2.0, 3.0, now);
        assert!(bucket.try_take(now).is_ok());
        assert!(bucket.try_take(now).is_ok());
        assert!(bucket.try_take(now).is_ok());
        let wait = bucket.try_take(now).unwrap_err();
        assert_eq!(wait, 1, "ceil((1-0)/2) = 0.5s rounds up to 1");
        // Half a second refills one token at 2/sec.
        let later = now + Duration::from_millis(500);
        assert!(bucket.try_take(later).is_ok());
        assert!(bucket.try_take(later).is_err());
        // Refill caps at capacity.
        let much_later = now + Duration::from_secs(60);
        let mut drained = 0;
        let mut probe = much_later;
        while bucket.try_take(probe).is_ok() {
            drained += 1;
            probe = much_later; // no time passes between takes
        }
        assert_eq!(drained, 3, "burst capacity caps the refill");
    }

    #[test]
    fn unlimited_tenant_always_admits() {
        let registry = TenantRegistry::from_specs(&[spec("a", Some("k"))]).unwrap();
        let tenant = registry.tenant(registry.resolve(Some("k")).unwrap());
        let now = Instant::now();
        for _ in 0..10_000 {
            assert!(tenant.admit_request(now).is_ok());
        }
    }

    #[test]
    fn rate_limited_tenant_reports_retry_after() {
        let registry = TenantRegistry::from_specs(&[TenantSpec {
            requests_per_sec: Some(1.0),
            burst: Some(1.0),
            ..spec("slow", Some("k"))
        }])
        .unwrap();
        let tenant = registry.tenant(registry.resolve(Some("k")).unwrap());
        let now = Instant::now();
        assert!(tenant.admit_request(now).is_ok());
        let wait = tenant.admit_request(now).unwrap_err();
        assert!(wait >= 1);
    }
}
