//! `aarc` — command-line front end of the declarative scenario subsystem.
//!
//! ```text
//! aarc validate <spec>...
//! aarc run --spec FILE [--method aarc|bo|maff|random] [--slo MS] [--threads N] [--format text|json]
//! aarc compare --spec FILE [--threads N] [--out FILE] [--format json|csv]
//! aarc sweep <spec|dir>... [--methods a,b] [--classes c,d] [--threads N] [--format json|csv]
//! aarc bench <spec>... [--threads N] [--batch N] [--out FILE] [--baseline FILE]
//! aarc serve [--addr HOST:PORT] [--threads N] [--tenants FILE] [--max-live-sessions N]
//! aarc loadtest [--concurrent N] [--tenants N] [--clients N] [--hold] [--bench FILE]
//! aarc export-builtin [--dir DIR] [--format yaml|json]
//! aarc generate --seed N [--layers N] [--max-width N] [--out FILE]
//! ```
//!
//! Argument parsing is hand-rolled: the offline build environment has no
//! crates.io access, and the flag surface is small enough that a vendored
//! clap shim would cost more than it saves.

#![forbid(unsafe_code)]

use std::process::ExitCode;

mod args;
mod bench;
mod client;
mod commands;
mod http;
mod loadtest;
mod methods;
mod problem;
mod report;
mod serve;
mod state;
mod sweep;
mod tenant;
mod version;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
